//! Travel-planning case study (Exp-8 / Fig. 13 of the paper).
//!
//! A bus schedule is modelled as a temporal graph whose vertices are stops
//! and whose edges are scheduled hops between consecutive stops. The
//! temporal simple path graph between two stops within a tight time window
//! shows every transfer option a passenger still has — including the ones
//! that only open up after missing an earlier connection.
//!
//! ```text
//! cargo run --example transit_planning
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use tspg_suite::datasets::generate_transit;
use tspg_suite::graph::io::to_dot;
use tspg_suite::prelude::*;

fn main() {
    // A synthetic city: 12 bus lines, 10 stops each, a bus every 12 minutes,
    // 2 minutes per hop, and 45% of the stops shared between lines.
    let mut rng = StdRng::seed_from_u64(99);
    let (graph, names) = generate_transit(&mut rng, 12, 10, 12, 2, 0.45, 240);
    println!("schedule: {}", GraphStats::compute(&graph));

    // The passenger wants to travel between two transfer hubs within a
    // ten-minute window in the middle of the service day.
    let hubs: Vec<VertexId> = graph
        .non_isolated_vertices()
        .into_iter()
        .filter(|&v| names[v as usize].starts_with("Hub"))
        .collect();
    let mut best: Option<(VertexId, VertexId, TimeInterval, usize)> = None;
    for (i, &a) in hubs.iter().enumerate() {
        for &b in hubs.iter().skip(i + 1) {
            for begin in [60, 120, 180] {
                let window = TimeInterval::new(begin, begin + 10);
                let edges = generate_tspg(&graph, a, b, window).tspg.num_edges();
                if edges > best.map_or(0, |(_, _, _, e)| e) {
                    best = Some((a, b, window, edges));
                }
            }
        }
    }
    let (from, to, window, _) = best.expect("some hub pair is always connected");
    let result = generate_tspg(&graph, from, to, window);

    println!("\nquery: {} -> {} within minutes {window}", names[from as usize], names[to as usize]);
    println!(
        "tspG: {} stops, {} scheduled hops participate in at least one itinerary",
        result.tspg.num_vertices(),
        result.tspg.num_edges()
    );
    for e in result.tspg.edges() {
        println!("  depart {:>3}  {} -> {}", e.time, names[e.src as usize], names[e.dst as usize]);
    }

    // The number of distinct itineraries is typically much larger than the
    // number of hops — the whole point of returning a graph instead of a
    // path list.
    let tspg_graph = result.tspg.to_graph(graph.num_vertices());
    let itineraries = count_paths(&tspg_graph, from, to, window, &Budget::unlimited());
    println!(
        "\n{} distinct itineraries share those {} hops",
        itineraries.count,
        result.tspg.num_edges()
    );

    println!("\nGraphviz DOT (render with `dot -Tpng`):\n");
    println!("{}", to_dot(&tspg_graph, Some(&|v| names[v as usize].clone())));
}
