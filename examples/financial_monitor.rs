//! Financial-monitoring scenario (second application in the paper's
//! introduction).
//!
//! Transactions form a temporal graph: accounts are vertices, a transfer at
//! time τ is a temporal edge. Money-laundering patterns often appear as
//! cyclic transaction sequences with ascending timestamps inside a tight
//! window: a transaction `e(t, s, τ)` closes such a cycle exactly when a
//! temporal simple path from `s` to `t` exists shortly before `τ`. The
//! temporal simple path graph then visualises *all* the flows that feed the
//! suspicious closing transaction.
//!
//! ```text
//! cargo run --example financial_monitor
//! ```

use tspg_suite::prelude::*;

fn main() {
    // A hub-skewed transaction network: a few very active accounts
    // (exchanges, mules) and a long tail of ordinary accounts.
    let generator = GraphGenerator::hub(400, 8_000, 200, 2.6);
    let graph = generator.generate(77);
    println!("transaction network: {}", GraphStats::compute(&graph));

    // Scan closing transactions: for each edge e(t, s, τ) check whether a
    // temporal simple path from s to t exists within the preceding window of
    // `lookback` ticks. Every hit is a temporal cycle candidate.
    let lookback = 12i64;
    let mut flagged = 0usize;
    let mut inspected = 0usize;
    for closing in graph.edges().iter().rev().take(400) {
        inspected += 1;
        let (cycle_target, cycle_source, tau) = (closing.src, closing.dst, closing.time);
        let Some(window) = TimeInterval::try_new(tau - lookback, tau - 1) else { continue };
        let result = generate_tspg(&graph, cycle_source, cycle_target, window);
        if result.tspg.is_empty() {
            continue;
        }
        flagged += 1;
        if flagged <= 3 {
            println!(
                "\nsuspicious cycle closed by {} -> {} at {}: {} accounts / {} transfers feed it",
                cycle_target,
                cycle_source,
                tau,
                result.tspg.num_vertices(),
                result.tspg.num_edges()
            );
            let mut shown = 0;
            for e in result.tspg.edges() {
                println!("    {e}");
                shown += 1;
                if shown >= 8 {
                    println!("    ... ({} more)", result.tspg.num_edges() - shown);
                    break;
                }
            }
            // The flows are exact: every printed transfer lies on at least
            // one ascending-time simple path from the cycle source to the
            // cycle target.
            let check =
                naive_tspg(&graph, cycle_source, cycle_target, window, &Budget::unlimited());
            assert_eq!(check.tspg, result.tspg);
        }
    }
    println!(
        "\ninspected {inspected} closing transactions, {flagged} of them complete a temporal cycle"
    );
}
