//! Outbreak control scenario (first application in the paper's
//! introduction).
//!
//! A disease-transmission network is modelled as a temporal graph: vertices
//! are contact locations, temporal edges are movements of individuals at
//! specific timestamps. Generating the temporal simple path graph from the
//! outbreak source to a protected location reveals every possible
//! transmission route inside a surveillance window, so that health
//! authorities can rank locations by how many routes pass through them.
//!
//! ```text
//! cargo run --example outbreak_control
//! ```

use std::collections::HashMap;
use tspg_suite::prelude::*;

fn main() {
    // A synthetic contact network: community-structured, like real contact
    // graphs (households / workplaces / transit hubs).
    let generator = GraphGenerator {
        num_vertices: 300,
        num_edges: 6_000,
        num_timestamps: 120,
        model: tspg_datasets::GeneratorModel::Community { communities: 10, p_in: 0.8 },
    };
    let graph = generator.generate(2024);
    println!("contact network: {}", GraphStats::compute(&graph));

    // Surveillance window of 14 "days" starting at day 30; patient zero is
    // a random location with outgoing contacts, the protected site is a
    // location it can temporally reach.
    let theta = 14;
    let workload = generate_workload(&graph, 5, theta, 7).expect("workload");
    assert!(!workload.is_empty(), "the synthetic network is always temporally connected somewhere");

    for (i, q) in workload.iter().enumerate() {
        let result = generate_tspg(&graph, q.source, q.target, q.window);
        println!(
            "\nscenario {i}: outbreak at {} threatening {} during {}",
            q.source, q.target, q.window
        );
        if result.tspg.is_empty() {
            println!("  no transmission route exists in this window");
            continue;
        }
        println!(
            "  {} locations and {} movements participate in at least one transmission route",
            result.tspg.num_vertices(),
            result.tspg.num_edges()
        );

        // Rank intermediate locations by the number of route edges touching
        // them: these are the candidates for targeted containment.
        let mut exposure: HashMap<VertexId, usize> = HashMap::new();
        for e in result.tspg.edges() {
            *exposure.entry(e.src).or_default() += 1;
            *exposure.entry(e.dst).or_default() += 1;
        }
        let mut ranked: Vec<_> =
            exposure.into_iter().filter(|(v, _)| *v != q.source && *v != q.target).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        print!("  top containment candidates:");
        for (v, deg) in ranked.iter().take(5) {
            print!(" {v}({deg})");
        }
        println!();

        // How much work did the upper-bound phases save the verification?
        println!(
            "  search space: {} edges -> G_q {} -> G_t {} -> tspG {}",
            graph.num_edges(),
            result.report.quick_edges,
            result.report.tight_edges,
            result.report.result_edges
        );
    }
}
