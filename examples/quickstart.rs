//! Quickstart: build a small temporal graph, run a tspG query with VUG, and
//! compare against the naive enumeration and the three baselines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tspg_suite::prelude::*;

fn main() {
    // The running example of the paper (Fig. 1(a)): vertices s,a,b,c,d,e,f,t
    // mapped to ids 0..=7, fourteen temporal edges.
    let graph = figure1_graph();
    let (s, t, window) = figure1_query();
    println!("input graph : {}", GraphStats::compute(&graph));
    println!("query       : s={s} t={t} window={window}\n");

    // 1. The paper's algorithm.
    let vug = generate_tspg(&graph, s, t, window);
    println!(
        "VUG result ({} edges, {} vertices):",
        vug.report.result_edges, vug.report.result_vertices
    );
    for e in vug.tspg.edges() {
        println!("  {e}");
    }
    println!(
        "phases: QuickUBG {} edges, TightUBG {} edges, total time {:?}\n",
        vug.report.quick_edges,
        vug.report.tight_edges,
        vug.report.total_elapsed()
    );

    // 2. Ground truth by exhaustive enumeration.
    let naive = naive_tspg(&graph, s, t, window, &Budget::unlimited());
    assert_eq!(naive.tspg, vug.tspg, "VUG must equal the enumeration result");
    println!(
        "enumeration found {} temporal simple paths sharing those {} edges",
        naive.stats.paths_found,
        naive.tspg.num_edges()
    );

    // 3. The three baselines of the paper agree as well (and are slower on
    //    anything bigger than this toy graph).
    for alg in EpAlgorithm::ALL {
        let out = run_ep(alg, &graph, s, t, window, &Budget::unlimited());
        assert_eq!(out.tspg, vug.tspg);
        println!(
            "{:<8} upper bound {:>2} edges, time {:?}",
            alg.name(),
            out.upper_bound_edges,
            out.total_elapsed()
        );
    }

    // 4. Enumerate the individual paths for illustration.
    println!("\ntemporal simple paths from s to t within {window}:");
    let paths = enumerate_paths(&graph, s, t, window, &Budget::unlimited());
    for p in &paths.paths {
        println!("  {p}");
    }
}
