//! `BatchStats` bookkeeping under the full planner-configuration grid
//! (envelopes × profile sharing × result cache), the satellite gate of
//! the profile-sharing PR: on random graphs and batches, for every
//! configuration, every thread count and every warm pass,
//!
//! * the six answer buckets sum to `queries` (each query answered exactly
//!   one way),
//! * `pipeline_runs()` never exceeds `queries` (planning never adds net
//!   work), and
//! * the profile overlay counters respect their bounds
//!   (`2 × profile_groups ≤ pipeline_runs`).
//!
//! The shared harness asserts all of this — plus byte-identity against the
//! sequential path — on every run it performs; this file drives it across
//! the grid with batches stuffed with the shapes every bucket fires on.

mod common;

use common::differential::{assert_batch_matches_sequential, EngineSetup};
use proptest::collection::vec;
use proptest::prelude::*;
use tspg_suite::core::QuerySpec;
use tspg_suite::prelude::*;

/// A graph plus a batch containing, by construction, every answer shape:
/// fresh queries, exact duplicates, contained windows, overlapping
/// windows, same-source fan-outs (same- and mixed-begin) and degenerate
/// (`s == t`) queries.
fn graph_and_loaded_batch() -> impl Strategy<Value = (TemporalGraph, Vec<QuerySpec>)> {
    const N: u32 = 8;
    let edge = (0..N, 0..N, 1..=9i64).prop_map(|(u, v, t)| TemporalEdge::new(u, v, t));
    let shape = (0..7usize, 0..N, 0..N, 1..=7i64, 0..=3i64);
    (vec(edge, 1..50), vec(shape, 2..16)).prop_map(|(edges, shapes)| {
        let edges: Vec<TemporalEdge> = edges.into_iter().filter(|e| e.src != e.dst).collect();
        let graph = TemporalGraph::from_edges(N as usize, edges);
        let mut queries: Vec<QuerySpec> = Vec::new();
        for (kind, s, t, begin, extra) in shapes {
            let window = TimeInterval::new(begin, (begin + extra + 1).min(9));
            let query = match kind {
                // Degenerate.
                0 => QuerySpec::new(s, s, window),
                // Duplicate of an earlier query, when one exists.
                1 if !queries.is_empty() => queries[s as usize % queries.len()],
                // Contained window of an earlier query.
                2 if !queries.is_empty() => {
                    let base = queries[t as usize % queries.len()];
                    let b = base.window.begin();
                    QuerySpec::new(base.source, base.target, TimeInterval::new(b, b))
                }
                // Overlapping slide of an earlier query.
                3 if !queries.is_empty() => {
                    let base = queries[t as usize % queries.len()];
                    let b = base.window.begin() + 1;
                    QuerySpec::new(
                        base.source,
                        base.target,
                        TimeInterval::new(b, b + base.window.span() - 1),
                    )
                }
                // Same-source fan-out off an earlier query.
                4 if !queries.is_empty() => {
                    let base = queries[s as usize % queries.len()];
                    QuerySpec::new(base.source, t, base.window)
                }
                // Mixed-begin fan-out: same source and end, slid begin —
                // the shape only profile sharing can group.
                5 if !queries.is_empty() => {
                    let base = queries[s as usize % queries.len()];
                    let w = base.window;
                    let b = (w.begin() + extra).min(w.end());
                    QuerySpec::new(base.source, t, TimeInterval::new(b, w.end()))
                }
                // Fresh query.
                _ => QuerySpec::new(s, t, window),
            };
            queries.push(query);
        }
        (graph, queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every configuration of the grid holds the sum invariant, the
    /// pipeline-run bound and the overlay bounds — and answers the batch
    /// byte-identically to the sequential path. Cached configurations run
    /// a second (pure-cache) pass; the second pass shifts every query into
    /// the `cache_hits` / `degenerate` buckets and must keep the
    /// invariants too.
    #[test]
    fn stats_invariants_hold_across_the_config_grid(
        (graph, queries) in graph_and_loaded_batch()
    ) {
        let stats = assert_batch_matches_sequential(&graph, &queries, &EngineSetup::grid());
        // Sanity on the grid itself: it must exercise both profile states,
        // and the overlay bound holds on every run (the harness asserts
        // it; re-check the headline inequality here as the gate).
        prop_assert!(stats.iter().all(|s| s.queries == queries.len()));
        prop_assert!(stats.iter().all(|s| 2 * s.profile_groups <= s.pipeline_runs()));
    }
}
