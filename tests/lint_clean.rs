//! Tier-1 gate: the repository itself is `tspg-lint`-clean, and every
//! rule still fires on its planted fixture.
//!
//! Running the analyzer in-process (rather than shelling out to the
//! binary) keeps this test working under plain `cargo test -q` with no
//! build-order assumptions; CI's `lint` job additionally exercises the
//! binary end to end.

use std::path::{Path, PathBuf};

/// The repo root: the umbrella package's manifest dir IS the workspace
/// root, so fixtures and sources resolve without any upward search.
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn repository_is_lint_clean() {
    let report = tspg_lint::lint_root(&repo_root(), &[]).expect("lint walk failed");
    assert!(
        report.diagnostics.is_empty(),
        "the repository must stay tspg-lint-clean; fix or pragma-suppress:\n{}",
        report.render()
    );
    // Guard against the walk silently going blind (e.g. a moved source
    // tree): the workspace has far more than a handful of sources.
    assert!(
        report.context.files.len() >= 55,
        "suspiciously few files walked: {}",
        report.context.files.len()
    );
}

/// Runs one rule over its planted fixture tree and returns the findings.
fn fixture_findings(rule: &str) -> Vec<tspg_lint::diagnostics::Diagnostic> {
    let root = repo_root().join("crates/lint/fixtures").join(rule);
    assert!(root.is_dir(), "missing fixture tree {}", root.display());
    let report =
        tspg_lint::lint_root(&root, &[rule.to_string()]).expect("fixture lint walk failed");
    report.diagnostics
}

#[test]
fn every_rule_fires_on_its_planted_fixture() {
    // Expected finding counts pin the rules' sensitivity: fewer means a
    // rule went blind, more means a clean/suppressed example regressed.
    let expected = [
        ("hot-alloc", 2),
        ("notify-under-lock", 1),
        ("no-panic-in-server", 3),
        ("relaxed-justified", 2),
        ("stats-glossary-sync", 1),
        ("hot-alloc-transitive", 2),
        ("lock-order", 4),
        ("condvar-wait-loop", 1),
    ];
    for (rule, count) in expected {
        let findings = fixture_findings(rule);
        assert_eq!(
            findings.len(),
            count,
            "rule `{rule}` produced unexpected findings on its fixture:\n{findings:#?}"
        );
        assert!(
            findings.iter().all(|d| d.rule == rule),
            "cross-rule contamination for `{rule}`:\n{findings:#?}"
        );
    }
}

#[test]
fn fixture_suppressions_hold_end_to_end() {
    // Each fixture plants one pragma-suppressed finding; none of them may
    // ever surface. The suppressed sites are identified by content the
    // surviving findings can never share.
    for (rule, forbidden) in [
        ("hot-alloc", "seed_buffers_into"),
        ("hot-alloc-transitive", "seed_scratch"),
        // `rebalance` is the only fixture fn touching the `shard` lock.
        ("lock-order", "shard"),
    ] {
        let findings = fixture_findings(rule);
        assert!(
            findings.iter().all(|d| !d.message.contains(forbidden)),
            "suppression pragma for `{rule}` stopped working:\n{findings:#?}"
        );
    }
    // condvar-wait-loop messages are uniform, so pin the one surviving
    // finding to `park` (the suppressed `flush_once` wait sits far below).
    let findings = fixture_findings("condvar-wait-loop");
    assert!(
        findings.iter().all(|d| d.line < 20),
        "suppression pragma for `condvar-wait-loop` stopped working:\n{findings:#?}"
    );
}

#[test]
fn committed_baseline_is_valid_and_empty() {
    // The repo ships an empty baseline on purpose: new findings must be
    // fixed or pragma-justified, never silently absorbed. This also pins
    // the schema so `--write-baseline` output stays parseable.
    let text = std::fs::read_to_string(repo_root().join("lint-baseline.json"))
        .expect("lint-baseline.json must be committed at the repo root");
    let baseline = tspg_lint::baseline::Baseline::parse(&text).expect("baseline must parse");
    assert!(
        baseline.entries.is_empty(),
        "the committed baseline must stay empty; fix or pragma-justify instead:\n{:#?}",
        baseline.entries
    );
}

#[test]
fn rule_registry_matches_fixture_trees() {
    // Every registered rule ships a fixture, and every fixture tree
    // corresponds to a registered rule — so neither side can rot.
    let mut registered: Vec<String> =
        tspg_lint::rules::all().iter().map(|r| r.name().to_string()).collect();
    registered.sort();
    let fixtures_dir = repo_root().join("crates/lint/fixtures");
    let mut on_disk: Vec<String> = std::fs::read_dir(&fixtures_dir)
        .expect("fixtures dir")
        .filter_map(|e| e.ok())
        .filter(|e| e.path().is_dir())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    on_disk.sort();
    assert_eq!(registered, on_disk);
}

#[test]
fn lint_walk_excludes_fixtures_and_vendor() {
    let report = tspg_lint::lint_root(&repo_root(), &[]).expect("lint walk failed");
    let misplaced: Vec<&str> = report
        .context
        .files
        .iter()
        .map(|f| f.rel_path.as_str())
        .filter(|p| p.contains("fixtures/") || p.starts_with("vendor/") || is_test_path(p))
        .collect();
    assert!(misplaced.is_empty(), "out-of-scope files walked: {misplaced:?}");
}

fn is_test_path(p: &str) -> bool {
    Path::new(p).components().any(|c| c.as_os_str() == "tests" || c.as_os_str() == "benches")
}
