//! Admission-path tests of the resident `tspg-server`: the edge cases of
//! the micro-batching dispatcher (idle flush timer, per-client quotas,
//! malformed lines, mid-batch disconnects) plus the differential pin —
//! answers served over the socket must be byte-identical to the PR 2
//! sequential engine, whether one client sends the whole workload or four
//! concurrent strangers interleave it.

mod common;

use common::differential::sequential_results;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;
use tspg_suite::prelude::*;
use tspg_suite::server::{protocol, Server, ServerConfig};

fn temp_socket(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tspg_adm_{tag}_{}_{unique}.sock", std::process::id()))
}

fn connect(path: &Path) -> (BufReader<UnixStream>, UnixStream) {
    let stream = UnixStream::connect(path).expect("connect");
    let reader = BufReader::new(stream.try_clone().expect("clone"));
    (reader, stream)
}

fn send(stream: &mut UnixStream, line: &str) {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
}

fn read_line(reader: &mut BufReader<UnixStream>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    line.trim_end().to_string()
}

fn stat(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(key).and_then(|l| l.strip_prefix('=')))
        .unwrap_or_else(|| panic!("stats lack {key}=: {stats}"))
        .parse()
        .unwrap()
}

/// The flush timer keeps firing while the queue is empty: each idle tick
/// is a counted no-op, and the server still answers normally afterwards.
#[test]
fn idle_flush_timer_fires_with_zero_pending_requests() {
    let socket = temp_socket("idle");
    let config = ServerConfig { admit_window: Duration::from_millis(1), ..ServerConfig::default() };
    let handle = Server::bind(QueryEngine::new(figure1_graph()), &socket, config).unwrap();

    // No client traffic at all; the dispatcher's timer keeps waking up.
    std::thread::sleep(Duration::from_millis(40));
    let stats = handle.stats_text();
    assert!(stat(&stats, "empty_wakeups") > 0, "{stats}");
    assert_eq!(stat(&stats, "batches"), 0, "{stats}");

    // The idle ticks left the dispatcher healthy: a query is still served.
    let (s, t, w) = figure1_query();
    let (mut reader, mut stream) = connect(&socket);
    send(&mut stream, &protocol::format_query(1, &QuerySpec::new(s, t, w)));
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    let protocol::Response::Result(payload) = reply else { panic!("{reply:?}") };
    assert_eq!(payload.edges.len(), 4);

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.responses, 1);
}

/// With `quota = 1` and an admission window far longer than the test, a
/// second pipelined request deterministically exceeds the quota: it is
/// answered with a tagged error line, while the admitted request is still
/// answered on the shutdown drain.
#[test]
fn quota_exceeded_requests_get_a_tagged_error_line() {
    let socket = temp_socket("quota");
    let config = ServerConfig {
        quota: 1,
        // Longer than the test: the first request cannot be answered (and
        // its quota slot released) before the second one is judged.
        admit_window: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let handle = Server::bind(QueryEngine::new(figure1_graph()), &socket, config).unwrap();
    let (s, t, w) = figure1_query();
    let q = QuerySpec::new(s, t, w);

    let (mut reader, mut stream) = connect(&socket);
    send(&mut stream, &protocol::format_query(0, &q));
    send(&mut stream, &protocol::format_query(1, &q));
    send(&mut stream, "shutdown");

    // Deterministic reply order: the reader rejects request 1 inline and
    // acknowledges the shutdown; the dispatcher then drains request 0.
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    let protocol::Response::Error { id, message } = reply else { panic!("{reply:?}") };
    assert_eq!(id, Some(1));
    assert!(message.contains("quota"), "{message}");
    assert_eq!(read_line(&mut reader), "bye");
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    let protocol::Response::Result(payload) = reply else { panic!("{reply:?}") };
    assert_eq!(payload.id, 0);
    assert_eq!(payload.edges.len(), 4, "the admitted request is answered on the drain");

    let report = handle.join();
    assert_eq!(report.quota_rejections, 1);
    assert_eq!(report.responses, 1);
}

/// Malformed request lines are the client's bug, not the server's: each
/// gets an error reply — tagged with the request id whenever one could be
/// parsed — and the connection (and engine) keep serving.
#[test]
fn malformed_lines_are_answered_and_do_not_stop_the_server() {
    let socket = temp_socket("malformed");
    let handle =
        Server::bind(QueryEngine::new(figure1_graph()), &socket, ServerConfig::default()).unwrap();
    let (s, t, w) = figure1_query();
    let (mut reader, mut stream) = connect(&socket);

    // Unknown verb: no id to tag.
    send(&mut stream, "frobnicate 1 2 3");
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    assert!(matches!(reply, protocol::Response::Error { id: None, .. }), "{reply:?}");

    // Truncated query: the id survives parsing and tags the error.
    send(&mut stream, "query 41 0 7 2");
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    let protocol::Response::Error { id, message } = reply else { panic!("{reply:?}") };
    assert_eq!(id, Some(41));
    assert!(message.contains("window end"), "{message}");

    // Inverted interval: rejected at parse time, never enqueued.
    send(&mut stream, "query 42 0 7 9 2");
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    let protocol::Response::Error { id, .. } = reply else { panic!("{reply:?}") };
    assert_eq!(id, Some(42));

    // The same connection still gets real answers afterwards.
    send(&mut stream, &protocol::format_query(43, &QuerySpec::new(s, t, w)));
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    let protocol::Response::Result(payload) = reply else { panic!("{reply:?}") };
    assert_eq!(payload.id, 43);
    assert_eq!(payload.edges.len(), 4);

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.malformed, 3);
    assert_eq!(report.responses, 1);
    assert_eq!(report.totals.queries, 1, "malformed lines never reach the engine");
}

/// A client that disconnects between admission and dispatch has its
/// computed answers dropped; the batch, the dispatcher and every other
/// client are unaffected.
#[test]
fn client_disconnect_mid_batch_drops_its_answers_without_poisoning_the_dispatcher() {
    let socket = temp_socket("disconnect");
    let config = ServerConfig {
        // Wide enough that the flush deterministically happens after the
        // disconnecting client is gone.
        admit_window: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let handle = Server::bind(QueryEngine::new(figure1_graph()), &socket, config).unwrap();
    let (s, t, w) = figure1_query();
    let q = QuerySpec::new(s, t, w);

    // Client A enqueues two requests and vanishes before the window closes.
    let (_reader_a, mut stream_a) = connect(&socket);
    send(&mut stream_a, &protocol::format_query(0, &q));
    send(&mut stream_a, &protocol::format_query(1, &q));
    // Survivor client B enqueues into the same admission batch.
    let (mut reader_b, mut stream_b) = connect(&socket);
    send(&mut stream_b, &protocol::format_query(7, &q));
    drop(_reader_a);
    drop(stream_a);
    // Wait until the server has noticed the disconnect, so the flush that
    // follows sees A marked gone.
    while stat(&handle.stats_text(), "clients_gone") == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }

    // B's answer arrives; A's are computed and dropped.
    let reply = protocol::parse_response(&read_line(&mut reader_b)).unwrap();
    let protocol::Response::Result(payload) = reply else { panic!("{reply:?}") };
    assert_eq!(payload.id, 7);
    assert_eq!(payload.edges.len(), 4);

    // The dispatcher survived: a second round through B still works.
    send(&mut stream_b, &protocol::format_query(8, &q));
    let reply = protocol::parse_response(&read_line(&mut reader_b)).unwrap();
    let protocol::Response::Result(payload) = reply else { panic!("{reply:?}") };
    assert_eq!(payload.id, 8);

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.dropped, 2, "both of A's answers were dropped");
    assert_eq!(report.responses, 2, "both of B's answers were written");
    assert_eq!(report.totals.queries, 4, "dropped answers are still computed");
}

/// The `ingest` verb end to end: a query, an answer-changing edge batch,
/// and a re-query through one pipelined connection. The second answer must
/// reflect the mutation (and match a fresh engine over the union edge
/// set), and the stats surface the new epoch and ingest counters.
#[test]
fn ingest_verb_revises_answers_and_counts_in_stats() {
    let socket = temp_socket("ingest");
    let graph = figure1_graph();
    let handle =
        Server::bind(QueryEngine::new(graph.clone()), &socket, ServerConfig::default()).unwrap();
    let (s, t, w) = figure1_query();
    let q = QuerySpec::new(s, t, w);
    let (mut reader, mut stream) = connect(&socket);

    send(&mut stream, &protocol::format_query(0, &q));
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    let protocol::Response::Result(before) = reply else { panic!("{reply:?}") };
    assert_eq!(before.edges.len(), 4);

    // A direct s -> t edge inside the window always joins the tspG.
    let delta = [TemporalEdge::new(s, t, 5)];
    send(&mut stream, &protocol::format_ingest(&delta));
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    assert_eq!(reply, protocol::Response::Ingested { epoch: 1, edges: 1 });

    send(&mut stream, &protocol::format_query(1, &q));
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    let protocol::Response::Result(after) = reply else { panic!("{reply:?}") };
    assert_ne!(before.edges, after.edges, "the ingested edge must change the answer");
    let fresh_graph = {
        let mut edges = graph.edges().to_vec();
        edges.extend_from_slice(&delta);
        TemporalGraph::from_edges(graph.num_vertices(), edges)
    };
    let want = sequential_results(&fresh_graph, &[q]);
    assert_eq!(after.edges, want[0].tspg.edges(), "post-ingest answer must match a fresh engine");

    let stats = handle.stats_text();
    assert_eq!(stat(&stats, "epoch"), 1, "{stats}");
    assert_eq!(stat(&stats, "ingest_batches"), 1, "{stats}");
    assert_eq!(stat(&stats, "ingest_edges"), 1, "{stats}");

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.responses, 2, "ingest acks are not counted as query responses");
}

/// Satellite regression: a request id that does not parse as a u64 is no
/// longer collapsed into an anonymous error — the raw token is echoed in
/// the message so the client can tell which line was rejected.
#[test]
fn unparseable_request_ids_echo_the_raw_token() {
    let socket = temp_socket("badid");
    let handle =
        Server::bind(QueryEngine::new(figure1_graph()), &socket, ServerConfig::default()).unwrap();
    let (mut reader, mut stream) = connect(&socket);

    send(&mut stream, "query nope 0 7 2 7");
    let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
    let protocol::Response::Error { id, message } = reply else { panic!("{reply:?}") };
    assert_eq!(id, None, "an unparseable id cannot tag the error");
    assert!(message.contains("nope"), "the raw token must be echoed: {message}");

    handle.shutdown();
    let report = handle.join();
    assert_eq!(report.malformed, 1);
}

/// The differential pin: a generated workload answered over the socket —
/// by one client, and by four concurrent interleaving clients — must be
/// byte-identical to the PR 2 sequential engine, query by query.
#[test]
fn server_answers_match_the_sequential_engine_across_the_client_grid() {
    let graph = GraphGenerator::uniform(40, 400, 40).generate(0xad31);
    let queries = generate_repeated_workload(&graph, &RepeatedWorkloadConfig::new(48, 12, 4), 7)
        .expect("workload");
    let reference = sequential_results(&graph, &queries);

    for num_clients in [1usize, 4] {
        let socket = temp_socket(&format!("grid{num_clients}"));
        let config = ServerConfig {
            admit_max: 8,
            admit_window: Duration::from_millis(1),
            ..ServerConfig::default()
        };
        let handle = Server::bind(QueryEngine::new(graph.clone()), &socket, config).unwrap();

        // Client c pipelines queries c, c + n, c + 2n, ... tagged with
        // their global index, so answers can be checked slot by slot.
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for c in 0..num_clients {
                let socket = socket.clone();
                let queries = &queries;
                let reference = &reference;
                workers.push(scope.spawn(move || {
                    let (mut reader, mut stream) = connect(&socket);
                    let mine: Vec<usize> = (c..queries.len()).step_by(num_clients).collect();
                    for &i in &mine {
                        send(&mut stream, &protocol::format_query(i as u64, &queries[i]));
                    }
                    let mut answered = 0usize;
                    for _ in &mine {
                        let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
                        let protocol::Response::Result(payload) = reply else {
                            panic!("client {c}: {reply:?}")
                        };
                        let i = payload.id as usize;
                        assert!(mine.contains(&i), "client {c} got a stranger's answer #{i}");
                        assert_eq!(
                            payload.edges,
                            reference[i].tspg.edges(),
                            "query #{i} over the socket diverged from the sequential engine"
                        );
                        assert_eq!(payload.vertices, reference[i].report.result_vertices);
                        answered += 1;
                    }
                    answered
                }));
            }
            let answered: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
            assert_eq!(answered, queries.len());
        });

        handle.shutdown();
        let report = handle.join();
        assert_eq!(report.responses, queries.len() as u64);
        assert_eq!(report.totals.queries, queries.len());
        assert_eq!(report.quota_rejections + report.malformed + report.dropped, 0);
        if num_clients > 1 {
            assert!(
                report.batches < queries.len() as u64,
                "concurrent clients must share admission batches: {report:?}"
            );
        }
        assert!(!socket.exists(), "socket unlinked after shutdown");
    }
}
