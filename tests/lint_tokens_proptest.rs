//! Property-based test that `tspg-lint`'s tokenizer is lossless: the
//! token stream (comments included) plus its inter-token gaps
//! reconstructs the source byte for byte. Every lint rule reads positions
//! and text out of this stream, so a dropped character or a drifting
//! `line:col` here silently mis-anchors diagnostics and suppression
//! pragmas everywhere.
//!
//! The generator joins fragments from a pool covering every lexical form
//! the tokenizer claims to understand — raw identifiers, raw/byte
//! strings, char vs. lifetime quotes, nested block comments — with random
//! `\n`/space gaps. The same reconstruction is then run over the real
//! repository sources as a fixed corpus.

use proptest::collection::vec;
use proptest::prelude::*;
use tspg_lint::tokens::{tokenize, Token};

/// Every fragment tokenizes to one or more tokens whose concatenated
/// text equals the fragment itself — that is the only property the pool
/// relies on, so mixed forms (e.g. `0xff` as number + ident) are fine.
const FRAGMENTS: &[&str] = &[
    // Identifiers, keywords and raw identifiers.
    "alpha",
    "x1",
    "fn",
    "while",
    "r#fn",
    "r#type",
    "r#match",
    // Punctuation (single, combined `::`, and multi-char sequences that
    // lex as several puncts).
    "::",
    "->",
    "=>",
    "==",
    "{",
    "}",
    "(",
    ")",
    ";",
    ",",
    ".",
    "&",
    "#",
    "!",
    // Strings: plain, escaped, raw (with and without hashes), byte.
    "\"plain\"",
    "\"with \\\" escape and \\n\"",
    "r\"raw no hash\"",
    "r#\"has \"quotes\" inside\"#",
    "r##\"nested \"# guard\"##",
    "b\"bytes\"",
    // Char literals vs. lifetimes — the single-quote ambiguity.
    "'x'",
    "'\\n'",
    "'\\u{7f}'",
    "b'a'",
    "'a",
    "'static",
    // Numbers (integer part only; `0xff` lexes as number + ident).
    "42",
    "0xff",
    // Comments, line and (nested) block.
    "// a line comment",
    "//! inner doc",
    "/* block */",
    "/* outer /* nested */ tail */",
];

/// Rebuilds the source from the token stream alone: `\n`s up to each
/// token's line, spaces up to its column, then the token text (advancing
/// the cursor through any embedded newlines).
fn reconstruct(tokens: &[Token]) -> String {
    let mut out = String::new();
    let (mut line, mut col) = (1u32, 1u32);
    for tok in tokens {
        assert!(
            (tok.line, tok.col) >= (line, col),
            "token `{}` at {}:{} starts before the cursor {line}:{col}",
            tok.text,
            tok.line,
            tok.col
        );
        while line < tok.line {
            out.push('\n');
            line += 1;
            col = 1;
        }
        while col < tok.col {
            out.push(' ');
            col += 1;
        }
        for c in tok.text.chars() {
            out.push(c);
            if c == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
    }
    out
}

/// Strategy: fragments joined by gaps of the shape `\n…\n ␣…␣` (newlines
/// then spaces — the only inter-token whitespace the reconstruction can
/// express). Gaps are never empty, and a gap after a line comment always
/// contains a newline so the comment cannot swallow the next fragment.
fn source() -> impl Strategy<Value = String> {
    vec((0..FRAGMENTS.len(), 0u32..3, 0u32..4), 0..40).prop_map(|picks| {
        let mut src = String::new();
        for (i, (frag_idx, nl, sp)) in picks.iter().enumerate() {
            let frag = FRAGMENTS[*frag_idx];
            src.push_str(frag);
            if i + 1 == picks.len() {
                break;
            }
            let mut nl = *nl;
            let mut sp = *sp;
            if frag.starts_with("//") {
                nl = nl.max(1);
            }
            if nl == 0 && sp == 0 {
                sp = 1;
            }
            for _ in 0..nl {
                src.push('\n');
            }
            for _ in 0..sp {
                src.push(' ');
            }
        }
        src
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Tokenization is lossless: spans + gaps give the source back.
    #[test]
    fn tokens_and_gaps_reconstruct_source(src in source()) {
        prop_assert_eq!(reconstruct(&tokenize(&src)), src);
    }
}

/// The same reconstruction over the real repository: every file the lint
/// walk visits (rustfmt'd sources, so gaps are exactly spaces and
/// newlines) must round-trip. This is the fixed corpus backing the
/// randomized property, and it re-pins the walker's file-count floor.
#[test]
fn repository_sources_round_trip() {
    let root = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let report = tspg_lint::lint_root(&root, &["hot-alloc".into()]).expect("lint walk failed");
    assert!(
        report.context.files.len() >= 55,
        "suspiciously few files walked: {}",
        report.context.files.len()
    );
    for file in &report.context.files {
        // Whitespace after the last token is a gap with no successor, so
        // it is unrecoverable from the stream by design; everything up to
        // there must match byte for byte.
        let recon = reconstruct(&file.tokens);
        let tail = file
            .text
            .strip_prefix(&recon)
            .unwrap_or_else(|| panic!("tokenizer round-trip failed for {}", file.rel_path));
        assert!(
            tail.chars().all(char::is_whitespace),
            "non-whitespace after the last token in {}: {tail:?}",
            file.rel_path
        );
    }
}
