//! Property-based tests (proptest) of the core invariants, run on randomly
//! generated temporal graphs and queries. The headline exactness invariant
//! goes through the shared differential harness
//! (`tests/common/differential.rs`), so one property pins naive
//! enumeration == one-shot VUG == every batch-engine path at once.

mod common;

use common::differential::{
    assert_batch_matches_sequential, assert_sequential_matches_naive, EngineSetup,
};
use proptest::collection::vec;
use proptest::prelude::*;
use tspg_suite::core as vug;
use tspg_suite::prelude::*;

const MAX_VERTICES: u32 = 10;
const MAX_TIME: i64 = 10;

/// Strategy: a random directed temporal multigraph plus a query.
fn graph_and_query() -> impl Strategy<Value = (TemporalGraph, VertexId, VertexId, TimeInterval)> {
    let edge = (0..MAX_VERTICES, 0..MAX_VERTICES, 1..=MAX_TIME)
        .prop_map(|(u, v, t)| TemporalEdge::new(u, v, t));
    (vec(edge, 1..60), 0..MAX_VERTICES, 0..MAX_VERTICES, 1..=MAX_TIME, 0..MAX_TIME).prop_map(
        |(edges, s, t, begin, extra)| {
            let edges: Vec<TemporalEdge> = edges.into_iter().filter(|e| e.src != e.dst).collect();
            let graph = TemporalGraph::from_edges(MAX_VERTICES as usize, edges);
            let end = (begin + extra).min(MAX_TIME);
            (graph, s, t, TimeInterval::new(begin, end))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline invariant, through the differential harness: naive
    /// enumeration == the sequential engine path == the one-shot pipeline
    /// == the planned batch engine (with and without frontier sharing).
    #[test]
    fn vug_equals_naive_enumeration((graph, s, t, window) in graph_and_query()) {
        let query = Query::new(s, t, window);
        let vug_result = generate_tspg(&graph, s, t, window);
        let naive = naive_tspg(&graph, s, t, window, &Budget::unlimited());
        prop_assert!(naive.is_exact());
        prop_assert_eq!(&vug_result.tspg, &naive.tspg);
        assert_sequential_matches_naive(&graph, &[query]);
        assert_batch_matches_sequential(
            &graph,
            &[query],
            &[EngineSetup::new("default", PlannerConfig::default()).at_threads(&[1])],
        );
    }

    /// Subgraph chain: tspG ⊆ G_t ⊆ G_q ⊆ projection ⊆ G.
    #[test]
    fn upper_bound_graphs_nest((graph, s, t, window) in graph_and_query()) {
        let projection = EdgeSet::from_graph(&graph.project(window));
        let gq = vug::quick_upper_bound_graph(&graph, s, t, window);
        let gt = vug::tight_upper_bound_graph(&gq, s, t);
        let gq_set = EdgeSet::from_graph(&gq);
        let gt_set = EdgeSet::from_graph(&gt);
        let tspg = generate_tspg(&graph, s, t, window).tspg;
        prop_assert!(tspg.is_subset_of(&gt_set));
        prop_assert!(gt_set.is_subset_of(&gq_set));
        prop_assert!(gq_set.is_subset_of(&projection));
        prop_assert!(projection.is_subset_of(&EdgeSet::from_graph(&graph)));
    }

    /// Every enumerated temporal simple path is valid, and the polarity
    /// arrival time is a lower bound on (and attained by) path arrivals.
    #[test]
    fn polarity_times_bound_path_arrivals((graph, s, t, window) in graph_and_query()) {
        prop_assume!(s != t);
        let polarity = vug::compute_polarity(&graph, s, t, window);
        let out = enumerate_paths(&graph, s, t, window, &Budget::unlimited());
        for p in &out.paths {
            prop_assert!(p.validate(s, t, window).is_ok());
            // Each path's prefix arrival at its second-to-last vertex must
            // respect A(.): A(u) is the minimum over all paths avoiding t.
            let vertices = p.vertices();
            let second_last = vertices[vertices.len() - 2];
            if second_last != s {
                let arrival = polarity.arrival(second_last)
                    .expect("vertices on s->t paths are reachable");
                // the prefix of p reaches second_last at the next-to-last edge's time
                let prefix_arrival = p.edges()[p.len() - 2].time;
                prop_assert!(arrival <= prefix_arrival);
            }
        }
        // Lemma 1: every edge of every witness path is admitted by the
        // polarity times.
        for p in &out.paths {
            for e in p.edges() {
                prop_assert!(polarity.admits_edge(e.src, e.dst, e.time));
            }
        }
    }

    /// The quick upper-bound graph equals the Dijkstra-based tgTSG reduction.
    #[test]
    fn quick_ubg_equals_tg_tsg((graph, s, t, window) in graph_and_query()) {
        let gq = EdgeSet::from_graph(&vug::quick_upper_bound_graph(&graph, s, t, window));
        let tg = EdgeSet::from_graph(&tspg_suite::baselines::tg_tsg(&graph, s, t, window));
        prop_assert_eq!(gq, tg);
    }

    /// EdgeSet algebra is consistent with graph round-trips.
    #[test]
    fn edgeset_graph_roundtrip((graph, _s, _t, window) in graph_and_query()) {
        let projected = graph.project(window);
        let set = EdgeSet::from_graph(&projected);
        let back = set.to_graph(graph.num_vertices());
        prop_assert_eq!(back.edges(), projected.edges());
        prop_assert_eq!(set.num_edges(), projected.num_edges());
        prop_assert!(set.is_subset_of(&EdgeSet::from_graph(&graph)));
    }

    /// The tspG is independent of how the query window is reached: querying
    /// on the projected graph gives the same result as on the full graph.
    #[test]
    fn projection_invariance((graph, s, t, window) in graph_and_query()) {
        let full = generate_tspg(&graph, s, t, window).tspg;
        let projected = generate_tspg(&graph.project(window), s, t, window).tspg;
        prop_assert_eq!(full, projected);
    }

    /// Workload generation only emits temporally satisfiable queries.
    #[test]
    fn workloads_are_reachable(seed in 0u64..500) {
        let spec = &registry()[(seed % 3) as usize];
        let graph = spec.generate(Scale::tiny(), seed);
        let queries = generate_workload(&graph, 5, 6, seed).expect("workload");
        for q in &queries {
            prop_assert!(tspg_suite::datasets::is_reachable(&graph, q.source, q.target, q.window));
            prop_assert!(!generate_tspg(&graph, q.source, q.target, q.window).tspg.is_empty());
        }
    }
}
