//! Workspace smoke test: the single assertion CI relies on to prove the
//! whole dependency DAG is wired — `tspg_suite::prelude` must round-trip
//! the paper's Figure 1 fixture through the full VUG pipeline.

use tspg_suite::prelude::*;

#[test]
fn prelude_round_trips_the_figure1_fixture() {
    // Fixture and query come from `tspg_graph`, the algorithm from
    // `tspg_core`, all re-exported by the umbrella prelude.
    let g = figure1_graph();
    let (s, t, w) = figure1_query();
    let result = generate_tspg(&g, s, t, w);
    // Fig. 1(c): the tspG of the example query has exactly 4 edges.
    assert_eq!(result.tspg.num_edges(), 4);
    assert_eq!(result.tspg.num_vertices(), 4);
}

#[test]
fn prelude_reaches_every_member_crate() {
    let g = figure1_graph();
    let (s, t, w) = figure1_query();

    // tspg_enum: exhaustive enumeration agrees with Fig. 1(b).
    let out = enumerate_paths(&g, s, t, w, &Budget::unlimited());
    assert_eq!(out.paths.len(), 2);

    // tspg_baselines: every EP* baseline produces the same tspG as VUG.
    let vug = generate_tspg(&g, s, t, w).tspg;
    for algorithm in [EpAlgorithm::DtTsg, EpAlgorithm::EsTsg, EpAlgorithm::TgTsg] {
        let ep = run_ep(algorithm, &g, s, t, w, &Budget::unlimited());
        assert_eq!(ep.tspg, vug, "{} disagrees with VUG", algorithm.name());
    }

    // tspg_datasets: the registry generates non-trivial graphs with
    // satisfiable workloads.
    let spec = &registry()[0];
    let graph = spec.generate(Scale::tiny(), 42);
    assert!(graph.num_edges() > 0);
    let queries = generate_workload(&graph, 3, 6, 42).expect("workload");
    assert_eq!(queries.len(), 3);
}
