//! Cross-crate tests of streaming edge ingestion and epoch-versioned cache
//! invalidation: a live engine that interleaves `QueryEngine::ingest` with
//! query batches must answer every batch byte-identically to a fresh
//! engine built from scratch over the edge set of that epoch — across the
//! thread grid, with profile sharing on and off, with every cache warm.
//! The deterministic tests drive the interleaving and an explicit
//! stale-read attempt against each sharing layer (result LRU, published
//! tspGs inside a batch, the epoch-keyed profile cache); the proptest pins
//! the tentpole identity `extend_with_edges == from_edges` over random
//! batch splits, including unsorted and duplicate-timestamp batches.

mod common;

use common::differential::{assert_stats_invariants, sequential_results};
use proptest::collection::vec;
use proptest::prelude::*;
use tspg_suite::core::{PlannerConfig, QueryEngine, QuerySpec};
use tspg_suite::prelude::*;

/// Builds the live graph incrementally next to the union edge list so each
/// epoch's reference graph can be rebuilt from scratch.
fn edge_feed(graph: &TemporalGraph, batches: usize, seed: u64) -> Vec<Vec<TemporalEdge>> {
    let t_max = graph.edges().iter().map(|e| e.time).max().unwrap_or(0);
    let cfg = EdgeStreamConfig::new(batches, 12, t_max / 2).with_time_step((t_max / 4).max(1));
    generate_edge_stream(graph, &cfg, seed).expect("edge stream")
}

/// The interleaved differential suite (the tentpole's proof obligation):
/// ingestion and query batches alternate on one live engine, and at every
/// epoch each answer is byte-identical to a fresh engine built at that
/// epoch — across the 1/4/8-thread × profiles-on/off grid with the result
/// cache enabled and warm.
#[test]
fn interleaved_ingestion_matches_a_fresh_engine_at_every_epoch() {
    let spec = registry().into_iter().next().expect("registry has datasets");
    let graph = spec.generate(Scale::tiny(), 0x10);
    let queries: Vec<QuerySpec> =
        generate_workload(&graph, 30, spec.default_theta, 0x10).expect("workload");
    let stream = edge_feed(&graph, 3, 0x10);

    for planner in [PlannerConfig::default(), PlannerConfig::default().without_profile_sharing()] {
        for threads in [1usize, 4, 8] {
            let mut engine = QueryEngine::new(graph.clone()).with_planner(planner);
            let mut union = graph.edges().to_vec();
            for (epoch, batch) in stream.iter().enumerate() {
                // Warm every layer at this epoch, then query again: the
                // second pass is served from the caches.
                let (warmup, stats) = engine.run_batch_with_stats(&queries, threads);
                assert_stats_invariants(&stats);
                let (warm, warm_stats) = engine.run_batch_with_stats(&queries, threads);
                assert_stats_invariants(&warm_stats);
                assert!(
                    warm_stats.cache_hits > 0,
                    "threads={threads} epoch={epoch}: warm pass must hit the result cache"
                );

                // The reference: a fresh engine over this epoch's edges.
                let fresh_graph = TemporalGraph::from_edges(graph.num_vertices(), union.clone());
                let fresh = sequential_results(&fresh_graph, &queries);
                for (i, want) in fresh.iter().enumerate() {
                    assert_eq!(
                        warmup[i].tspg, want.tspg,
                        "threads={threads} epoch={epoch} query #{i}: cold pass stale"
                    );
                    assert_eq!(
                        warm[i].tspg, want.tspg,
                        "threads={threads} epoch={epoch} query #{i}: warm pass stale"
                    );
                }

                let before = engine.epoch();
                let after = engine.ingest(batch);
                assert_eq!(after, before.next(), "epochs advance by exactly one per batch");
                union.extend_from_slice(batch);
            }
            // One final post-ingestion pass against the full union.
            let fresh_graph = TemporalGraph::from_edges(graph.num_vertices(), union.clone());
            let fresh = sequential_results(&fresh_graph, &queries);
            let (last, _) = engine.run_batch_with_stats(&queries, threads);
            for (i, want) in fresh.iter().enumerate() {
                assert_eq!(last[i].tspg, want.tspg, "threads={threads} final pass query #{i}");
            }
            assert_eq!(engine.epoch().value(), stream.len() as u64);
        }
    }
}

/// The explicit stale-read attempt: warm every sharing layer, then ingest
/// an edge that is guaranteed to change the answers (a direct `s -> t`
/// edge inside the query window is always part of the tspG), and prove
/// that no layer — result LRU, published tspGs, profile cache — can serve
/// a pre-ingestion entry.
#[test]
fn no_cache_layer_serves_a_pre_ingestion_answer() {
    let graph = figure1_graph();
    let (s, t, w) = figure1_query();
    // A same-source fan-out with mixed begins: the shape that forms
    // profile groups, so the profile cache is genuinely exercised.
    let queries = vec![
        QuerySpec::new(s, t, w),
        QuerySpec::new(s, 5, TimeInterval::new(w.begin() + 1, w.end())),
        QuerySpec::new(s, t, w),
    ];
    let mut engine = QueryEngine::new(graph.clone());

    let (cold, _) = engine.run_batch_with_stats(&queries, 2);
    let (warm, warm_stats) = engine.run_batch_with_stats(&queries, 2);
    assert!(warm_stats.cache_hits > 0, "the result cache must be warm: {warm_stats:?}");
    for (a, b) in cold.iter().zip(warm.iter()) {
        assert_eq!(a.tspg, b.tspg);
    }
    let profile_misses_before = engine.profile_cache_stats().expect("default profile cache").misses;

    // The guaranteed answer-changing delta.
    let delta = [TemporalEdge::new(s, t, 5)];
    assert!(w.contains(5), "the delta edge must land inside the query window");
    let epoch = engine.ingest(&delta);
    assert_eq!(epoch.value(), 1);

    let (post, post_stats) = engine.run_batch_with_stats(&queries, 2);
    assert_eq!(
        post_stats.cache_hits, 0,
        "the epoch flush must leave nothing for the first post-ingestion batch: {post_stats:?}"
    );
    let fresh_graph = {
        let mut edges = graph.edges().to_vec();
        edges.extend_from_slice(&delta);
        TemporalGraph::from_edges(graph.num_vertices(), edges)
    };
    for (i, want) in sequential_results(&fresh_graph, &queries).iter().enumerate() {
        assert_eq!(post[i].tspg, want.tspg, "query #{i} served a stale answer");
    }
    // The s -> t queries must actually have changed (the stale answers are
    // distinguishable, not accidentally equal).
    assert_ne!(warm[0].tspg, post[0].tspg, "the delta edge must change the answer");
    assert!(post[0].tspg.contains_edge(s, t, 5), "the ingested edge belongs to the new tspG");

    // The profile cache was not flushed — entries are epoch-keyed — so the
    // old profiles are unreachable by construction and the new epoch pays
    // fresh misses.
    let profile_misses_after = engine.profile_cache_stats().expect("default profile cache").misses;
    assert!(
        profile_misses_after > profile_misses_before,
        "epoch-scoped profile keys must miss after ingestion \
         ({profile_misses_before} -> {profile_misses_after})"
    );
}

/// Epoch bookkeeping at the graph layer: every append bumps the version by
/// one — even a batch that deduplicates away entirely — and scratch-built
/// graphs start at epoch zero.
#[test]
fn epochs_are_monotonic_and_start_at_zero() {
    let mut graph = figure1_graph();
    assert_eq!(graph.epoch(), GraphEpoch::ZERO);
    assert_eq!(GraphEpoch::ZERO.next().value(), 1);
    let first = graph.edges()[0];
    for expect in 1..=3u64 {
        let epoch = graph.extend_with_edges(&[first]);
        assert_eq!(epoch.value(), expect, "an all-duplicate batch still bumps the epoch");
    }
    let empty_batch = graph.extend_with_edges(&[]);
    assert_eq!(empty_batch.value(), 4, "even an empty batch is a new epoch");
    assert!(GraphEpoch::ZERO < empty_batch && empty_batch < empty_batch.next(), "total order");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite 3 — the tentpole identity: appending random batch splits
    /// through `extend_with_edges` is byte-identical (edges, CSR slices,
    /// timestamps) to a one-shot `from_edges` build of the same edge
    /// multiset, however unsorted the batches arrive and however many
    /// duplicate timestamps (or fully duplicate edges) they carry.
    #[test]
    fn incremental_extension_is_byte_identical_to_from_scratch(
        (raw, cuts) in (vec((0u32..24, 0u32..24, 0i64..40), 1..120), vec(0usize..120, 0..6))
    ) {
        let edges: Vec<TemporalEdge> =
            raw.iter().map(|&(u, v, t)| TemporalEdge::new(u, v, t)).collect();
        // Random split points over the edge list; the first chunk seeds the
        // graph through `from_edges`, the rest arrive as ingestion batches.
        let mut cuts: Vec<usize> = cuts.iter().map(|&c| c % (edges.len() + 1)).collect();
        cuts.push(0);
        cuts.push(edges.len());
        cuts.sort_unstable();
        cuts.dedup();
        let mut live = TemporalGraph::from_edges(1, edges[..cuts[1]].to_vec());
        prop_assert_eq!(live.epoch(), GraphEpoch::ZERO);
        for pair in cuts[1..].windows(2) {
            live.extend_with_edges(&edges[pair[0]..pair[1]]);
        }
        let fresh = TemporalGraph::from_edges(1, edges.clone());

        prop_assert_eq!(live.epoch().value(), (cuts.len() - 2) as u64);
        prop_assert_eq!(live.num_vertices(), fresh.num_vertices());
        prop_assert_eq!(live.edges(), fresh.edges());
        for v in 0..fresh.num_vertices() as u32 {
            prop_assert_eq!(live.out_neighbors(v), fresh.out_neighbors(v));
            prop_assert_eq!(live.in_neighbors(v), fresh.in_neighbors(v));
        }
    }
}
