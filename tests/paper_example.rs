//! End-to-end integration test reproducing every worked example of the paper
//! (Examples 1–8) across crate boundaries.

use tspg_suite::prelude::*;
use tspg_suite::{baselines, core, enumeration, graph};

#[test]
fn example_1_two_paths_and_the_tspg() {
    let g = figure1_graph();
    let (s, t, w) = figure1_query();
    // Example 1: exactly two temporal simple paths within [2, 7]...
    let paths = enumerate_paths(&g, s, t, w, &Budget::unlimited());
    assert_eq!(paths.paths.len(), 2);
    // ... sharing the edge e(s, b, 2), yielding a 4-vertex / 4-edge tspG.
    let result = generate_tspg(&g, s, t, w);
    assert_eq!(result.tspg.num_edges(), 4);
    assert_eq!(result.tspg.num_vertices(), 4);
    assert!(result.tspg.contains_edge(0, 2, 2));
}

#[test]
fn example_2_baseline_upper_bound_sizes() {
    let g = figure1_graph();
    let (s, t, w) = figure1_query();
    // Fig. 2: dtTSG keeps everything (all 14 edges are inside [2,7]),
    // esTSG keeps 9 edges, tgTSG keeps 8 edges.
    assert_eq!(baselines::dt_tsg(&g, w).num_edges(), 14);
    assert_eq!(baselines::es_tsg(&g, s, t, w).num_edges(), 9);
    assert_eq!(baselines::tg_tsg(&g, s, t, w).num_edges(), 8);
}

#[test]
fn examples_3_to_5_polarity_times() {
    let g = figure1_graph();
    let (s, t, w) = figure1_query();
    let polarity = core::compute_polarity(&g, s, t, w);
    // Example 3: A(f) = 4, D(f) = 5.
    assert_eq!(polarity.arrival(6), Some(4));
    assert_eq!(polarity.departure(6), Some(5));
    // Example 5: A(b) = 2, A(a) = 3, A(d) ends at 3.
    assert_eq!(polarity.arrival(2), Some(2));
    assert_eq!(polarity.arrival(1), Some(3));
    assert_eq!(polarity.arrival(4), Some(3));
}

#[test]
fn example_4_quick_upper_bound_graph() {
    let g = figure1_graph();
    let (s, t, w) = figure1_query();
    let gq = core::quick_upper_bound_graph(&g, s, t, w);
    assert_eq!(gq.num_edges(), 8);
    assert!(!gq.has_edge(0, 1, 3)); // e(s, a, 3) excluded: D(a) = -inf
    assert!(!gq.has_edge(4, 7, 2)); // e(d, t, 2) excluded: A(d) = 3 > 2
}

#[test]
fn examples_6_and_7_time_stream_common_vertices() {
    let g = figure1_graph();
    let (s, t, w) = figure1_query();
    let gq = core::quick_upper_bound_graph(&g, s, t, w);
    let tcv = core::TcvTables::compute(&gq, s, t);
    // Example 6: T_out(f, Gq) = {5}, single backward entry.
    assert_eq!(gq.out_times(6), vec![5]);
    // Example 7: TCV_5(f, t) ends up as {f} after the intersection.
    assert_eq!(tcv.backward(6, 5).to_vec(), vec![6]);
    assert_eq!(tcv.backward(5, 6).to_vec(), vec![3, 5]); // TCV_6(e,t) = {c, e}
}

#[test]
fn example_8_tight_upper_bound_graph() {
    let g = figure1_graph();
    let (s, t, w) = figure1_query();
    let gq = core::quick_upper_bound_graph(&g, s, t, w);
    let gt = core::tight_upper_bound_graph(&gq, s, t);
    // e(c, f, 4) is kept in G_t (Example 8) even though it is not in the
    // final tspG — it is the one edge EEV has to reject by search.
    assert!(gt.has_edge(3, 6, 4));
    assert_eq!(gt.num_edges(), 5);
    let eev = core::escaped_edges_verification(&gt, s, t, w, core::BidirOptions::default());
    assert_eq!(eev.stats.rejected, 1);
    assert_eq!(eev.tspg.num_edges(), 4);
}

#[test]
fn all_five_algorithms_agree_on_the_running_example() {
    let g = figure1_graph();
    let (s, t, w) = figure1_query();
    let expected = EdgeSet::from_edges(graph::fixtures::figure1_expected_tspg_edges());
    assert_eq!(generate_tspg(&g, s, t, w).tspg, expected);
    assert_eq!(enumeration::naive_tspg(&g, s, t, w, &Budget::unlimited()).tspg, expected);
    for alg in EpAlgorithm::ALL {
        assert_eq!(run_ep(alg, &g, s, t, w, &Budget::unlimited()).tspg, expected);
    }
}

#[test]
fn graph_io_roundtrip_preserves_query_results() {
    let g = figure1_graph();
    let (s, t, w) = figure1_query();
    let mut buffer = Vec::new();
    graph::io::write_edge_list(&g, &mut buffer).unwrap();
    let reloaded = graph::io::read_edge_list(&buffer[..]).unwrap();
    assert_eq!(generate_tspg(&reloaded, s, t, w).tspg, generate_tspg(&g, s, t, w).tspg);
}
