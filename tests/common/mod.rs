//! Shared helpers of the cross-crate integration tests.

pub mod differential;
