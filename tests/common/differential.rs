//! Reusable differential harness: every planner/executor/cache feature of
//! the batch engine must be answer-invisible, and PRs 2–4 each grew their
//! own ad-hoc byte-identity test for it. This module is the one shared
//! implementation of that pattern.
//!
//! [`assert_batch_matches_sequential`] answers a batch through any number
//! of engine configurations (each across several thread counts and warm
//! passes) and asserts, per batch slot, byte-identity of the tspG — and of
//! the result-derived report fields — against the PR 2 sequential path
//! (one raw pipeline execution per query, no planner, no cache). It also
//! asserts the [`BatchStats`] bookkeeping invariants on every run and
//! returns the collected stats so callers can pin feature-specific
//! expectations (cache hits, envelope counts, profile groups) on top.

// Each test binary compiles this module independently and uses a different
// subset of the helpers.
#![allow(dead_code)]

use tspg_suite::core::QueryScratch;
use tspg_suite::prelude::*;

/// One engine configuration to pin against the PR 2 sequential path.
#[derive(Clone, Debug)]
pub struct EngineSetup {
    /// Shown in every assertion message.
    pub label: String,
    /// Planner policy of the engine under test.
    pub planner: PlannerConfig,
    /// Result-cache bound, or `None` for a cache-less engine.
    pub cache: Option<CacheConfig>,
    /// Worker-thread counts the batch is answered at (each on a fresh
    /// engine, so thread counts never see each other's cache state).
    pub threads: Vec<usize>,
    /// Times the same batch is replayed through one engine; passes beyond
    /// the first exercise the warm result cache and the planner's density
    /// feedback.
    pub passes: usize,
}

impl EngineSetup {
    /// A cache-less setup answering at 1, 4 and 8 worker threads.
    pub fn new(label: impl Into<String>, planner: PlannerConfig) -> Self {
        Self { label: label.into(), planner, cache: None, threads: vec![1, 4, 8], passes: 1 }
    }

    /// Adds a result cache and a second (warm) pass.
    pub fn with_cache(mut self, entries: usize) -> Self {
        self.cache = Some(CacheConfig::with_max_entries(entries));
        self.passes = self.passes.max(2);
        self
    }

    /// Overrides the worker-thread counts.
    pub fn at_threads(mut self, threads: &[usize]) -> Self {
        self.threads = threads.to_vec();
        self
    }

    /// The full planner-feature grid crossed with cache on/off: every
    /// combination of `envelopes` × `profile_sharing` × cache, the
    /// configuration space the `BatchStats` invariants must hold over.
    pub fn grid() -> Vec<EngineSetup> {
        let mut setups = Vec::new();
        for (env_label, base) in [
            ("envelopes", PlannerConfig::default()),
            ("containment", PlannerConfig::containment_only()),
        ] {
            for (profile_label, planner) in
                [("profiles", base), ("no-profiles", base.without_profile_sharing())]
            {
                for cached in [false, true] {
                    let label = format!(
                        "{env_label}/{profile_label}/{}",
                        if cached { "cache" } else { "no-cache" }
                    );
                    let setup = EngineSetup::new(label, planner);
                    setups.push(if cached { setup.with_cache(4096) } else { setup });
                }
            }
        }
        setups
    }
}

/// The PR 2 sequential path: one raw pipeline execution per query out of a
/// warm scratch, bypassing planner and cache. This is the reference every
/// batch configuration is held to.
pub fn sequential_results(graph: &TemporalGraph, queries: &[QuerySpec]) -> Vec<VugResult> {
    let engine = QueryEngine::new(graph.clone()).without_cache();
    let mut scratch = QueryScratch::new();
    queries.iter().map(|&q| engine.run(q, &mut scratch)).collect()
}

/// The [`BatchStats`] bookkeeping invariants that hold for *every* batch,
/// regardless of planner configuration:
///
/// * the six answer buckets partition the batch (each query is answered
///   exactly one way);
/// * planning never runs more full-graph pipelines than there are queries;
/// * the profile overlay counters stay within their bounds (`answered ≤
///   queries`, and sharing implies ≥ 2 member runs per group, i.e.
///   `2 × profile_groups ≤ pipeline_runs`).
pub fn assert_stats_invariants(stats: &BatchStats) {
    assert_eq!(
        stats.executed_units
            + stats.shared_answered
            + stats.envelope_answered
            + stats.dedup_answered
            + stats.cache_hits
            + stats.degenerate,
        stats.queries,
        "every query is answered exactly one way: {stats:?}"
    );
    assert!(
        stats.pipeline_runs() <= stats.queries,
        "planning must never add net pipeline runs: {stats:?}"
    );
    assert!(stats.profile_answered <= stats.queries, "overlay bound: {stats:?}");
    assert!(
        stats.profile_groups * 2 <= stats.pipeline_runs(),
        "every profile group shares across at least two member runs: {stats:?}"
    );
}

/// Answers `queries` through every setup × thread count × pass and asserts
/// each slot's answer is byte-identical to the PR 2 sequential path, in
/// order. Returns the stats of every run (in setup-major order) for
/// feature-specific follow-up assertions.
pub fn assert_batch_matches_sequential(
    graph: &TemporalGraph,
    queries: &[QuerySpec],
    setups: &[EngineSetup],
) -> Vec<BatchStats> {
    let sequential = sequential_results(graph, queries);
    let mut collected = Vec::new();
    for setup in setups {
        for &threads in &setup.threads {
            let mut engine = QueryEngine::new(graph.clone()).with_planner(setup.planner);
            engine = match setup.cache {
                Some(cache) => engine.with_cache(cache),
                None => engine.without_cache(),
            };
            for pass in 0..setup.passes.max(1) {
                let (results, stats) = engine.run_batch_with_stats(queries, threads);
                let context = |i: usize| {
                    format!(
                        "[{}] threads={threads} pass={pass} query #{i} ({})",
                        setup.label, queries[i]
                    )
                };
                assert_eq!(results.len(), queries.len(), "[{}] result arity", setup.label);
                assert_stats_invariants(&stats);
                if setup.cache.is_some() && pass > 0 {
                    assert_eq!(
                        stats.pipeline_runs(),
                        0,
                        "[{}] threads={threads} pass={pass}: a replayed batch must be answered \
                         from the cache: {stats:?}",
                        setup.label
                    );
                }
                for (i, (got, want)) in results.iter().zip(&sequential).enumerate() {
                    assert_eq!(got.tspg, want.tspg, "{}", context(i));
                    assert_eq!(got.report.result_edges, want.report.result_edges, "{}", context(i));
                    assert_eq!(
                        got.report.result_vertices,
                        want.report.result_vertices,
                        "{}",
                        context(i)
                    );
                }
                collected.push(stats);
            }
        }
    }
    collected
}

/// Exactness anchor: the sequential path itself must equal exhaustive
/// naive enumeration on every query. Combined with
/// [`assert_batch_matches_sequential`] this pins the whole engine, not
/// just its internal consistency.
pub fn assert_sequential_matches_naive(graph: &TemporalGraph, queries: &[QuerySpec]) {
    for (i, result) in sequential_results(graph, queries).iter().enumerate() {
        let q = queries[i];
        let naive = naive_tspg(graph, q.source, q.target, q.window, &Budget::unlimited());
        assert!(naive.is_exact(), "naive enumeration must not be budget-limited");
        assert_eq!(result.tspg, naive.tspg, "query #{i} ({q}) diverged from enumeration");
    }
}
