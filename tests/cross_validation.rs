//! Randomised cross-validation across crates: on hundreds of random graphs
//! and queries, the VUG pipeline, the naive enumeration and the three
//! enumeration baselines must produce the identical temporal simple path
//! graph, and the intermediate upper-bound graphs must nest correctly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tspg_suite::prelude::*;
use tspg_suite::{baselines, core};

struct Case {
    graph: TemporalGraph,
    source: VertexId,
    target: VertexId,
    window: TimeInterval,
}

fn random_case(rng: &mut StdRng, max_vertices: u32, max_edges: usize, max_time: i64) -> Case {
    let n = rng.random_range(4..=max_vertices);
    let m = rng.random_range(6..=max_edges);
    let edges: Vec<TemporalEdge> = (0..m)
        .map(|_| {
            TemporalEdge::new(
                rng.random_range(0..n),
                rng.random_range(0..n),
                rng.random_range(1..=max_time),
            )
        })
        .filter(|e| e.src != e.dst)
        .collect();
    let graph = TemporalGraph::from_edges(n as usize, edges);
    let source = rng.random_range(0..n);
    let mut target = rng.random_range(0..n);
    if target == source {
        target = (target + 1) % n;
    }
    let begin = rng.random_range(1..=max_time / 2);
    let end = rng.random_range(begin..=max_time);
    Case { graph, source, target, window: TimeInterval::new(begin, end) }
}

#[test]
fn all_algorithms_agree_on_random_sparse_graphs() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case_no in 0..120 {
        let case = random_case(&mut rng, 14, 70, 12);
        let expected =
            naive_tspg(&case.graph, case.source, case.target, case.window, &Budget::unlimited())
                .tspg;
        let vug = generate_tspg(&case.graph, case.source, case.target, case.window);
        assert_eq!(vug.tspg, expected, "case {case_no}: VUG vs enumeration");
        for alg in EpAlgorithm::ALL {
            let ep = run_ep(
                alg,
                &case.graph,
                case.source,
                case.target,
                case.window,
                &Budget::unlimited(),
            );
            assert_eq!(ep.tspg, expected, "case {case_no}: {alg} vs enumeration");
        }
    }
}

#[test]
fn all_algorithms_agree_on_random_dense_graphs() {
    // Denser graphs with a narrow timestamp domain maximise parallel edges
    // and temporal cycles, the hard cases for the simple-path constraint.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case_no in 0..40 {
        let case = random_case(&mut rng, 9, 160, 7);
        let expected =
            naive_tspg(&case.graph, case.source, case.target, case.window, &Budget::unlimited())
                .tspg;
        let vug = generate_tspg(&case.graph, case.source, case.target, case.window);
        assert_eq!(vug.tspg, expected, "case {case_no}");
        let no_tight = generate_tspg_with(
            &case.graph,
            case.source,
            case.target,
            case.window,
            &VugConfig::without_tight_ubg(),
        );
        assert_eq!(no_tight.tspg, expected, "case {case_no} (ablation)");
    }
}

#[test]
fn upper_bound_graphs_nest_and_contain_the_result() {
    let mut rng = StdRng::seed_from_u64(0xDEAD);
    for case_no in 0..80 {
        let case = random_case(&mut rng, 16, 90, 14);
        let projection = EdgeSet::from_graph(&case.graph.project(case.window));
        let es = EdgeSet::from_graph(&baselines::es_tsg(
            &case.graph,
            case.source,
            case.target,
            case.window,
        ));
        let tg = EdgeSet::from_graph(&baselines::tg_tsg(
            &case.graph,
            case.source,
            case.target,
            case.window,
        ));
        let gq = core::quick_upper_bound_graph(&case.graph, case.source, case.target, case.window);
        let gq_set = EdgeSet::from_graph(&gq);
        let gt = core::tight_upper_bound_graph(&gq, case.source, case.target);
        let gt_set = EdgeSet::from_graph(&gt);
        let tspg = generate_tspg(&case.graph, case.source, case.target, case.window).tspg;

        assert_eq!(gq_set, tg, "case {case_no}: QuickUBG == tgTSG");
        assert!(tspg.is_subset_of(&gt_set), "case {case_no}: tspG ⊆ G_t");
        assert!(gt_set.is_subset_of(&gq_set), "case {case_no}: G_t ⊆ G_q");
        assert!(gq_set.is_subset_of(&es), "case {case_no}: G_q ⊆ esTSG");
        assert!(es.is_subset_of(&projection), "case {case_no}: esTSG ⊆ projection");
    }
}

#[test]
fn every_reported_edge_lies_on_a_witness_path() {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    for case_no in 0..40 {
        let case = random_case(&mut rng, 12, 60, 10);
        let tspg = generate_tspg(&case.graph, case.source, case.target, case.window).tspg;
        // Collect the union of all enumerated paths' edges and check set
        // equality in both directions (soundness and completeness).
        let enumeration = enumerate_paths(
            &case.graph,
            case.source,
            case.target,
            case.window,
            &Budget::unlimited(),
        );
        let mut union = EdgeSet::new();
        for p in &enumeration.paths {
            p.validate(case.source, case.target, case.window).unwrap();
            for e in p.edges() {
                union.insert(*e);
            }
        }
        assert_eq!(tspg, union, "case {case_no}");
    }
}

#[test]
fn batch_workloads_on_registry_datasets_are_consistent() {
    // A smoke-sized end-to-end run across the dataset registry: every query
    // must produce identical results from VUG and from EPtgTSG.
    for spec in registry().into_iter().take(3) {
        let graph = spec.generate(Scale::tiny(), 11);
        let queries = generate_workload(&graph, 8, spec.default_theta.min(8), 5).expect("workload");
        for q in &queries {
            let vug = generate_tspg(&graph, q.source, q.target, q.window);
            let ep = run_ep(
                EpAlgorithm::TgTsg,
                &graph,
                q.source,
                q.target,
                q.window,
                &Budget::unlimited(),
            );
            assert_eq!(vug.tspg, ep.tspg, "dataset {} query {q:?}", spec.id);
            assert!(
                !vug.tspg.is_empty(),
                "workload queries are reachable, so the tspG is non-empty"
            );
        }
    }
}
