//! Proptest pin of the PR 8 tentpole exactness claim: an
//! [`ArrivalProfile`] computed once over a hull window, then clamped at
//! *any* member window inside that hull — any begin, not just the hull's —
//! is byte-identical (same struct, `Eq`) to a fresh [`SourceFrontier`]
//! forward pass over the member window. This is the property that lets the
//! planner group fan-out bursts by source alone and the executor answer
//! every member from one shared forward pass.
//!
//! The negative direction is pinned too: `covers` must reject windows
//! poking outside the hull and foreign sources, so a resident profile (in
//! the engine's profile cache) can never be clamped at a window it is not
//! exact for.

use proptest::collection::vec;
use proptest::prelude::*;
use tspg_suite::prelude::*;

const N: u32 = 10;
const T_MAX: i64 = 12;

/// A random small temporal graph, a source, a hull window inside the
/// timestamp domain and a member window inside the hull.
fn profile_case() -> impl Strategy<Value = (TemporalGraph, u32, TimeInterval, TimeInterval)> {
    let edge = (0..N, 0..N, 1..=T_MAX).prop_map(|(u, v, t)| TemporalEdge::new(u, v, t));
    (vec(edge, 1..60), 0..N, 1..=6i64, 0..=6i64, 0..=100i64, 0..=100i64).prop_map(
        |(edges, source, hull_begin, hull_extra, begin_pct, end_pct)| {
            let edges: Vec<TemporalEdge> = edges.into_iter().filter(|e| e.src != e.dst).collect();
            let graph = TemporalGraph::from_edges(N as usize, edges);
            let hull_end = (hull_begin + hull_extra).min(T_MAX);
            let hull = TimeInterval::new(hull_begin, hull_end);
            // Member window: slide the begin forward and pull the end back
            // by percentages of the hull span, keeping begin <= end.
            let span = hull_end - hull_begin;
            let begin = hull_begin + begin_pct * span / 100;
            let end = hull_end - end_pct * (hull_end - begin) / 100;
            (graph, source, hull, TimeInterval::new(begin, end.max(begin)))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Clamping at any member window inside the hull equals a fresh
    /// forward pass over that window, field for field.
    #[test]
    fn clamp_is_byte_identical_to_a_fresh_frontier(
        (graph, source, hull, member) in profile_case()
    ) {
        let profile = ArrivalProfile::compute(&graph, source, hull);
        prop_assert!(profile.covers(source, member), "{hull} must cover {member}");
        let clamped = profile.clamp(member);
        let fresh = SourceFrontier::compute(&graph, source, member);
        prop_assert_eq!(&clamped, &fresh, "clamp at {} diverged from a fresh pass", member);
        // The clamped frontier is begin-anchored at the member window, so
        // all downstream frontier consumers see exactly what PR 5 built.
        prop_assert!(clamped.covers(source, member));
    }

    /// `covers` rejects every window poking outside the hull and every
    /// foreign source — the guard that keeps resident (cached) profiles
    /// from answering queries they are not exact for.
    #[test]
    fn covers_rejects_windows_outside_the_hull(
        ((graph, source, hull, _), stretch) in (profile_case(), 1..=4i64)
    ) {
        let profile = ArrivalProfile::compute(&graph, source, hull);
        let early = TimeInterval::new(hull.begin() - stretch, hull.end());
        let late = TimeInterval::new(hull.begin(), hull.end() + stretch);
        prop_assert!(!profile.covers(source, early), "begin before the hull: {early}");
        prop_assert!(!profile.covers(source, late), "end past the hull: {late}");
        prop_assert!(!profile.covers(source + N, hull), "foreign source");
    }
}
