//! Cross-crate tests of the batch query engine, built on the shared
//! differential harness (`tests/common/differential.rs`): every planner /
//! executor / cache configuration must answer batches byte-identically to
//! the PR 2 sequential path (and, through the naive-enumeration anchor, to
//! exhaustive path enumeration). The deterministic tests pin the
//! acceptance workloads — a generated 100-query batch, skewed serving
//! traffic, the issue's adversarial overlap chain, same-source fan-out
//! bursts and the dense-graph envelope heuristic — while the proptests
//! sweep random graphs and batches through the full configuration grid.

mod common;

use common::differential::{
    assert_batch_matches_sequential, assert_sequential_matches_naive, assert_stats_invariants,
    sequential_results, EngineSetup,
};
use proptest::collection::vec;
use proptest::prelude::*;
use tspg_suite::core::{CacheConfig, PlannerConfig, QueryEngine, QuerySpec};
use tspg_suite::prelude::*;

/// The acceptance-criterion test: a 100-query generated workload, answered
/// as one batch under the default and the feature-grid configurations,
/// must return exactly what 100 independent one-shot calls return — same
/// edge sets, same sizes, same order.
#[test]
fn batch_of_100_workload_queries_matches_one_shot_vug() {
    let spec = registry().into_iter().next().expect("registry has datasets");
    let graph = spec.generate(Scale::tiny(), 0xfeed);
    let queries: Vec<QuerySpec> =
        generate_workload(&graph, 100, spec.default_theta, 99).expect("workload");
    assert_eq!(queries.len(), 100, "workload generation must fill the batch");

    // The harness pins batches against the PR 2 sequential path; anchor
    // that path itself against the one-shot pipeline entry point first.
    let sequential = sequential_results(&graph, &queries);
    for (q, r) in queries.iter().zip(sequential.iter()) {
        let one_shot = generate_tspg(&graph, q.source, q.target, q.window);
        assert_eq!(r.tspg, one_shot.tspg, "sequential path diverged from one-shot for {q}");
    }
    assert_batch_matches_sequential(
        &graph,
        &queries,
        &[EngineSetup::new("default", PlannerConfig::default()).with_cache(1024)],
    );
}

/// The serving acceptance gate: on a skewed repeated workload the planned +
/// cached engine answers the batch with *fewer full pipeline executions
/// than queries*, the counters prove where every answer came from, and all
/// answers are byte-identical to PR 2's sequential path.
#[test]
fn skewed_workload_is_answered_with_fewer_pipeline_executions_than_queries() {
    let spec = registry().into_iter().next().expect("registry has datasets");
    let graph = spec.generate(Scale::tiny(), 0xfeed);
    let cfg = RepeatedWorkloadConfig::new(200, 25, spec.default_theta);
    let queries = generate_repeated_workload(&graph, &cfg, 7).expect("workload");
    assert_eq!(queries.len(), 200);

    let sequential = sequential_results(&graph, &queries);

    // Planned + cached serving: two batches, so the second can hit the
    // cache populated by the first.
    let engine = QueryEngine::new(graph).with_cache(CacheConfig::with_max_entries(1024));
    let (first_half, second_half) = queries.split_at(queries.len() / 2);
    let (mut results, mut stats) = engine.run_batch_with_stats(first_half, 4);
    let (more, second_stats) = engine.run_batch_with_stats(second_half, 4);
    results.extend(more);
    stats.merge(&second_stats);

    assert_eq!(stats.queries, queries.len());
    assert!(
        stats.pipeline_runs() < queries.len(),
        "planning + caching must execute fewer full pipelines ({}) than queries ({})",
        stats.pipeline_runs(),
        queries.len()
    );
    assert!(stats.dedup_answered > 0, "a skewed workload must contain duplicates: {stats:?}");
    assert!(stats.cache_hits > 0, "the second batch must hit the cache: {stats:?}");
    assert_stats_invariants(&stats);
    for (i, (a, b)) in sequential.iter().zip(results.iter()).enumerate() {
        assert_eq!(a.tspg, b.tspg, "query #{i} diverged from the sequential path");
    }
}

/// Strategy: a random small temporal graph plus a query batch that
/// deliberately includes degenerate shapes — `s == t` queries, windows with
/// a single timestamp (`begin == end`), and windows placed so that many
/// results are empty.
fn graph_and_batch() -> impl Strategy<Value = (TemporalGraph, Vec<QuerySpec>)> {
    const N: u32 = 9;
    let edge = (0..N, 0..N, 1..=8i64).prop_map(|(u, v, t)| TemporalEdge::new(u, v, t));
    let query = (0..N, 0..N, 1..=8i64, 0..=4i64).prop_map(|(s, t, begin, extra)| {
        // `extra == 0` yields single-timestamp windows; `s == t` is kept.
        QuerySpec::new(s, t, TimeInterval::new(begin, (begin + extra).min(8)))
    });
    (vec(edge, 1..40), vec(query, 1..12)).prop_map(|(edges, queries)| {
        let edges: Vec<TemporalEdge> = edges.into_iter().filter(|e| e.src != e.dst).collect();
        (TemporalGraph::from_edges(N as usize, edges), queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Differential invariant: for every query of every batch, the engine
    /// (sequential and parallel), the one-shot VUG path and the naive
    /// enumeration edge-union all agree exactly.
    #[test]
    fn batch_engine_matches_one_shot_and_naive_enumeration(
        (graph, queries) in graph_and_batch()
    ) {
        assert_sequential_matches_naive(&graph, &queries);
        assert_batch_matches_sequential(
            &graph,
            &queries,
            &[EngineSetup::new("default", PlannerConfig::default()).at_threads(&[1, 3])],
        );
    }

    /// The planner/cache differential invariant: a batch deliberately
    /// stuffed with exact duplicates and contained windows — the shapes
    /// dedup, window sharing and the cache all fire on — answered through
    /// the full configuration grid (cached setups twice, so the second
    /// pass is pure cache) equals PR 2's sequential per-query path, order
    /// preserved.
    #[test]
    fn planned_and_cached_batches_match_the_sequential_path(
        ((graph, base), picks) in (
            graph_and_batch(),
            vec((0..64usize, 0..3usize, 0..=2i64, 0..=2i64), 1..20),
        )
    ) {
        // Derive a repetition-heavy batch from the base queries: exact
        // repeats and narrowed (contained) windows of earlier entries.
        let mut queries: Vec<QuerySpec> = base.clone();
        for (pick, kind, shrink_lo, shrink_hi) in picks {
            let q = base[pick % base.len()];
            match kind {
                0 => queries.push(q), // exact duplicate
                1 => {
                    // Contained window (clamped shrink keeps it non-empty).
                    let b = q.window.begin() + shrink_lo.min(q.window.span() - 1);
                    let e = (q.window.end() - shrink_hi).max(b);
                    queries.push(QuerySpec::new(q.source, q.target, TimeInterval::new(b, e)));
                }
                _ => queries.push(QuerySpec::new(q.target, q.source, q.window)),
            }
        }
        assert_batch_matches_sequential(
            &graph,
            &queries,
            &[EngineSetup::new("default", PlannerConfig::default())
                .with_cache(4096)
                .at_threads(&[3])],
        );
    }

    /// The envelope differential invariant: overlap chains, nested
    /// refinements and disjoint windows of a few endpoint pairs — the
    /// shapes envelope planning clusters, splits on the cost guard, and
    /// leaves alone — under containment-only, default and near-unbounded
    /// cost guards, across thread counts that force follower stealing.
    #[test]
    fn envelope_planned_batches_match_the_sequential_path(
        ((graph, _), shapes) in (
            graph_and_batch(),
            vec((0..4u32, 0..4u32, 1..=6i64, 1..=4i64, 0..=3i64), 4..24),
        )
    ) {
        // Build overlap chains deterministically from the shape tuples:
        // (s, t, begin, span extent, slide) — sliding by less than the
        // extent overlaps the previous window of the same (s, t) without
        // nesting; slide 0 duplicates it; larger slides disconnect.
        let mut queries: Vec<QuerySpec> = Vec::new();
        for &(s, t, begin, extent, slide) in &shapes {
            let b = begin + slide;
            queries.push(QuerySpec::new(s, t, TimeInterval::new(b, (b + extent).min(9))));
        }
        let stats = assert_batch_matches_sequential(
            &graph,
            &queries,
            &[
                EngineSetup::new("containment", PlannerConfig::containment_only()),
                EngineSetup::new("default", PlannerConfig::default()),
                EngineSetup::new("greedy", PlannerConfig::with_span_factor(8.0)),
            ],
        );
        // A near-unbounded cost guard merges at least as aggressively as
        // the default, which merges at least as much as containment-only
        // (stats come back setup-major: two thread counts per setup).
        let per_setup: Vec<usize> = stats.chunks(2).map(|c| c[0].pipeline_runs()).collect();
        prop_assert!(per_setup[2] <= per_setup[1] && per_setup[1] <= per_setup[0]);
    }

    /// The profile differential invariant (this PR's tentpole): random
    /// same-source fan-out batches — bursts of queries sharing a source,
    /// with jittered begins, stretched ends and interleaved duplicates —
    /// answered with profile sharing on and off, across 1/4/8 threads,
    /// all byte-identical to the sequential path.
    #[test]
    fn profile_shared_batches_match_the_sequential_path(
        ((graph, _), bursts) in (
            graph_and_batch(),
            vec((0..9u32, 1..=6i64, vec((0..9u32, 0..=3i64, 0..=2i64), 2..6)), 1..5),
        )
    ) {
        // Each burst tuple is (source, begin, [(target, end stretch,
        // begin jitter)]): every member query keeps the burst's source —
        // the grouping key — while its begin slides inside the hull and
        // its end stretches, so profile clamping at mixed begins and the
        // span guard are exercised alongside plain same-window fan-outs.
        let mut queries: Vec<QuerySpec> = Vec::new();
        for &(s, begin, ref members) in &bursts {
            for &(t, stretch, jitter) in members {
                let end = (begin + 2 + stretch).min(9);
                let b = (begin + jitter).min(end);
                queries.push(QuerySpec::new(s, t, TimeInterval::new(b, end)));
            }
        }
        let stats = assert_batch_matches_sequential(
            &graph,
            &queries,
            &[
                EngineSetup::new("profiles", PlannerConfig::default()),
                EngineSetup::new("no-profiles", PlannerConfig::default().without_profile_sharing()),
            ],
        );
        // Sharing is answer-invisible *and* run-count-invisible: the two
        // setups must plan exactly the same number of pipeline runs.
        let profile_runs: Vec<usize> = stats[..3].iter().map(|s| s.pipeline_runs()).collect();
        let plain_runs: Vec<usize> = stats[3..].iter().map(|s| s.pipeline_runs()).collect();
        prop_assert_eq!(profile_runs, plain_runs);
        prop_assert!(stats[3..].iter().all(|s| s.profile_groups == 0));
    }

}

/// The adversarial shapes named in PR 4's issue, pinned deterministically:
/// an overlap chain `[0,5], [3,8], [6,12]` plus mixed nested / overlapping
/// / disjoint groups, answered with envelope planning across thread counts
/// that force follower stealing, must equal the sequential path exactly —
/// and the chain must actually be collapsed by the planner.
#[test]
fn envelope_overlap_chains_and_mixed_groups_match_sequential() {
    let spec = registry().into_iter().next().expect("registry has datasets");
    let graph = spec.generate(Scale::tiny(), 0xfeed);
    let stamp = |i: i64| -> i64 {
        // Park windows in the populated part of the timestamp domain.
        let ts = graph.timestamps();
        let lo = *ts.first().expect("tiny datasets have edges");
        lo + i
    };
    let (s, t) = {
        let q = generate_workload(&graph, 1, 8, 3).expect("workload")[0];
        (q.source, q.target)
    };
    let w = |b: i64, e: i64| TimeInterval::new(stamp(b), stamp(e));
    let queries = vec![
        // The issue's adversarial overlap chain.
        QuerySpec::new(s, t, w(0, 5)),
        QuerySpec::new(s, t, w(3, 8)),
        QuerySpec::new(s, t, w(6, 12)),
        // Nested pair (containment sharing).
        QuerySpec::new(t, s, w(0, 10)),
        QuerySpec::new(t, s, w(2, 5)),
        // Disjoint window on the same pair as the chain.
        QuerySpec::new(s, t, w(40, 45)),
        // Exact duplicate and a degenerate query.
        QuerySpec::new(s, t, w(3, 8)),
        QuerySpec::new(s, s, w(0, 5)),
    ];

    let stats = assert_batch_matches_sequential(
        &graph,
        &queries,
        &[EngineSetup::new("default", PlannerConfig::default()).at_threads(&[1, 2, 8])],
    );
    for stats in &stats {
        assert!(stats.envelope_units >= 1, "the chain must be enveloped: {stats:?}");
        assert_eq!(stats.envelope_answered, 3, "{stats:?}");
        assert_eq!(stats.shared_answered, 1, "{stats:?}");
        assert_eq!(stats.dedup_answered, 1, "{stats:?}");
        assert_eq!(stats.degenerate, 1, "{stats:?}");
    }
}

/// Deterministic fan-out acceptance: a generated same-source fan-out
/// workload forms profile groups, the overlay counters stay within their
/// bounds, and every answer matches the sequential path whether sharing is
/// on or off.
#[test]
fn fanout_workloads_share_profiles_and_match_sequential() {
    let graph = GraphGenerator::uniform(80, 900, 40).generate(0x12);
    let cfg = FanoutWorkloadConfig::new(48, 6, 8);
    let queries = generate_fanout_workload(&graph, &cfg, 11).expect("workload");
    let stats = assert_batch_matches_sequential(
        &graph,
        &queries,
        &[
            EngineSetup::new("profiles", PlannerConfig::default()),
            EngineSetup::new("no-profiles", PlannerConfig::default().without_profile_sharing()),
        ],
    );
    assert!(
        stats[0].profile_groups >= 1,
        "a fan-out workload must form profile groups: {:?}",
        stats[0]
    );
    assert!(stats[0].profile_answered >= 2 * stats[0].profile_groups, "{:?}", stats[0]);
}

/// Mixed-begin fan-out acceptance (this PR's tentpole shape): the same
/// workload with jittered window begins — where PR 5's begin-anchored
/// grouping found nothing — still forms profile groups, because an
/// arrival profile clamps to any begin inside the hull. Answers stay
/// byte-identical to the sequential path with sharing on and off.
#[test]
fn jittered_fanout_workloads_share_profiles_and_match_sequential() {
    let graph = GraphGenerator::uniform(80, 900, 40).generate(0x12);
    let cfg = FanoutWorkloadConfig::new(48, 6, 8).with_begin_jitter(3);
    let queries = generate_fanout_workload(&graph, &cfg, 11).expect("workload");
    let begins: std::collections::HashSet<i64> = queries.iter().map(|q| q.window.begin()).collect();
    assert!(begins.len() > 1, "the jitter must actually mix begins");
    let stats = assert_batch_matches_sequential(
        &graph,
        &queries,
        &[
            EngineSetup::new("profiles", PlannerConfig::default()),
            EngineSetup::new("no-profiles", PlannerConfig::default().without_profile_sharing()),
        ],
    );
    assert!(
        stats[0].profile_groups >= 1,
        "a mixed-begin fan-out workload must form profile groups: {:?}",
        stats[0]
    );
    assert!(stats[0].profile_answered >= 2 * stats[0].profile_groups, "{:?}", stats[0]);
}

/// The dense-graph envelope heuristic (ROADMAP item): on a dense registry
/// miniature, an engine that has observed the tspG/graph density stops
/// synthesizing envelope units, and its pipeline-run count is no worse
/// than containment-only planning — while answers stay byte-identical.
#[test]
fn dense_registry_miniature_trips_the_envelope_density_heuristic() {
    // The registry's tiny datasets are deliberately dense miniatures;
    // wide windows make every tspG cover a large share of the graph.
    let spec = registry().into_iter().next().expect("registry has datasets");
    let graph = spec.generate(Scale::tiny(), 0xfeed);
    let base = generate_workload(&graph, 4, 12, 21).expect("workload");
    // Overlap chains on the sampled pairs: the shape envelope synthesis
    // would collapse if the density heuristic did not veto it.
    let mut queries = Vec::new();
    for q in &base {
        let w = q.window;
        queries.push(QuerySpec::new(q.source, q.target, w));
        let slide = (w.span() / 2).max(1);
        let begin = w.begin() + slide;
        queries.push(QuerySpec::new(
            q.source,
            q.target,
            TimeInterval::new(begin, begin + w.span() - 1),
        ));
    }

    let cutoff = 0.5;
    let adaptive = QueryEngine::new(graph.clone())
        .without_cache()
        .with_planner(PlannerConfig::default().with_density_cutoff(cutoff));
    // Priming batch: no density signal yet, envelopes may synthesize.
    let (_, cold) = adaptive.run_batch_with_stats(&queries, 2);
    assert!(cold.envelope_units >= 1, "the chains must envelope on a fresh engine: {cold:?}");
    let observed = adaptive.observed_density().expect("primed engine has a signal");
    assert!(
        observed > cutoff,
        "the registry miniature must be dense (observed {observed:.2} <= {cutoff})"
    );

    // Warm batch: the heuristic vetoes synthesis; run count must be no
    // worse than explicit containment-only planning on the same batch.
    let (warm_results, warm) = adaptive.run_batch_with_stats(&queries, 2);
    assert_eq!(warm.envelope_units, 0, "dense signal must disable synthesis: {warm:?}");
    let containment = QueryEngine::new(graph.clone())
        .without_cache()
        .with_planner(PlannerConfig::containment_only());
    let (_, baseline) = containment.run_batch_with_stats(&queries, 2);
    assert!(
        warm.pipeline_runs() <= baseline.pipeline_runs(),
        "adaptive planning must not run more pipelines ({}) than containment-only ({})",
        warm.pipeline_runs(),
        baseline.pipeline_runs()
    );
    let sequential = sequential_results(&graph, &queries);
    for (i, (a, b)) in sequential.iter().zip(warm_results.iter()).enumerate() {
        assert_eq!(a.tspg, b.tspg, "query #{i} diverged under the density heuristic");
    }
}
