//! Cross-crate tests of the batch query engine: the acceptance gate that a
//! generated 100-query workload answered through `QueryEngine::run_batch`
//! is byte-for-byte identical to 100 sequential one-shot `generate_tspg`
//! calls, plus differential property tests against the one-shot path and
//! naive enumeration on random graphs (covering `s == t`, empty-result
//! and single-timestamp-window queries) and against PR 2's sequential path
//! on batches stuffed with exact duplicates and contained windows — the
//! shapes the planner collapses and the cache memoizes.

use proptest::collection::vec;
use proptest::prelude::*;
use tspg_suite::core::{CacheConfig, PlannerConfig, QueryEngine, QueryScratch, QuerySpec};
use tspg_suite::prelude::*;

/// The acceptance-criterion test: a 100-query generated workload, answered
/// as one batch (sequentially and with worker threads), must return exactly
/// what 100 independent one-shot calls return — same edge sets, same sizes,
/// same order.
#[test]
fn batch_of_100_workload_queries_matches_one_shot_vug() {
    let spec = registry().into_iter().next().expect("registry has datasets");
    let graph = spec.generate(Scale::tiny(), 0xfeed);
    let queries: Vec<QuerySpec> =
        generate_workload(&graph, 100, spec.default_theta, 99).expect("workload");
    assert_eq!(queries.len(), 100, "workload generation must fill the batch");

    let one_shot: Vec<_> =
        queries.iter().map(|q| generate_tspg(&graph, q.source, q.target, q.window)).collect();

    let engine = QueryEngine::new(graph);
    for threads in [1, 4] {
        let batch = engine.run_batch(&queries, threads);
        assert_eq!(batch.len(), one_shot.len());
        for (i, (b, o)) in batch.iter().zip(one_shot.iter()).enumerate() {
            assert_eq!(b.tspg, o.tspg, "threads={threads}, query #{i}");
            assert_eq!(
                b.report.result_vertices, o.report.result_vertices,
                "threads={threads}, query #{i}"
            );
            assert_eq!(b.report.quick_edges, o.report.quick_edges, "threads={threads} #{i}");
            assert_eq!(b.report.tight_edges, o.report.tight_edges, "threads={threads} #{i}");
        }
    }
}

/// The serving acceptance gate: on a skewed repeated workload the planned +
/// cached engine answers the batch with *fewer full pipeline executions
/// than queries*, the counters prove where every answer came from, and all
/// answers are byte-identical to PR 2's sequential path.
#[test]
fn skewed_workload_is_answered_with_fewer_pipeline_executions_than_queries() {
    let spec = registry().into_iter().next().expect("registry has datasets");
    let graph = spec.generate(Scale::tiny(), 0xfeed);
    let cfg = RepeatedWorkloadConfig::new(200, 25, spec.default_theta);
    let queries = generate_repeated_workload(&graph, &cfg, 7).expect("workload");
    assert_eq!(queries.len(), 200);

    // PR 2's sequential path: one raw pipeline execution per query.
    let sequential_engine = QueryEngine::new(graph.clone()).without_cache();
    let mut scratch = QueryScratch::new();
    let sequential: Vec<_> =
        queries.iter().map(|&q| sequential_engine.run(q, &mut scratch)).collect();

    // Planned + cached serving: two batches, so the second can hit the
    // cache populated by the first.
    let engine = QueryEngine::new(graph).with_cache(CacheConfig::with_max_entries(1024));
    let (first_half, second_half) = queries.split_at(queries.len() / 2);
    let (mut results, mut stats) = engine.run_batch_with_stats(first_half, 4);
    let (more, second_stats) = engine.run_batch_with_stats(second_half, 4);
    results.extend(more);
    stats.merge(&second_stats);

    assert_eq!(stats.queries, queries.len());
    assert!(
        stats.pipeline_runs() < queries.len(),
        "planning + caching must execute fewer full pipelines ({}) than queries ({})",
        stats.pipeline_runs(),
        queries.len()
    );
    assert!(stats.dedup_answered > 0, "a skewed workload must contain duplicates: {stats:?}");
    assert!(stats.cache_hits > 0, "the second batch must hit the cache: {stats:?}");
    assert_eq!(
        stats.executed_units
            + stats.shared_answered
            + stats.envelope_answered
            + stats.dedup_answered
            + stats.cache_hits
            + stats.degenerate,
        stats.queries,
        "every query is answered exactly one way: {stats:?}"
    );
    for (i, (a, b)) in sequential.iter().zip(results.iter()).enumerate() {
        assert_eq!(a.tspg, b.tspg, "query #{i} diverged from the sequential path");
    }
}

/// Strategy: a random small temporal graph plus a query batch that
/// deliberately includes degenerate shapes — `s == t` queries, windows with
/// a single timestamp (`begin == end`), and windows placed so that many
/// results are empty.
fn graph_and_batch() -> impl Strategy<Value = (TemporalGraph, Vec<QuerySpec>)> {
    const N: u32 = 9;
    let edge = (0..N, 0..N, 1..=8i64).prop_map(|(u, v, t)| TemporalEdge::new(u, v, t));
    let query = (0..N, 0..N, 1..=8i64, 0..=4i64).prop_map(|(s, t, begin, extra)| {
        // `extra == 0` yields single-timestamp windows; `s == t` is kept.
        QuerySpec::new(s, t, TimeInterval::new(begin, (begin + extra).min(8)))
    });
    (vec(edge, 1..40), vec(query, 1..12)).prop_map(|(edges, queries)| {
        let edges: Vec<TemporalEdge> = edges.into_iter().filter(|e| e.src != e.dst).collect();
        (TemporalGraph::from_edges(N as usize, edges), queries)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Differential invariant: for every query of every batch, the engine
    /// (warm scratch, sequential and parallel), the one-shot VUG path and
    /// the naive enumeration edge-union all agree exactly.
    #[test]
    fn batch_engine_matches_one_shot_and_naive_enumeration(
        (graph, queries) in graph_and_batch()
    ) {
        let engine = QueryEngine::new(graph.clone());
        let sequential = engine.run_batch(&queries, 1);
        let parallel = engine.run_batch(&queries, 3);
        prop_assert_eq!(sequential.len(), queries.len());
        for (i, q) in queries.iter().enumerate() {
            let one_shot = generate_tspg(&graph, q.source, q.target, q.window);
            let naive = naive_tspg(&graph, q.source, q.target, q.window, &Budget::unlimited());
            prop_assert!(naive.is_exact());
            prop_assert_eq!(&sequential[i].tspg, &one_shot.tspg, "query #{} {:?}", i, q);
            prop_assert_eq!(&parallel[i].tspg, &one_shot.tspg, "query #{} {:?}", i, q);
            prop_assert_eq!(&sequential[i].tspg, &naive.tspg, "query #{} {:?}", i, q);
            if q.source == q.target {
                prop_assert!(sequential[i].tspg.is_empty(), "s == t must be empty");
            }
        }
    }

    /// The planner/cache differential invariant: a batch deliberately
    /// stuffed with exact duplicates and contained windows — the shapes
    /// dedup, window sharing and the cache all fire on — answered through
    /// the planned + cached engine (twice, so the second pass is pure
    /// cache) equals PR 2's sequential per-query path, order preserved.
    #[test]
    fn planned_and_cached_batches_match_the_sequential_path(
        ((graph, base), picks) in (
            graph_and_batch(),
            vec((0..64usize, 0..3usize, 0..=2i64, 0..=2i64), 1..24),
        )
    ) {
        // Derive a repetition-heavy batch from the base queries: exact
        // repeats and narrowed (contained) windows of earlier entries.
        let mut queries: Vec<QuerySpec> = base.clone();
        for (pick, kind, shrink_lo, shrink_hi) in picks {
            let q = base[pick % base.len()];
            match kind {
                0 => queries.push(q), // exact duplicate
                1 => {
                    // Contained window (clamped shrink keeps it non-empty).
                    let b = q.window.begin() + shrink_lo.min(q.window.span() - 1);
                    let e = (q.window.end() - shrink_hi).max(b);
                    queries.push(QuerySpec::new(q.source, q.target, TimeInterval::new(b, e)));
                }
                _ => queries.push(QuerySpec::new(q.target, q.source, q.window)),
            }
        }

        // PR 2's sequential path: raw pipeline per query, no plan/cache.
        let sequential_engine = QueryEngine::new(graph.clone()).without_cache();
        let mut scratch = QueryScratch::new();
        let sequential: Vec<_> =
            queries.iter().map(|&q| sequential_engine.run(q, &mut scratch)).collect();

        // Plenty of headroom per shard so no second-pass query was evicted.
        let engine = QueryEngine::new(graph).with_cache(CacheConfig::with_max_entries(4096));
        let (cold, stats) = engine.run_batch_with_stats(&queries, 3);
        prop_assert_eq!(cold.len(), queries.len());
        prop_assert_eq!(
            stats.executed_units + stats.shared_answered + stats.envelope_answered
                + stats.dedup_answered + stats.cache_hits + stats.degenerate,
            stats.queries
        );
        let (warm, warm_stats) = engine.run_batch_with_stats(&queries, 3);
        // pipeline_runs() counts synthesized envelope runs too — a cache
        // regression that re-synthesizes envelopes must not slip through.
        prop_assert_eq!(warm_stats.pipeline_runs(), 0, "second pass must be pure cache");
        for (i, q) in queries.iter().enumerate() {
            prop_assert_eq!(&cold[i].tspg, &sequential[i].tspg, "cold #{} {:?}", i, q);
            prop_assert_eq!(&warm[i].tspg, &sequential[i].tspg, "warm #{} {:?}", i, q);
        }
    }

    /// A warm scratch carried across wildly different queries never leaks
    /// state from one query into the next: each answer equals a cold run.
    #[test]
    fn warm_scratch_is_stateless_across_queries(
        (graph, queries) in graph_and_batch()
    ) {
        let engine = QueryEngine::new(graph.clone());
        let mut scratch = QueryScratch::new();
        for q in &queries {
            let warm = engine.run(*q, &mut scratch);
            let cold = engine.run(*q, &mut QueryScratch::new());
            prop_assert_eq!(&warm.tspg, &cold.tspg, "query {:?}", q);
            prop_assert_eq!(warm.report.quick_edges, cold.report.quick_edges);
            prop_assert_eq!(warm.report.tight_edges, cold.report.tight_edges);
        }
    }

    /// The envelope differential invariant: a batch stuffed with
    /// overlapping (non-nested) windows, nested refinements and disjoint
    /// windows of a few endpoint pairs — the shapes envelope planning
    /// clusters, splits on the cost guard, and leaves alone — answered
    /// through the planning engine (sequentially and with enough threads
    /// that followers are stolen) is byte-identical, order preserved, to
    /// PR 2's sequential per-query path.
    #[test]
    fn envelope_planned_batches_match_the_sequential_path(
        ((graph, _), shapes) in (
            graph_and_batch(),
            vec((0..4u32, 0..4u32, 1..=6i64, 1..=4i64, 0..=3i64), 4..28),
        )
    ) {
        // Build overlap chains deterministically from the shape tuples:
        // (s, t, begin, span extent, slide) — sliding by less than the
        // extent overlaps the previous window of the same (s, t) without
        // nesting; slide 0 duplicates it; larger slides disconnect.
        let mut queries: Vec<QuerySpec> = Vec::new();
        for &(s, t, begin, extent, slide) in &shapes {
            let b = begin + slide;
            queries.push(QuerySpec::new(s, t, TimeInterval::new(b, (b + extent).min(9))));
        }

        // PR 2's sequential path: raw pipeline per query, no plan/cache.
        let sequential_engine = QueryEngine::new(graph.clone()).without_cache();
        let mut scratch = QueryScratch::new();
        let sequential: Vec<_> =
            queries.iter().map(|&q| sequential_engine.run(q, &mut scratch)).collect();

        let engine = QueryEngine::new(graph.clone()).without_cache();
        let aggressive = QueryEngine::new(graph)
            .without_cache()
            .with_planner(PlannerConfig::with_span_factor(8.0));
        for threads in [1usize, 4] {
            let (results, stats) = engine.run_batch_with_stats(&queries, threads);
            prop_assert_eq!(
                stats.executed_units + stats.shared_answered + stats.envelope_answered
                    + stats.dedup_answered + stats.degenerate,
                stats.queries
            );
            for (i, q) in queries.iter().enumerate() {
                prop_assert_eq!(
                    &results[i].tspg, &sequential[i].tspg,
                    "threads={} #{} {:?}", threads, i, q
                );
            }
            // A near-unbounded cost guard merges far more aggressively;
            // answers must not move.
            let (greedy, greedy_stats) = aggressive.run_batch_with_stats(&queries, threads);
            prop_assert!(greedy_stats.pipeline_runs() <= stats.pipeline_runs());
            for (i, q) in queries.iter().enumerate() {
                prop_assert_eq!(
                    &greedy[i].tspg, &sequential[i].tspg,
                    "aggressive threads={} #{} {:?}", threads, i, q
                );
            }
        }
    }
}

/// The adversarial shapes named in the issue, pinned deterministically: an
/// overlap chain `[0,5], [3,8], [6,12]` plus mixed nested / overlapping /
/// disjoint groups, answered with envelope planning across thread counts
/// that force follower stealing, must equal the sequential path exactly —
/// and the chain must actually be collapsed by the planner.
#[test]
fn envelope_overlap_chains_and_mixed_groups_match_sequential() {
    let spec = registry().into_iter().next().expect("registry has datasets");
    let graph = spec.generate(Scale::tiny(), 0xfeed);
    let stamp = |i: i64| -> i64 {
        // Park windows in the populated part of the timestamp domain.
        let ts = graph.timestamps();
        let lo = *ts.first().expect("tiny datasets have edges");
        lo + i
    };
    let (s, t) = {
        let q = generate_workload(&graph, 1, 8, 3).expect("workload")[0];
        (q.source, q.target)
    };
    let w = |b: i64, e: i64| TimeInterval::new(stamp(b), stamp(e));
    let queries = vec![
        // The issue's adversarial overlap chain.
        QuerySpec::new(s, t, w(0, 5)),
        QuerySpec::new(s, t, w(3, 8)),
        QuerySpec::new(s, t, w(6, 12)),
        // Nested pair (containment sharing).
        QuerySpec::new(t, s, w(0, 10)),
        QuerySpec::new(t, s, w(2, 5)),
        // Disjoint window on the same pair as the chain.
        QuerySpec::new(s, t, w(40, 45)),
        // Exact duplicate and a degenerate query.
        QuerySpec::new(s, t, w(3, 8)),
        QuerySpec::new(s, s, w(0, 5)),
    ];

    let sequential_engine = QueryEngine::new(graph.clone()).without_cache();
    let mut scratch = QueryScratch::new();
    let sequential: Vec<_> =
        queries.iter().map(|&q| sequential_engine.run(q, &mut scratch)).collect();

    let engine = QueryEngine::new(graph).without_cache();
    for threads in [1usize, 2, 8] {
        let (results, stats) = engine.run_batch_with_stats(&queries, threads);
        assert!(stats.envelope_units >= 1, "the chain must be enveloped: {stats:?}");
        assert_eq!(stats.envelope_answered, 3, "{stats:?}");
        assert_eq!(stats.shared_answered, 1, "{stats:?}");
        assert_eq!(stats.dedup_answered, 1, "{stats:?}");
        assert_eq!(stats.degenerate, 1, "{stats:?}");
        assert_eq!(
            stats.executed_units
                + stats.shared_answered
                + stats.envelope_answered
                + stats.dedup_answered
                + stats.degenerate,
            stats.queries
        );
        for (i, (a, b)) in sequential.iter().zip(results.iter()).enumerate() {
            assert_eq!(a.tspg, b.tspg, "threads={threads} query #{i} diverged");
            assert_eq!(
                a.report.result_vertices, b.report.result_vertices,
                "threads={threads} query #{i}"
            );
        }
    }
}
