//! Collection strategies (only [`vec()`] is provided).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::Range;

/// Generates `Vec`s whose length is drawn from `size` and whose elements
/// come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(!size.is_empty(), "vec strategy requires a non-empty size range");
    VecStrategy { element, size }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.random_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
