//! Minimal offline stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) property-testing crate.
//!
//! It provides the subset used by `tests/proptest_invariants.rs`:
//!
//! * the [`Strategy`] trait with [`Strategy::prop_map`], implemented for
//!   integer ranges and tuples of strategies,
//! * [`collection::vec`],
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support) plus
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`],
//! * [`ProptestConfig`] with `with_cases`.
//!
//! Unlike the real crate there is **no shrinking**: a failing case reports
//! the case number and the deterministic per-test seed, which — together
//! with the fixed RNG in the shim — is enough to reproduce it. Generation
//! is deterministic per test name, so failures are stable across runs.
//! Swapping the real crate back in is a one-line change in the root
//! `Cargo.toml`.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::Strategy;

/// Runner configuration (only `cases` is honoured by the shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful test cases each property must pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// How a single test case ended, when it did not simply succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the input; the case does not count.
    Reject(String),
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// Creates a rejection with the given message.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::Reject(message.into())
    }
}

/// FNV-1a, used to derive a per-test RNG stream from the test name.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property: generates inputs and runs the test body until
/// `config.cases` cases pass. Called by the [`proptest!`] expansion; not
/// part of the public proptest API.
pub fn run_cases<S, F>(config: &ProptestConfig, test_name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let seed = fnv1a(test_name);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(config.cases) * 16 + 1024;
    let mut case = 0u64;
    while passed < config.cases {
        let value = strategy.generate(&mut rng);
        case += 1;
        match body(value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{test_name}: too many prop_assume! rejections \
                     ({rejected} rejects for {passed} passes)"
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{test_name}: property falsified at case #{case} \
                     (seed 0x{seed:016x}, no shrinking in the offline shim)\n{message}"
                );
            }
        }
    }
}

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `fn name(pattern in strategy) { .. }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident($pattern:pat in $strat:expr) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = $strat;
                $crate::run_cases(
                    &config,
                    stringify!($name),
                    &strategy,
                    |value| -> ::core::result::Result<(), $crate::TestCaseError> {
                        let $pattern = value;
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fallible assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion inside a [`proptest!`] body. Like the real
/// crate's macro it accepts an optional trailing format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fallible inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Range strategies stay in bounds and tuples compose.
        #[test]
        fn ranges_and_tuples((a, b, t) in (0u32..10, 0u32..10, 1i64..=5)) {
            prop_assert!(a < 10);
            prop_assert!(b < 10);
            prop_assert!((1..=5).contains(&t));
        }

        /// `prop_map` and `collection::vec` compose; assume rejects work.
        #[test]
        fn map_vec_and_assume(values in crate::collection::vec((0u32..100).prop_map(|x| x * 2), 1..20)) {
            prop_assume!(!values.is_empty());
            prop_assert!(values.len() < 20);
            for v in &values {
                prop_assert_eq!(v % 2, 0);
            }
        }

        /// Bare range strategies work as direct arguments.
        #[test]
        fn bare_range(seed in 0u64..500) {
            prop_assert!(seed < 500);
        }
    }

    #[test]
    #[should_panic(expected = "property falsified")]
    fn failing_property_panics() {
        crate::run_cases(&ProptestConfig::with_cases(8), "failing_property", &(0u32..4), |x| {
            prop_assert!(x < 3, "x was {x}");
            Ok(())
        });
    }

    #[test]
    fn generation_is_deterministic_per_test_name() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strategy = (0u32..1000, 0i64..=999).prop_map(|(a, b)| (a, b));
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(strategy.generate(&mut r1), strategy.generate(&mut r2));
        }
    }
}
