//! The [`Strategy`] trait and the combinators the workspace uses: integer
//! ranges, tuples and [`Strategy::prop_map`].

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of type [`Strategy::Value`].
///
/// The shim's strategies generate directly from a deterministic RNG and do
/// not support shrinking.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `mapper`.
    fn prop_map<O, F>(self, mapper: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, mapper }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    mapper: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.mapper)(self.source.generate(rng))
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
