//! Concrete generators. Only [`StdRng`] is provided; unlike the real crate
//! it is a xoshiro256++ rather than ChaCha12, which keeps the shim
//! dependency-free while staying deterministic and fast.

use super::{RngCore, SeedableRng};

/// The standard deterministic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

/// SplitMix64 step, used to expand seeds into full state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s.iter().all(|&w| w == 0) {
            // xoshiro must not start from the all-zero state.
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
