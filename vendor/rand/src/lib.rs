//! Minimal offline stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate (0.9 API surface), providing exactly what this workspace uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++ seeded via SplitMix64),
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::random_range`] over integer `Range` / `RangeInclusive`,
//! * [`Rng::random_bool`].
//!
//! The build environment has no registry access, so this shim keeps the
//! workspace compiling; the API is signature-compatible with rand 0.9 for
//! the calls made here, so swapping the real crate back in is a
//! one-line change in the root `Cargo.toml`. Determinism matters more than
//! statistical quality for the tests and synthetic dataset generators that
//! use it, and xoshiro256++ is comfortably adequate for both.

use std::ops::{Range, RangeInclusive};

pub mod rngs;

/// Low-level source of randomness: 32/64-bit outputs.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array in the real crate).
    type Seed;

    /// Creates a generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, spreading it over the full state
    /// with SplitMix64 (same approach as the real crate).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a uniformly distributed value from the given range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.random::<f64>() < p
    }

    /// Samples a value from the type's standard distribution (uniform over
    /// the domain for integers, uniform in `[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a standard sampling distribution ([`Rng::random`]).
pub trait StandardUniform: Sized {
    /// Samples one value from the standard distribution.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits give a uniform float in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardUniform for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

impl StandardUniform for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_uniform_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range that supports single-value uniform sampling.
pub trait SampleRange<T> {
    /// Samples one value; the range has already been checked non-empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;

    /// Whether the range contains no values.
    fn is_empty(&self) -> bool;
}

/// Maps 64 random bits onto `[0, span)` with the widening-multiply method.
fn sample_below(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

/// Element types that support uniform range sampling. The blanket
/// [`SampleRange`] impls below mirror the real crate's shape so that type
/// inference at `random_range` call sites behaves identically.
pub trait SampleUniform: Copy + PartialOrd {
    /// Samples uniformly from `[lo, hi)` (`lo < hi` already checked).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Samples uniformly from `[lo, hi]` (`lo <= hi` already checked).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + sample_below(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for full-width ranges; raw bits suffice.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }

    fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }

    fn is_empty(&self) -> bool {
        self.start() > self.end()
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1_000_000), b.random_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let z = rng.random_range(0usize..1);
            assert_eq!(z, 0);
        }
    }

    #[test]
    fn bool_probabilities_are_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn full_width_inclusive_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(3);
        let _ = rng.random_range(u64::MIN..=u64::MAX);
        let _ = rng.random_range(i64::MIN..=i64::MAX);
    }
}
