//! Minimal offline stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness.
//!
//! It implements the subset of the API used by the benches under
//! `crates/bench/benches/` — [`criterion_group!`] / [`criterion_main!`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] and [`Bencher::iter`] — with a
//! straightforward measurement loop: a warm-up iteration followed by
//! `sample_size` timed samples, reporting min / mean / max per benchmark to
//! stdout. There is no statistical analysis, plotting or HTML report; the
//! point is that `cargo bench` compiles, runs and prints comparable numbers
//! in an environment without registry access. Swapping the real crate back
//! in is a one-line change in the root `Cargo.toml`.

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10 }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_samples(&label, self.sample_size, |b| f(b));
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_samples(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (a no-op in the shim, kept for API compatibility).
    pub fn finish(self) {}
}

fn run_samples(label: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    // Warm-up: one untimed run.
    let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
    routine(&mut bencher);

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher { elapsed: Duration::ZERO, iterations: 0 };
        routine(&mut bencher);
        if bencher.iterations > 0 {
            samples.push(bencher.elapsed / bencher.iterations);
        }
    }
    let (min, mean, max) = summarize(&samples);
    println!("bench {label:<60} min {min:>12?}  mean {mean:>12?}  max {max:>12?}");
}

fn summarize(samples: &[Duration]) -> (Duration, Duration, Duration) {
    if samples.is_empty() {
        return (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    }
    let min = *samples.iter().min().expect("non-empty");
    let max = *samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    (min, mean, max)
}

/// Times the routine passed to [`Bencher::iter`].
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Measures one execution of `routine` (the shim runs it exactly once
    /// per sample rather than auto-tuning the iteration count).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iterations += 1;
        drop(black_box(out));
    }
}

/// An identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An identifier with a parameter but no function name.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Anything accepted as a benchmark identifier (`&str`, `String`,
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts `self` into the display label.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Opaque value barrier, re-exported for convenience like the real crate.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Criterion benchmark group (generated by `criterion_group!`).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
/// Cargo passes harness flags such as `--bench` to the binary; the shim
/// accepts and ignores them.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counted", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &n| b.iter(|| n * 2));
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("alg", "D1").to_string(), "alg/D1");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }
}
