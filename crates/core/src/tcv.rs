//! Time-stream common vertices (Definition 5, Algorithm 4).
//!
//! For every vertex `u` of the quick upper-bound graph `G_q` and every
//! relevant timestamp `τ`, the *forward* set `TCV_τ(s, u)` contains the
//! vertices (other than `s`) shared by **all** temporal simple paths from
//! `s` to `u` within `[τ_b, τ]` that avoid `t`; the *backward* set
//! `TCV_τ(u, t)` is symmetric. If the forward set of `u` and the backward
//! set of `v` intersect, no temporal simple path from `s` to `t` can cross
//! the edge `(u, v)` — the pruning rule of `TightUBG`.
//!
//! Storing the sets for every timestamp of the window would need `O(θ·n)`
//! entries, so following Lemma 5 only the timestamps in `T_in(u, G_q)`
//! (forward) and `T_out(u, G_q)` (backward) are materialised; the value at
//! any other timestamp equals the value at the nearest stored timestamp
//! below (forward) / above (backward). The computation is a single forward
//! scan and a single backward scan of `G_q`'s time-sorted edge array, using
//! the recursion of Equations (3)–(4) and the `{u}`-completion pruning rule
//! of Lemma 7, in `O(n + θ·m)` time.

use tspg_graph::{TemporalGraph, Timestamp, VertexId};

/// A looked-up time-stream common vertex set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcvValue<'a> {
    /// The set is empty (only the case for the source/target vertex itself).
    Empty,
    /// The set is exactly `{v}`: either it was computed as such, or the
    /// vertex was "completed" earlier (Lemma 7), or no stored entry applies
    /// and the safe default `{v}` of Algorithm 5 (lines 14/16) is used.
    SelfOnly(VertexId),
    /// An explicitly stored set (sorted, never empty).
    Set(&'a [VertexId]),
}

impl TcvValue<'_> {
    /// Returns the set as an owned, sorted vector (for debugging and tests).
    pub fn to_vec(&self) -> Vec<VertexId> {
        match self {
            TcvValue::Empty => Vec::new(),
            TcvValue::SelfOnly(v) => vec![*v],
            TcvValue::Set(s) => s.to_vec(),
        }
    }

    /// `true` if `vertex` belongs to the set.
    pub fn contains(&self, vertex: VertexId) -> bool {
        match self {
            TcvValue::Empty => false,
            TcvValue::SelfOnly(v) => *v == vertex,
            TcvValue::Set(s) => s.binary_search(&vertex).is_ok(),
        }
    }

    /// `true` if the two sets share no vertex (the keep-condition of
    /// Lemma 3 / Lemma 9).
    pub fn is_disjoint(&self, other: &TcvValue<'_>) -> bool {
        match (self, other) {
            (TcvValue::Empty, _) | (_, TcvValue::Empty) => true,
            (TcvValue::SelfOnly(a), _) => !other.contains(*a),
            (_, TcvValue::SelfOnly(b)) => !self.contains(*b),
            (TcvValue::Set(a), TcvValue::Set(b)) => sorted_disjoint(a, b),
        }
    }
}

fn sorted_disjoint(a: &[VertexId], b: &[VertexId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// Per-vertex entry list: one optional set per stored timestamp.
#[derive(Clone, Debug, Default)]
struct EntryList {
    /// Stored timestamps, ascending (`T_in(u, G_q)` forward, `T_out(u, G_q)`
    /// backward).
    times: Vec<Timestamp>,
    /// The set for each stored timestamp; `None` means "not materialised",
    /// which by construction only happens after the vertex was completed
    /// (Lemma 7) and therefore denotes `{u}`.
    sets: Vec<Option<Vec<VertexId>>>,
}

impl EntryList {
    fn with_times(times: Vec<Timestamp>) -> Self {
        let sets = vec![None; times.len()];
        Self { times, sets }
    }

    fn approx_bytes(&self) -> usize {
        self.times.len() * std::mem::size_of::<Timestamp>()
            + self
                .sets
                .iter()
                .map(|s| {
                    std::mem::size_of::<Option<Vec<VertexId>>>()
                        + s.as_ref().map_or(0, |v| v.len() * std::mem::size_of::<VertexId>())
                })
                .sum::<usize>()
    }
}

/// The forward and backward time-stream common vertex tables of one query.
#[derive(Clone, Debug)]
pub struct TcvTables {
    source: VertexId,
    target: VertexId,
    forward: Vec<EntryList>,
    backward: Vec<EntryList>,
}

impl TcvTables {
    /// Computes the tables over the quick upper-bound graph `gq`
    /// (Algorithm 4).
    pub fn compute(gq: &TemporalGraph, source: VertexId, target: VertexId) -> Self {
        let n = gq.num_vertices();
        let mut forward: Vec<EntryList> = Vec::with_capacity(n);
        let mut backward: Vec<EntryList> = Vec::with_capacity(n);
        for u in 0..n as VertexId {
            forward.push(EntryList::with_times(gq.in_times(u)));
            backward.push(EntryList::with_times(gq.out_times(u)));
        }
        let mut tables = Self { source, target, forward, backward };
        tables.compute_forward(gq);
        tables.compute_backward(gq);
        tables
    }

    /// `TCV_τ(s, u)` for the largest stored timestamp `≤ upper` (Lemma 5).
    pub fn forward(&self, u: VertexId, upper: Timestamp) -> TcvValue<'_> {
        if u == self.source {
            return TcvValue::Empty;
        }
        lookup(&self.forward[u as usize], u, |times| {
            times.partition_point(|&t| t <= upper).checked_sub(1)
        })
    }

    /// `TCV_τ(u, t)` for the smallest stored timestamp `≥ lower` (Lemma 5).
    pub fn backward(&self, u: VertexId, lower: Timestamp) -> TcvValue<'_> {
        if u == self.target {
            return TcvValue::Empty;
        }
        lookup(&self.backward[u as usize], u, |times| {
            let idx = times.partition_point(|&t| t < lower);
            (idx < times.len()).then_some(idx)
        })
    }

    /// Rough heap usage of both tables (part of VUG's space accounting).
    pub fn approx_bytes(&self) -> usize {
        self.forward.iter().map(EntryList::approx_bytes).sum::<usize>()
            + self.backward.iter().map(EntryList::approx_bytes).sum::<usize>()
    }

    /// Forward scan implementing Equation (3) with Lemma 7 pruning.
    fn compute_forward(&mut self, gq: &TemporalGraph) {
        let n = gq.num_vertices();
        let mut completed = vec![false; n];
        // Edge ids of `gq` are already in non-descending temporal order.
        for edge in gq.edges() {
            let (v, u, tau) = (edge.src, edge.dst, edge.time);
            if u == self.target || u == self.source || completed[u as usize] {
                continue;
            }
            // Contribution of this in-edge: TCV_{τ-1}(s, v) ∪ {u}.
            let mut contribution = self.forward(v, tau - 1).to_vec();
            insert_sorted(&mut contribution, u);
            self.accumulate(Direction::Forward, u, tau, contribution, &mut completed);
        }
    }

    /// Backward scan implementing Equation (4) with Lemma 7 pruning.
    fn compute_backward(&mut self, gq: &TemporalGraph) {
        let n = gq.num_vertices();
        let mut completed = vec![false; n];
        for edge in gq.edges().iter().rev() {
            let (u, v, tau) = (edge.src, edge.dst, edge.time);
            if u == self.source || u == self.target || completed[u as usize] {
                continue;
            }
            // Contribution of this out-edge: TCV_{τ+1}(v, t) ∪ {u}.
            let mut contribution = self.backward(v, tau + 1).to_vec();
            insert_sorted(&mut contribution, u);
            self.accumulate(Direction::Backward, u, tau, contribution, &mut completed);
        }
    }

    /// Folds one edge's contribution into vertex `u`'s entry at timestamp
    /// `tau`, inheriting from the previous entry (forward: the nearest
    /// earlier timestamp; backward: the nearest later timestamp) because
    /// `TCV_τ` shrinks monotonically along the scan direction.
    fn accumulate(
        &mut self,
        direction: Direction,
        u: VertexId,
        tau: Timestamp,
        contribution: Vec<VertexId>,
        completed: &mut [bool],
    ) {
        let list = match direction {
            Direction::Forward => &mut self.forward[u as usize],
            Direction::Backward => &mut self.backward[u as usize],
        };
        let idx = list
            .times
            .binary_search(&tau)
            .expect("every scanned edge timestamp is a stored timestamp of its endpoint");
        // Previous (already finalised) entry to inherit from.
        let prev_idx = match direction {
            Direction::Forward => idx.checked_sub(1),
            Direction::Backward => (idx + 1 < list.times.len()).then_some(idx + 1),
        };
        let inherited: Option<Vec<VertexId>> = match &list.sets[idx] {
            Some(current) => Some(current.clone()),
            None => prev_idx.and_then(|p| list.sets[p].clone()),
        };
        let value = match inherited {
            Some(base) => intersect_sorted(&base, &contribution),
            None => contribution,
        };
        let is_self_only = value.len() == 1 && value[0] == u;
        list.sets[idx] = Some(value);
        if is_self_only {
            completed[u as usize] = true; // Lemma 7
        }
    }
}

enum Direction {
    Forward,
    Backward,
}

fn lookup<'a>(
    list: &'a EntryList,
    vertex: VertexId,
    pick: impl Fn(&[Timestamp]) -> Option<usize>,
) -> TcvValue<'a> {
    match pick(&list.times) {
        Some(idx) => match &list.sets[idx] {
            Some(set) if set.len() == 1 && set[0] == vertex => TcvValue::SelfOnly(vertex),
            Some(set) => TcvValue::Set(set),
            // Entry never materialised: the vertex was completed earlier in
            // the scan (Lemma 7), so the value is {vertex}.
            None => TcvValue::SelfOnly(vertex),
        },
        // No applicable stored timestamp: fall back to the safe default {v}
        // (Algorithm 5, lines 14/16).
        None => TcvValue::SelfOnly(vertex),
    }
}

fn insert_sorted(set: &mut Vec<VertexId>, v: VertexId) {
    if let Err(pos) = set.binary_search(&v) {
        set.insert(pos, v);
    }
}

fn intersect_sorted(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quick_ubg::quick_upper_bound_graph;
    use std::collections::BTreeSet;
    use tspg_graph::fixtures::{fig1, figure1_graph, figure1_query};
    use tspg_graph::{TemporalGraph, TimeInterval};

    fn figure1_tables() -> (TemporalGraph, TcvTables) {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = quick_upper_bound_graph(&g, s, t, w);
        let tables = TcvTables::compute(&gq, s, t);
        (gq, tables)
    }

    #[test]
    fn forward_table_matches_figure_4a() {
        let (_, tcv) = figure1_tables();
        // b: TCV_2(s,b) = {b}; the τ=5 entry is pruned (completed) and thus {b}.
        assert_eq!(tcv.forward(fig1::B, 2).to_vec(), vec![fig1::B]);
        assert_eq!(tcv.forward(fig1::B, 5).to_vec(), vec![fig1::B]);
        // c: TCV_3(s,c) = {b,c}, TCV_6(s,c) = {b,c}.
        assert_eq!(tcv.forward(fig1::C, 3).to_vec(), vec![fig1::B, fig1::C]);
        assert_eq!(tcv.forward(fig1::C, 6).to_vec(), vec![fig1::B, fig1::C]);
        // f: TCV_4(s,f) = {b,c,f}.
        assert_eq!(tcv.forward(fig1::F, 4).to_vec(), vec![fig1::B, fig1::C, fig1::F]);
        // e: TCV_5(s,e) = {b,c,f,e}.
        assert_eq!(tcv.forward(fig1::E, 5).to_vec(), vec![fig1::B, fig1::C, fig1::E, fig1::F]);
        // Lemma 5: a lookup between stored timestamps returns the earlier entry.
        assert_eq!(tcv.forward(fig1::C, 5).to_vec(), vec![fig1::B, fig1::C]);
        // The source itself always has an empty set.
        assert_eq!(tcv.forward(fig1::S, 7), TcvValue::Empty);
    }

    #[test]
    fn backward_table_matches_figure_4b() {
        let (_, tcv) = figure1_tables();
        // b: TCV_6(b,t) = {b}; the τ=3 entry is pruned and thus {b}.
        assert_eq!(tcv.backward(fig1::B, 6).to_vec(), vec![fig1::B]);
        assert_eq!(tcv.backward(fig1::B, 3).to_vec(), vec![fig1::B]);
        // c: TCV_7(c,t) = {c}; τ=4 pruned.
        assert_eq!(tcv.backward(fig1::C, 7).to_vec(), vec![fig1::C]);
        assert_eq!(tcv.backward(fig1::C, 4).to_vec(), vec![fig1::C]);
        // f: TCV_5(f,t) = {f} after intersecting {c,e,f} with {b,f} (Example 7).
        assert_eq!(tcv.backward(fig1::F, 5).to_vec(), vec![fig1::F]);
        // e: TCV_6(e,t) = {c,e}.
        assert_eq!(tcv.backward(fig1::E, 6).to_vec(), vec![fig1::C, fig1::E]);
        // The target itself always has an empty set.
        assert_eq!(tcv.backward(fig1::T, 2), TcvValue::Empty);
    }

    #[test]
    fn tcv_value_operations() {
        let set = vec![2u32, 5, 9];
        let v = TcvValue::Set(&set);
        assert!(v.contains(5));
        assert!(!v.contains(4));
        assert_eq!(v.to_vec(), set);
        assert!(TcvValue::Empty.is_disjoint(&v));
        assert!(v.is_disjoint(&TcvValue::Empty));
        assert!(TcvValue::SelfOnly(3).is_disjoint(&v));
        assert!(!TcvValue::SelfOnly(5).is_disjoint(&v));
        assert!(!v.is_disjoint(&TcvValue::SelfOnly(9)));
        let other = vec![1u32, 9];
        assert!(!v.is_disjoint(&TcvValue::Set(&other)));
        let other = vec![1u32, 4];
        assert!(v.is_disjoint(&TcvValue::Set(&other)));
        assert!(TcvValue::SelfOnly(1).is_disjoint(&TcvValue::SelfOnly(2)));
        assert!(!TcvValue::SelfOnly(1).is_disjoint(&TcvValue::SelfOnly(1)));
    }

    #[test]
    fn helpers_behave() {
        assert!(sorted_disjoint(&[1, 3], &[2, 4]));
        assert!(!sorted_disjoint(&[1, 3], &[3]));
        assert_eq!(intersect_sorted(&[1, 2, 5], &[2, 5, 7]), vec![2, 5]);
        let mut v = vec![1, 4];
        insert_sorted(&mut v, 3);
        insert_sorted(&mut v, 3);
        assert_eq!(v, vec![1, 3, 4]);
    }

    #[test]
    fn approx_bytes_is_positive_for_nonempty_tables() {
        let (_, tcv) = figure1_tables();
        assert!(tcv.approx_bytes() > 0);
    }

    /// Brute-force `TCV` via explicit simple-path enumeration (Definition 5),
    /// used to validate the recursive computation on random graphs.
    fn brute_force_forward(
        graph: &TemporalGraph,
        s: VertexId,
        t: VertexId,
        window: TimeInterval,
        u: VertexId,
        tau: Timestamp,
    ) -> Option<Vec<VertexId>> {
        let sub_window = window.with_end(tau)?;
        let out =
            tspg_enum::enumerate_paths(graph, s, u, sub_window, &tspg_enum::Budget::unlimited());
        let mut acc: Option<BTreeSet<VertexId>> = None;
        for p in &out.paths {
            let vs: BTreeSet<VertexId> = p.vertices().into_iter().collect();
            if vs.contains(&t) {
                continue;
            }
            let mut vs = vs;
            vs.remove(&s);
            acc = Some(match acc {
                None => vs,
                Some(cur) => cur.intersection(&vs).copied().collect(),
            });
        }
        acc.map(|set| set.into_iter().collect())
    }

    fn brute_force_backward(
        graph: &TemporalGraph,
        s: VertexId,
        t: VertexId,
        window: TimeInterval,
        u: VertexId,
        tau: Timestamp,
    ) -> Option<Vec<VertexId>> {
        let sub_window = window.with_begin(tau)?;
        let out =
            tspg_enum::enumerate_paths(graph, u, t, sub_window, &tspg_enum::Budget::unlimited());
        let mut acc: Option<BTreeSet<VertexId>> = None;
        for p in &out.paths {
            let vs: BTreeSet<VertexId> = p.vertices().into_iter().collect();
            if vs.contains(&s) {
                continue;
            }
            let mut vs = vs;
            vs.remove(&t);
            acc = Some(match acc {
                None => vs,
                Some(cur) => cur.intersection(&vs).copied().collect(),
            });
        }
        acc.map(|set| set.into_iter().collect())
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for case in 0..40 {
            let n: u32 = rng.random_range(4..12);
            let m = rng.random_range(8..60);
            let edges: Vec<tspg_graph::TemporalEdge> = (0..m)
                .map(|_| {
                    tspg_graph::TemporalEdge::new(
                        rng.random_range(0..n),
                        rng.random_range(0..n),
                        rng.random_range(1..10),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = TemporalGraph::from_edges(n as usize, edges);
            let s = rng.random_range(0..n);
            let t = rng.random_range(0..n);
            if s == t {
                continue;
            }
            let w = TimeInterval::new(1, rng.random_range(3..10));
            let gq = quick_upper_bound_graph(&g, s, t, w);
            if gq.is_empty() {
                continue;
            }
            let tcv = TcvTables::compute(&gq, s, t);
            for u in gq.non_isolated_vertices() {
                if u == s || u == t {
                    continue;
                }
                for tau in gq.in_times(u) {
                    if let Some(expected) = brute_force_forward(&g, s, t, w, u, tau) {
                        assert_eq!(
                            tcv.forward(u, tau).to_vec(),
                            expected,
                            "forward TCV mismatch: case {case}, u={u}, tau={tau}"
                        );
                    }
                }
                for tau in gq.out_times(u) {
                    if let Some(expected) = brute_force_backward(&g, s, t, w, u, tau) {
                        assert_eq!(
                            tcv.backward(u, tau).to_vec(),
                            expected,
                            "backward TCV mismatch: case {case}, u={u}, tau={tau}"
                        );
                    }
                }
            }
        }
    }
}
