//! Time-stream common vertices (Definition 5, Algorithm 4).
//!
//! For every vertex `u` of the quick upper-bound graph `G_q` and every
//! relevant timestamp `τ`, the *forward* set `TCV_τ(s, u)` contains the
//! vertices (other than `s`) shared by **all** temporal simple paths from
//! `s` to `u` within `[τ_b, τ]` that avoid `t`; the *backward* set
//! `TCV_τ(u, t)` is symmetric. If the forward set of `u` and the backward
//! set of `v` intersect, no temporal simple path from `s` to `t` can cross
//! the edge `(u, v)` — the pruning rule of `TightUBG`.
//!
//! Storing the sets for every timestamp of the window would need `O(θ·n)`
//! entries, so following Lemma 5 only the timestamps in `T_in(u, G_q)`
//! (forward) and `T_out(u, G_q)` (backward) are materialised; the value at
//! any other timestamp equals the value at the nearest stored timestamp
//! below (forward) / above (backward). The computation is a single forward
//! scan and a single backward scan of `G_q`'s time-sorted edge array, using
//! the recursion of Equations (3)–(4) and the `{u}`-completion pruning rule
//! of Lemma 7, in `O(n + θ·m)` time.

use tspg_graph::{TemporalGraph, Timestamp, VertexId};

/// A looked-up time-stream common vertex set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcvValue<'a> {
    /// The set is empty (only the case for the source/target vertex itself).
    Empty,
    /// The set is exactly `{v}`: either it was computed as such, or the
    /// vertex was "completed" earlier (Lemma 7), or no stored entry applies
    /// and the safe default `{v}` of Algorithm 5 (lines 14/16) is used.
    SelfOnly(VertexId),
    /// An explicitly stored set (sorted, never empty).
    Set(&'a [VertexId]),
}

impl TcvValue<'_> {
    /// Returns the set as an owned, sorted vector (for debugging and tests).
    pub fn to_vec(&self) -> Vec<VertexId> {
        match self {
            TcvValue::Empty => Vec::new(),
            TcvValue::SelfOnly(v) => vec![*v],
            TcvValue::Set(s) => s.to_vec(),
        }
    }

    /// Appends the set's members to `out` (which must be empty or already
    /// sorted below the members), keeping `out` sorted. The allocation-free
    /// counterpart of [`TcvValue::to_vec`] used by the table scans.
    pub fn extend_into(&self, out: &mut Vec<VertexId>) {
        match self {
            TcvValue::Empty => {}
            TcvValue::SelfOnly(v) => out.push(*v),
            TcvValue::Set(s) => out.extend_from_slice(s),
        }
    }

    /// `true` if `vertex` belongs to the set.
    pub fn contains(&self, vertex: VertexId) -> bool {
        match self {
            TcvValue::Empty => false,
            TcvValue::SelfOnly(v) => *v == vertex,
            TcvValue::Set(s) => s.binary_search(&vertex).is_ok(),
        }
    }

    /// `true` if the two sets share no vertex (the keep-condition of
    /// Lemma 3 / Lemma 9).
    pub fn is_disjoint(&self, other: &TcvValue<'_>) -> bool {
        match (self, other) {
            (TcvValue::Empty, _) | (_, TcvValue::Empty) => true,
            (TcvValue::SelfOnly(a), _) => !other.contains(*a),
            (_, TcvValue::SelfOnly(b)) => !self.contains(*b),
            (TcvValue::Set(a), TcvValue::Set(b)) => sorted_disjoint(a, b),
        }
    }
}

fn sorted_disjoint(a: &[VertexId], b: &[VertexId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// Per-vertex entry list: one optional set per stored timestamp.
#[derive(Clone, Debug, Default)]
struct EntryList {
    /// Stored timestamps, ascending (`T_in(u, G_q)` forward, `T_out(u, G_q)`
    /// backward).
    times: Vec<Timestamp>,
    /// The set for each stored timestamp; `None` means "not materialised",
    /// which by construction only happens after the vertex was completed
    /// (Lemma 7) and therefore denotes `{u}`.
    sets: Vec<Option<Vec<VertexId>>>,
}

impl EntryList {
    fn approx_bytes(&self) -> usize {
        self.times.len() * std::mem::size_of::<Timestamp>()
            + self
                .sets
                .iter()
                .map(|s| {
                    std::mem::size_of::<Option<Vec<VertexId>>>()
                        + s.as_ref().map_or(0, |v| v.len() * std::mem::size_of::<VertexId>())
                })
                .sum::<usize>()
    }
}

/// The forward and backward time-stream common vertex tables of one query.
///
/// The tables own a recycling pool of vertex-set buffers so that
/// [`TcvTables::recompute`] on a warm instance performs no steady-state
/// allocation: every set stored for the new query reuses a buffer retired
/// from the previous one.
#[derive(Clone, Debug, Default)]
pub struct TcvTables {
    source: VertexId,
    target: VertexId,
    forward: Vec<EntryList>,
    backward: Vec<EntryList>,
    /// Retired vertex-set buffers, ready for reuse.
    pool: Vec<Vec<VertexId>>,
    /// Lemma 7 completion flags, reused across scans and queries.
    completed: Vec<bool>,
}

impl TcvTables {
    /// Computes the tables over the quick upper-bound graph `gq`
    /// (Algorithm 4).
    pub fn compute(gq: &TemporalGraph, source: VertexId, target: VertexId) -> Self {
        let mut tables = Self::default();
        tables.recompute(gq, source, target);
        tables
    }

    /// Recomputes the tables for a new query, reusing this instance's
    /// storage (the in-place face of [`TcvTables::compute`]).
    pub fn recompute(&mut self, gq: &TemporalGraph, source: VertexId, target: VertexId) {
        self.source = source;
        self.target = target;
        let n = gq.num_vertices();
        recycle_entry_lists(&mut self.forward, &mut self.pool, n);
        recycle_entry_lists(&mut self.backward, &mut self.pool, n);
        for u in 0..n as VertexId {
            let list = &mut self.forward[u as usize];
            list.times.extend(gq.in_neighbors(u).iter().map(|a| a.time));
            list.times.dedup(); // adjacency is time-sorted
            list.sets.resize(list.times.len(), None);
            let list = &mut self.backward[u as usize];
            list.times.extend(gq.out_neighbors(u).iter().map(|a| a.time));
            list.times.dedup();
            list.sets.resize(list.times.len(), None);
        }
        self.compute_forward(gq);
        self.compute_backward(gq);
    }

    /// `TCV_τ(s, u)` for the largest stored timestamp `≤ upper` (Lemma 5).
    pub fn forward(&self, u: VertexId, upper: Timestamp) -> TcvValue<'_> {
        if u == self.source {
            return TcvValue::Empty;
        }
        lookup(&self.forward[u as usize], u, |times| {
            times.partition_point(|&t| t <= upper).checked_sub(1)
        })
    }

    /// `TCV_τ(u, t)` for the smallest stored timestamp `≥ lower` (Lemma 5).
    pub fn backward(&self, u: VertexId, lower: Timestamp) -> TcvValue<'_> {
        if u == self.target {
            return TcvValue::Empty;
        }
        lookup(&self.backward[u as usize], u, |times| {
            let idx = times.partition_point(|&t| t < lower);
            (idx < times.len()).then_some(idx)
        })
    }

    /// Rough heap usage of both tables (part of VUG's space accounting).
    pub fn approx_bytes(&self) -> usize {
        self.forward.iter().map(EntryList::approx_bytes).sum::<usize>()
            + self.backward.iter().map(EntryList::approx_bytes).sum::<usize>()
    }

    /// Forward scan implementing Equation (3) with Lemma 7 pruning.
    fn compute_forward(&mut self, gq: &TemporalGraph) {
        let n = gq.num_vertices();
        let mut completed = std::mem::take(&mut self.completed);
        completed.clear();
        completed.resize(n, false);
        let mut contribution = self.pool.pop().unwrap_or_default();
        // Edge ids of `gq` are already in non-descending temporal order.
        for edge in gq.edges() {
            let (v, u, tau) = (edge.src, edge.dst, edge.time);
            if u == self.target || u == self.source || completed[u as usize] {
                continue;
            }
            // Contribution of this in-edge: TCV_{τ-1}(s, v) ∪ {u}.
            contribution.clear();
            self.forward(v, tau - 1).extend_into(&mut contribution);
            insert_sorted(&mut contribution, u);
            self.accumulate(Direction::Forward, u, tau, &contribution, &mut completed);
        }
        contribution.clear();
        self.pool.push(contribution);
        self.completed = completed;
    }

    /// Backward scan implementing Equation (4) with Lemma 7 pruning.
    fn compute_backward(&mut self, gq: &TemporalGraph) {
        let n = gq.num_vertices();
        let mut completed = std::mem::take(&mut self.completed);
        completed.clear();
        completed.resize(n, false);
        let mut contribution = self.pool.pop().unwrap_or_default();
        for edge in gq.edges().iter().rev() {
            let (u, v, tau) = (edge.src, edge.dst, edge.time);
            if u == self.source || u == self.target || completed[u as usize] {
                continue;
            }
            // Contribution of this out-edge: TCV_{τ+1}(v, t) ∪ {u}.
            contribution.clear();
            self.backward(v, tau + 1).extend_into(&mut contribution);
            insert_sorted(&mut contribution, u);
            self.accumulate(Direction::Backward, u, tau, &contribution, &mut completed);
        }
        contribution.clear();
        self.pool.push(contribution);
        self.completed = completed;
    }

    /// Folds one edge's contribution into vertex `u`'s entry at timestamp
    /// `tau`, inheriting from the previous entry (forward: the nearest
    /// earlier timestamp; backward: the nearest later timestamp) because
    /// `TCV_τ` shrinks monotonically along the scan direction.
    ///
    /// The inherited set is borrowed in place (the stored sets are never
    /// cloned) and the stored result comes out of the recycling pool.
    fn accumulate(
        &mut self,
        direction: Direction,
        u: VertexId,
        tau: Timestamp,
        contribution: &[VertexId],
        completed: &mut [bool],
    ) {
        let list = match direction {
            Direction::Forward => &mut self.forward[u as usize],
            Direction::Backward => &mut self.backward[u as usize],
        };
        let idx = list
            .times
            .binary_search(&tau)
            .expect("every scanned edge timestamp is a stored timestamp of its endpoint");
        // Previous (already finalised) entry to inherit from.
        let prev_idx = match direction {
            Direction::Forward => idx.checked_sub(1),
            Direction::Backward => (idx + 1 < list.times.len()).then_some(idx + 1),
        };
        let mut value = self.pool.pop().unwrap_or_default();
        value.clear();
        let inherited: Option<&[VertexId]> = match &list.sets[idx] {
            Some(current) => Some(current.as_slice()),
            None => prev_idx.and_then(|p| list.sets[p].as_deref()),
        };
        match inherited {
            Some(base) => intersect_sorted_into(base, contribution, &mut value),
            None => value.extend_from_slice(contribution),
        }
        let is_self_only = value.len() == 1 && value[0] == u;
        if let Some(mut retired) = list.sets[idx].replace(value) {
            retired.clear();
            self.pool.push(retired);
        }
        if is_self_only {
            completed[u as usize] = true; // Lemma 7
        }
    }
}

/// Clears every list and returns its set buffers to the pool, then resizes
/// the outer vector to `n` empty lists.
fn recycle_entry_lists(lists: &mut Vec<EntryList>, pool: &mut Vec<Vec<VertexId>>, n: usize) {
    for list in lists.iter_mut() {
        for mut buffer in list.sets.drain(..).flatten() {
            buffer.clear();
            pool.push(buffer);
        }
        list.times.clear();
    }
    lists.resize_with(n, EntryList::default);
}

enum Direction {
    Forward,
    Backward,
}

fn lookup<'a>(
    list: &'a EntryList,
    vertex: VertexId,
    pick: impl Fn(&[Timestamp]) -> Option<usize>,
) -> TcvValue<'a> {
    match pick(&list.times) {
        Some(idx) => match &list.sets[idx] {
            Some(set) if set.len() == 1 && set[0] == vertex => TcvValue::SelfOnly(vertex),
            Some(set) => TcvValue::Set(set),
            // Entry never materialised: the vertex was completed earlier in
            // the scan (Lemma 7), so the value is {vertex}.
            None => TcvValue::SelfOnly(vertex),
        },
        // No applicable stored timestamp: fall back to the safe default {v}
        // (Algorithm 5, lines 14/16).
        None => TcvValue::SelfOnly(vertex),
    }
}

fn insert_sorted(set: &mut Vec<VertexId>, v: VertexId) {
    if let Err(pos) = set.binary_search(&v) {
        set.insert(pos, v);
    }
}

fn intersect_sorted_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quick_ubg::quick_upper_bound_graph;
    use std::collections::BTreeSet;
    use tspg_graph::fixtures::{fig1, figure1_graph, figure1_query};
    use tspg_graph::{TemporalGraph, TimeInterval};

    fn figure1_tables() -> (TemporalGraph, TcvTables) {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = quick_upper_bound_graph(&g, s, t, w);
        let tables = TcvTables::compute(&gq, s, t);
        (gq, tables)
    }

    #[test]
    fn forward_table_matches_figure_4a() {
        let (_, tcv) = figure1_tables();
        // b: TCV_2(s,b) = {b}; the τ=5 entry is pruned (completed) and thus {b}.
        assert_eq!(tcv.forward(fig1::B, 2).to_vec(), vec![fig1::B]);
        assert_eq!(tcv.forward(fig1::B, 5).to_vec(), vec![fig1::B]);
        // c: TCV_3(s,c) = {b,c}, TCV_6(s,c) = {b,c}.
        assert_eq!(tcv.forward(fig1::C, 3).to_vec(), vec![fig1::B, fig1::C]);
        assert_eq!(tcv.forward(fig1::C, 6).to_vec(), vec![fig1::B, fig1::C]);
        // f: TCV_4(s,f) = {b,c,f}.
        assert_eq!(tcv.forward(fig1::F, 4).to_vec(), vec![fig1::B, fig1::C, fig1::F]);
        // e: TCV_5(s,e) = {b,c,f,e}.
        assert_eq!(tcv.forward(fig1::E, 5).to_vec(), vec![fig1::B, fig1::C, fig1::E, fig1::F]);
        // Lemma 5: a lookup between stored timestamps returns the earlier entry.
        assert_eq!(tcv.forward(fig1::C, 5).to_vec(), vec![fig1::B, fig1::C]);
        // The source itself always has an empty set.
        assert_eq!(tcv.forward(fig1::S, 7), TcvValue::Empty);
    }

    #[test]
    fn backward_table_matches_figure_4b() {
        let (_, tcv) = figure1_tables();
        // b: TCV_6(b,t) = {b}; the τ=3 entry is pruned and thus {b}.
        assert_eq!(tcv.backward(fig1::B, 6).to_vec(), vec![fig1::B]);
        assert_eq!(tcv.backward(fig1::B, 3).to_vec(), vec![fig1::B]);
        // c: TCV_7(c,t) = {c}; τ=4 pruned.
        assert_eq!(tcv.backward(fig1::C, 7).to_vec(), vec![fig1::C]);
        assert_eq!(tcv.backward(fig1::C, 4).to_vec(), vec![fig1::C]);
        // f: TCV_5(f,t) = {f} after intersecting {c,e,f} with {b,f} (Example 7).
        assert_eq!(tcv.backward(fig1::F, 5).to_vec(), vec![fig1::F]);
        // e: TCV_6(e,t) = {c,e}.
        assert_eq!(tcv.backward(fig1::E, 6).to_vec(), vec![fig1::C, fig1::E]);
        // The target itself always has an empty set.
        assert_eq!(tcv.backward(fig1::T, 2), TcvValue::Empty);
    }

    #[test]
    fn tcv_value_operations() {
        let set = vec![2u32, 5, 9];
        let v = TcvValue::Set(&set);
        assert!(v.contains(5));
        assert!(!v.contains(4));
        assert_eq!(v.to_vec(), set);
        assert!(TcvValue::Empty.is_disjoint(&v));
        assert!(v.is_disjoint(&TcvValue::Empty));
        assert!(TcvValue::SelfOnly(3).is_disjoint(&v));
        assert!(!TcvValue::SelfOnly(5).is_disjoint(&v));
        assert!(!v.is_disjoint(&TcvValue::SelfOnly(9)));
        let other = vec![1u32, 9];
        assert!(!v.is_disjoint(&TcvValue::Set(&other)));
        let other = vec![1u32, 4];
        assert!(v.is_disjoint(&TcvValue::Set(&other)));
        assert!(TcvValue::SelfOnly(1).is_disjoint(&TcvValue::SelfOnly(2)));
        assert!(!TcvValue::SelfOnly(1).is_disjoint(&TcvValue::SelfOnly(1)));
    }

    #[test]
    fn helpers_behave() {
        assert!(sorted_disjoint(&[1, 3], &[2, 4]));
        assert!(!sorted_disjoint(&[1, 3], &[3]));
        let mut out = Vec::new();
        intersect_sorted_into(&[1, 2, 5], &[2, 5, 7], &mut out);
        assert_eq!(out, vec![2, 5]);
        let mut v = vec![1, 4];
        insert_sorted(&mut v, 3);
        insert_sorted(&mut v, 3);
        assert_eq!(v, vec![1, 3, 4]);
        let mut ext = Vec::new();
        TcvValue::Empty.extend_into(&mut ext);
        assert!(ext.is_empty());
        TcvValue::SelfOnly(4).extend_into(&mut ext);
        assert_eq!(ext, vec![4]);
    }

    #[test]
    fn recompute_reuses_storage_and_matches_fresh_tables() {
        // Warm one instance over a sequence of different queries/graphs and
        // compare every lookup against a freshly computed table.
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let mut warm = TcvTables::default();
        for (qs, qt, qw) in [(s, t, w), (t, s, w), (s, t, TimeInterval::new(3, 5)), (s, t, w)] {
            let gq = quick_upper_bound_graph(&g, qs, qt, qw);
            warm.recompute(&gq, qs, qt);
            let fresh = TcvTables::compute(&gq, qs, qt);
            for u in 0..gq.num_vertices() as u32 {
                for tau in 0..10 {
                    assert_eq!(
                        warm.forward(u, tau).to_vec(),
                        fresh.forward(u, tau).to_vec(),
                        "forward u={u} tau={tau} query=({qs},{qt},{qw})"
                    );
                    assert_eq!(
                        warm.backward(u, tau).to_vec(),
                        fresh.backward(u, tau).to_vec(),
                        "backward u={u} tau={tau} query=({qs},{qt},{qw})"
                    );
                }
            }
        }
    }

    #[test]
    fn approx_bytes_is_positive_for_nonempty_tables() {
        let (_, tcv) = figure1_tables();
        assert!(tcv.approx_bytes() > 0);
    }

    /// Brute-force `TCV` via explicit simple-path enumeration (Definition 5),
    /// used to validate the recursive computation on random graphs.
    fn brute_force_forward(
        graph: &TemporalGraph,
        s: VertexId,
        t: VertexId,
        window: TimeInterval,
        u: VertexId,
        tau: Timestamp,
    ) -> Option<Vec<VertexId>> {
        let sub_window = window.with_end(tau)?;
        let out =
            tspg_enum::enumerate_paths(graph, s, u, sub_window, &tspg_enum::Budget::unlimited());
        let mut acc: Option<BTreeSet<VertexId>> = None;
        for p in &out.paths {
            let vs: BTreeSet<VertexId> = p.vertices().into_iter().collect();
            if vs.contains(&t) {
                continue;
            }
            let mut vs = vs;
            vs.remove(&s);
            acc = Some(match acc {
                None => vs,
                Some(cur) => cur.intersection(&vs).copied().collect(),
            });
        }
        acc.map(|set| set.into_iter().collect())
    }

    fn brute_force_backward(
        graph: &TemporalGraph,
        s: VertexId,
        t: VertexId,
        window: TimeInterval,
        u: VertexId,
        tau: Timestamp,
    ) -> Option<Vec<VertexId>> {
        let sub_window = window.with_begin(tau)?;
        let out =
            tspg_enum::enumerate_paths(graph, u, t, sub_window, &tspg_enum::Budget::unlimited());
        let mut acc: Option<BTreeSet<VertexId>> = None;
        for p in &out.paths {
            let vs: BTreeSet<VertexId> = p.vertices().into_iter().collect();
            if vs.contains(&s) {
                continue;
            }
            let mut vs = vs;
            vs.remove(&t);
            acc = Some(match acc {
                None => vs,
                Some(cur) => cur.intersection(&vs).copied().collect(),
            });
        }
        acc.map(|set| set.into_iter().collect())
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2024);
        for case in 0..40 {
            let n: u32 = rng.random_range(4..12);
            let m = rng.random_range(8..60);
            let edges: Vec<tspg_graph::TemporalEdge> = (0..m)
                .map(|_| {
                    tspg_graph::TemporalEdge::new(
                        rng.random_range(0..n),
                        rng.random_range(0..n),
                        rng.random_range(1..10),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = TemporalGraph::from_edges(n as usize, edges);
            let s = rng.random_range(0..n);
            let t = rng.random_range(0..n);
            if s == t {
                continue;
            }
            let w = TimeInterval::new(1, rng.random_range(3..10));
            let gq = quick_upper_bound_graph(&g, s, t, w);
            if gq.is_empty() {
                continue;
            }
            let tcv = TcvTables::compute(&gq, s, t);
            for u in gq.non_isolated_vertices() {
                if u == s || u == t {
                    continue;
                }
                for tau in gq.in_times(u) {
                    if let Some(expected) = brute_force_forward(&g, s, t, w, u, tau) {
                        assert_eq!(
                            tcv.forward(u, tau).to_vec(),
                            expected,
                            "forward TCV mismatch: case {case}, u={u}, tau={tau}"
                        );
                    }
                }
                for tau in gq.out_times(u) {
                    if let Some(expected) = brute_force_backward(&g, s, t, w, u, tau) {
                        assert_eq!(
                            tcv.backward(u, tau).to_vec(),
                            expected,
                            "backward TCV mismatch: case {case}, u={u}, tau={tau}"
                        );
                    }
                }
            }
        }
    }
}
