//! Optimized bidirectional DFS (Algorithm 7, `BiDirSearch`).
//!
//! Given an unverified edge `e(u₀, v₀, τ₀)` of the tight upper-bound graph,
//! the searcher looks for **one** temporal simple path from `s` to `t`
//! through that edge: a backward simple path `s → … → u₀` arriving before
//! `τ₀` and a forward simple path `v₀ → … → t` departing after `τ₀`, sharing
//! no vertex. Both halves are explored by depth-first search over the same
//! visited set, and when the first half succeeds the search continues with
//! the other half — backtracking across the two halves if necessary.
//!
//! Two optimizations of the paper are implemented and individually
//! switchable (used by the ablation benchmarks):
//!
//! 1. **Search-direction prioritization** — the potentially longer half
//!    (larger remaining time budget) is searched first, so failures are
//!    discovered before effort is spent on the easier half.
//! 2. **Neighbour exploration order** — the forward search scans
//!    out-neighbours by non-ascending timestamp and the backward search
//!    scans in-neighbours by non-descending timestamp, biasing the DFS
//!    towards short paths that are less likely to collide with the other
//!    half.

use tspg_graph::{EdgeId, TemporalGraph, TimeInterval, Timestamp, VertexId};

/// Tuning knobs for the bidirectional search (both default to `true`, the
/// paper's configuration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BidirOptions {
    /// Enable search-direction prioritization (optimization i).
    pub prioritize_direction: bool,
    /// Enable the temporal neighbour exploration order (optimization ii).
    pub order_neighbors: bool,
}

impl Default for BidirOptions {
    fn default() -> Self {
        Self { prioritize_direction: true, order_neighbors: true }
    }
}

/// Counters accumulated over all searches performed by one EEV run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BidirStats {
    /// Number of seed edges for which a search was started.
    pub searches: u64,
    /// Number of searches that found a witness path.
    pub successes: u64,
    /// Total number of DFS edge expansions across all searches.
    pub expansions: u64,
}

/// The reusable buffers of a [`BidirSearcher`]: the shared visited bitmap
/// (with its undo log) and the two half-path edge stacks.
///
/// Extracting the scratch from a finished searcher with
/// [`BidirSearcher::into_scratch`] and threading it into the next query's
/// searcher keeps the DFS allocation-free across a whole batch.
#[derive(Clone, Debug, Default)]
pub struct BidirScratch {
    visited: Vec<bool>,
    touched: Vec<VertexId>,
    forward_edges: Vec<EdgeId>,
    backward_edges: Vec<EdgeId>,
}

/// Reusable bidirectional searcher over one tight upper-bound graph.
#[derive(Debug)]
pub struct BidirSearcher<'g> {
    graph: &'g TemporalGraph,
    source: VertexId,
    target: VertexId,
    window: TimeInterval,
    options: BidirOptions,
    scratch: BidirScratch,
    stats: BidirStats,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Half {
    Forward,
    Backward,
}

impl<'g> BidirSearcher<'g> {
    /// Creates a searcher over the tight upper-bound graph `graph`.
    pub fn new(
        graph: &'g TemporalGraph,
        source: VertexId,
        target: VertexId,
        window: TimeInterval,
        options: BidirOptions,
    ) -> Self {
        Self::with_scratch(graph, source, target, window, options, BidirScratch::default())
    }

    /// Creates a searcher that reuses the buffers of a previous searcher
    /// (recover them with [`BidirSearcher::into_scratch`]).
    pub fn with_scratch(
        graph: &'g TemporalGraph,
        source: VertexId,
        target: VertexId,
        window: TimeInterval,
        options: BidirOptions,
        mut scratch: BidirScratch,
    ) -> Self {
        scratch.visited.clear();
        scratch.visited.resize(graph.num_vertices(), false);
        scratch.touched.clear();
        scratch.forward_edges.clear();
        scratch.backward_edges.clear();
        Self { graph, source, target, window, options, scratch, stats: BidirStats::default() }
    }

    /// Consumes the searcher and returns its buffers for reuse.
    pub fn into_scratch(self) -> BidirScratch {
        self.scratch
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> BidirStats {
        self.stats
    }

    /// Searches for a temporal simple path from `s` to `t` through the seed
    /// edge. On success returns the path as edge ids of the underlying graph
    /// in order from `s` to `t` (the seed edge included).
    pub fn find_path_through(&mut self, seed: EdgeId) -> Option<Vec<EdgeId>> {
        let mut path = Vec::new();
        self.find_path_through_into(seed, &mut path).then_some(path)
    }

    /// Buffer-reusing variant of [`BidirSearcher::find_path_through`]: on
    /// success fills `path` with the witness and returns `true` (the hot-path
    /// form used by EEV, which reuses one path buffer per worker).
    pub fn find_path_through_into(&mut self, seed: EdgeId, path: &mut Vec<EdgeId>) -> bool {
        path.clear();
        self.reset();
        self.stats.searches += 1;
        let edge = self.graph.edge(seed);
        let (u0, v0, tau0) = (edge.src, edge.dst, edge.time);
        if u0 == v0 {
            return false;
        }
        self.mark(u0);
        self.mark(v0);

        // Optimization i: search the potentially longer half first.
        let forward_first = if self.options.prioritize_direction {
            tau0 - self.window.begin() > self.window.end() - tau0
        } else {
            true
        };
        let found = if forward_first {
            self.search(Half::Forward, v0, tau0, Some((u0, tau0)))
        } else {
            self.search(Half::Backward, u0, tau0, Some((v0, tau0)))
        };
        if !found {
            return false;
        }
        self.stats.successes += 1;
        path.extend(self.scratch.backward_edges.iter().rev().copied());
        path.push(seed);
        path.extend(self.scratch.forward_edges.iter().copied());
        true
    }

    fn reset(&mut self) {
        for &v in &self.scratch.touched {
            self.scratch.visited[v as usize] = false;
        }
        self.scratch.touched.clear();
        self.scratch.forward_edges.clear();
        self.scratch.backward_edges.clear();
    }

    fn mark(&mut self, v: VertexId) {
        if !self.scratch.visited[v as usize] {
            self.scratch.visited[v as usize] = true;
            self.scratch.touched.push(v);
        }
    }

    fn unmark(&mut self, v: VertexId) {
        self.scratch.visited[v as usize] = false;
        if self.scratch.touched.last() == Some(&v) {
            self.scratch.touched.pop();
        }
    }

    /// Depth-first extension of one half.
    ///
    /// * `half` — which half is currently extended.
    /// * `cur` — the frontier vertex of that half.
    /// * `bound` — the arrival time at `cur` (forward) or the departure time
    ///   from `cur` (backward); the next edge must be strictly later
    ///   (forward) or strictly earlier (backward).
    /// * `pending` — `Some((start, τ₀))` if the *other* half still has to be
    ///   searched once this one completes; `None` if the other half is done.
    fn search(
        &mut self,
        half: Half,
        cur: VertexId,
        bound: Timestamp,
        pending: Option<(VertexId, Timestamp)>,
    ) -> bool {
        match half {
            Half::Forward if cur == self.target => {
                return match pending {
                    None => true,
                    Some((start, tau0)) => self.search(Half::Backward, start, tau0, None),
                };
            }
            Half::Backward if cur == self.source => {
                return match pending {
                    None => true,
                    Some((start, tau0)) => self.search(Half::Forward, start, tau0, None),
                };
            }
            _ => {}
        }

        // The adjacency slices borrow the graph (not `self`), so the DFS can
        // walk them directly — no per-level buffer, no allocation.
        let graph = self.graph;
        let (entries, reversed): (&[tspg_graph::AdjEntry], bool) = match half {
            Half::Forward => {
                let Some(range) = TimeInterval::try_new(bound + 1, self.window.end()) else {
                    return false;
                };
                // Optimization ii wants non-ascending timestamps here, i.e.
                // the time-sorted slice iterated backwards.
                (graph.out_neighbors_in(cur, range), self.options.order_neighbors)
            }
            Half::Backward => {
                let Some(range) = TimeInterval::try_new(self.window.begin(), bound - 1) else {
                    return false;
                };
                // Optimization ii wants non-descending timestamps here, i.e.
                // the slice's natural order.
                (graph.in_neighbors_in(cur, range), !self.options.order_neighbors)
            }
        };

        for i in 0..entries.len() {
            let entry = if reversed { entries[entries.len() - 1 - i] } else { entries[i] };
            self.stats.expansions += 1;
            let next = entry.neighbor;
            if self.scratch.visited[next as usize] {
                continue;
            }
            self.mark(next);
            match half {
                Half::Forward => self.scratch.forward_edges.push(entry.edge),
                Half::Backward => self.scratch.backward_edges.push(entry.edge),
            }
            if self.search(half, next, entry.time, pending) {
                return true;
            }
            match half {
                Half::Forward => self.scratch.forward_edges.pop(),
                Half::Backward => self.scratch.backward_edges.pop(),
            };
            self.unmark(next);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quick_ubg::quick_upper_bound_graph;
    use crate::tight_ubg::tight_upper_bound_graph;
    use tspg_enum::TemporalPath;
    use tspg_graph::fixtures::{fig1, figure1_graph, figure1_query};

    fn searcher_over_gt(
        options: BidirOptions,
    ) -> (TemporalGraph, VertexId, VertexId, TimeInterval) {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = quick_upper_bound_graph(&g, s, t, w);
        let gt = tight_upper_bound_graph(&gq, s, t);
        let _ = options;
        (gt, s, t, w)
    }

    fn check_path(
        gt: &TemporalGraph,
        s: VertexId,
        t: VertexId,
        w: TimeInterval,
        ids: &[EdgeId],
        seed: EdgeId,
    ) {
        let edges: Vec<_> = ids.iter().map(|&id| gt.edge(id)).collect();
        assert!(ids.contains(&seed));
        let path = TemporalPath::new(edges).expect("edges must chain");
        path.validate(s, t, w).expect("witness must be a temporal simple path");
    }

    #[test]
    fn finds_witness_paths_on_the_running_example() {
        let (gt, s, t, w) = searcher_over_gt(BidirOptions::default());
        let mut searcher = BidirSearcher::new(&gt, s, t, w, BidirOptions::default());
        // e(b, c, 3) lies on ⟨s,b,c,t⟩.
        let seed = gt.find_edge(fig1::B, fig1::C, 3).unwrap();
        let path = searcher.find_path_through(seed).expect("path must exist");
        check_path(&gt, s, t, w, &path, seed);
        // e(c, f, 4) lies on no temporal simple path from s to t: f is a dead
        // end inside G_t.
        let seed = gt.find_edge(fig1::C, fig1::F, 4).unwrap();
        assert!(searcher.find_path_through(seed).is_none());
        let stats = searcher.stats();
        assert_eq!(stats.searches, 2);
        assert_eq!(stats.successes, 1);
        assert!(stats.expansions > 0);
    }

    #[test]
    fn all_option_combinations_agree_on_existence() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        // Search over G_q (larger than G_t) so that cycle edges exercise the
        // backtracking across halves.
        let gq = quick_upper_bound_graph(&g, s, t, w);
        let combos = [
            BidirOptions { prioritize_direction: true, order_neighbors: true },
            BidirOptions { prioritize_direction: true, order_neighbors: false },
            BidirOptions { prioritize_direction: false, order_neighbors: true },
            BidirOptions { prioritize_direction: false, order_neighbors: false },
        ];
        for edge_id in 0..gq.num_edges() as EdgeId {
            let results: Vec<bool> = combos
                .iter()
                .map(|&opt| {
                    let mut searcher = BidirSearcher::new(&gq, s, t, w, opt);
                    let found = searcher.find_path_through(edge_id);
                    if let Some(ids) = &found {
                        check_path(&gq, s, t, w, ids, edge_id);
                    }
                    found.is_some()
                })
                .collect();
            assert!(
                results.iter().all(|&r| r == results[0]),
                "options disagree on edge {:?}",
                gq.edge(edge_id)
            );
        }
    }

    #[test]
    fn seed_incident_to_endpoints_is_handled() {
        let (gt, s, t, w) = searcher_over_gt(BidirOptions::default());
        let mut searcher = BidirSearcher::new(&gt, s, t, w, BidirOptions::default());
        let seed = gt.find_edge(fig1::S, fig1::B, 2).unwrap();
        let path = searcher.find_path_through(seed).unwrap();
        check_path(&gt, s, t, w, &path, seed);
        let seed = gt.find_edge(fig1::C, fig1::T, 7).unwrap();
        let path = searcher.find_path_through(seed).unwrap();
        check_path(&gt, s, t, w, &path, seed);
    }

    #[test]
    fn cross_half_backtracking_is_supported() {
        // Craft a graph where the greedy forward path blocks the backward
        // half, forcing the search to backtrack into the forward half:
        //   s -1-> u, u -3-> x -4-> t, u -3-> t (via x only),
        //   backward of the seed must go through x if forward grabbed it.
        // Seed edge: u -2-> v where v -3-> x -4-> t and s -1-> u.
        let g = tspg_graph::TemporalGraph::from_edges(
            6,
            vec![
                tspg_graph::TemporalEdge::new(0, 1, 1), // s -> u
                tspg_graph::TemporalEdge::new(1, 2, 2), // u -> v (seed)
                tspg_graph::TemporalEdge::new(2, 3, 3), // v -> x
                tspg_graph::TemporalEdge::new(3, 4, 4), // x -> t
                tspg_graph::TemporalEdge::new(2, 4, 5), // v -> t (alternative forward)
                tspg_graph::TemporalEdge::new(3, 1, 1), // x -> u (tempting backward via x)
            ],
        );
        let w = TimeInterval::new(1, 5);
        let (s, t) = (0, 4);
        for opt in [
            BidirOptions { prioritize_direction: false, order_neighbors: false },
            BidirOptions::default(),
        ] {
            let mut searcher = BidirSearcher::new(&g, s, t, w, opt);
            let seed = g.find_edge(1, 2, 2).unwrap();
            let path = searcher.find_path_through(seed).expect("a witness exists");
            check_path(&g, s, t, w, &path, seed);
        }
    }

    #[test]
    fn self_loop_seed_is_rejected() {
        let g =
            tspg_graph::TemporalGraph::from_edges(2, vec![tspg_graph::TemporalEdge::new(0, 0, 3)]);
        let mut searcher =
            BidirSearcher::new(&g, 0, 1, TimeInterval::new(1, 5), BidirOptions::default());
        assert!(searcher.find_path_through(0).is_none());
    }
}
