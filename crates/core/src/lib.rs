//! # tspg-core
//!
//! **VUG — Verification in Upper-bound Graph**: the paper's algorithm for
//! generating the temporal simple path graph (`tspG`) of a query
//! `(s, t, [τ_b, τ_e])` over a directed temporal graph without exhaustively
//! enumerating temporal simple paths.
//!
//! The pipeline (Algorithm 1) has three phases:
//!
//! 1. **QuickUBG** ([`quick_ubg`], Algorithms 2–3): compute every vertex's
//!    earliest arrival time `A(u)` and latest departure time `D(u)` with a
//!    BFS-like label-correcting scan and keep exactly the edges with
//!    `A(u) < τ < D(v)` — the quick upper-bound graph `G_q`.
//! 2. **TightUBG** ([`tcv`], [`tight_ubg`], Algorithms 4–5): compute the
//!    *time-stream common vertices* `TCV_τ(s, u)` / `TCV_τ(u, t)` with a
//!    single forward and a single backward scan of `G_q`'s edges, then drop
//!    every edge whose two TCV sets share a vertex — the tight upper-bound
//!    graph `G_t`.
//! 3. **EEV** ([`eev`], [`bidir`], Algorithms 6–7): confirm edges of `G_t`
//!    into the result, first by the source/target rules (Lemmas 2 and 10),
//!    then by finding one witness temporal simple path per remaining edge
//!    with an optimized bidirectional DFS and batch-confirming all
//!    replaceable parallel edges (Lemma 11).
//!
//! For answering **many** queries over one loaded graph, the [`engine`]
//! module provides [`QueryEngine`]: batches go through a **plan → execute →
//! assemble** pipeline — duplicate queries collapse, window-contained
//! queries are answered from the covering query's tspG, execution is an
//! atomic-cursor work-stealing loop across scoped threads (each worker
//! reusing a [`QueryScratch`] arena, zero steady-state allocation), and a
//! sharded LRU [`engine::cache::ResultCache`] memoizes `(s, t, window)` →
//! tspG across batches. Result ordering stays deterministic throughout.
//!
//! # Quick start
//!
//! ```
//! use tspg_graph::fixtures::{figure1_graph, figure1_query};
//! use tspg_core::generate_tspg;
//!
//! let g = figure1_graph();
//! let (s, t, window) = figure1_query();
//! let result = generate_tspg(&g, s, t, window);
//! assert_eq!(result.tspg.num_edges(), 4);   // Fig. 1(c)
//! assert_eq!(result.tspg.num_vertices(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bidir;
pub mod eev;
pub mod engine;
pub mod polarity;
pub mod quick_ubg;
pub mod tcv;
pub mod tight_ubg;
pub mod vug;

pub use bidir::{BidirOptions, BidirScratch, BidirSearcher, BidirStats};
pub use eev::{
    escaped_edges_verification, escaped_edges_verification_with, EevOutcome, EevScratch, EevStats,
};
pub use engine::cache::{CacheConfig, CacheStats, ProfileCacheConfig, ProfileCacheStats};
pub use engine::planner::{
    BatchPlan, PlannerConfig, ProfileGroup, DEFAULT_ENVELOPE_DENSITY_CUTOFF,
    DEFAULT_ENVELOPE_SPAN_FACTOR, DEFAULT_PROFILE_DENSITY_CUTOFF,
};
pub use engine::{BatchStats, QueryEngine, QueryScratch, QuerySpec};
pub use polarity::{
    compute_polarity, ArrivalProfile, PolarityScratch, PolarityTimes, SourceFrontier,
};
pub use quick_ubg::quick_upper_bound_graph;
pub use tcv::{TcvTables, TcvValue};
pub use tight_ubg::tight_upper_bound_graph;
pub use vug::{generate_tspg, generate_tspg_with, VugConfig, VugReport, VugResult};
