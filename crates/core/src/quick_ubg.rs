//! Quick upper-bound graph generation (Algorithm 2).
//!
//! Given the polarity times, the quick upper-bound graph `G_q` keeps exactly
//! the edges `e(u, v, τ)` with `A(u) < τ < D(v)` (Lemma 1): the edges lying
//! on at least one strict temporal path from `s` to `t` within the window.
//! The scan is `O(m)`.

use crate::polarity::{compute_polarity, PolarityTimes, SourceFrontier};
use tspg_graph::{TemporalEdge, TemporalGraph, TimeInterval, VertexId};

/// Builds `G_q` from precomputed polarity times.
pub fn quick_upper_bound_graph_from(
    graph: &TemporalGraph,
    polarity: &PolarityTimes,
) -> TemporalGraph {
    graph.edge_induced(|_, e| polarity.admits_edge(e.src, e.dst, e.time))
}

/// In-place variant of [`quick_upper_bound_graph_from`]: rebuilds `out` as
/// `G_q`, reusing its storage (allocation-free once warm).
pub fn quick_upper_bound_graph_into(
    graph: &TemporalGraph,
    polarity: &PolarityTimes,
    out: &mut TemporalGraph,
) {
    out.assign_edge_induced(graph, |_, e| polarity.admits_edge(e.src, e.dst, e.time));
}

/// Frontier-restricted variant of [`quick_upper_bound_graph_into`]: instead
/// of filtering all `m` edges of the input graph, scan only the out-edges
/// of the shared frontier's reachable vertices.
///
/// `polarity` must be the tables produced by
/// [`crate::polarity::compute_polarity_into_with_frontier`] with the same
/// `frontier` — its arrival labels are a (clamped) subset of the frontier's,
/// so every admissible edge leaves a frontier-reachable vertex and the
/// restricted scan loses nothing. The result is identical to
/// [`quick_upper_bound_graph_into`] over the same tables, but its cost is
/// proportional to the frontier's out-degree sum rather than to `m` — the
/// per-member win on large graphs whose query windows touch a sliver of the
/// edge set.
///
/// `buf` is the caller's reusable edge buffer (admitted edges are gathered
/// grouped by source vertex, then handed to
/// [`TemporalGraph::assign_from_edges`] for the in-place rebuild).
pub fn quick_upper_bound_graph_into_with_frontier(
    graph: &TemporalGraph,
    polarity: &PolarityTimes,
    frontier: &SourceFrontier,
    buf: &mut Vec<TemporalEdge>,
    out: &mut TemporalGraph,
) {
    frontier_candidate_edges(graph, polarity, frontier, buf);
    out.assign_from_edges(graph.num_vertices(), buf);
}

/// The edge-gathering half of
/// [`quick_upper_bound_graph_into_with_frontier`]: fills `buf` with the
/// admitted edges (grouped by source vertex, unsorted) without building a
/// graph — the engine compacts them to their induced vertex set first.
pub fn frontier_candidate_edges(
    graph: &TemporalGraph,
    polarity: &PolarityTimes,
    frontier: &SourceFrontier,
    buf: &mut Vec<TemporalEdge>,
) {
    buf.clear();
    for &u in frontier.reachable() {
        // The member's clamp may have dropped this vertex's label; without
        // an arrival no out-edge of `u` is admissible (Lemma 1).
        let Some(reach) = polarity.arrival(u) else { continue };
        let outs = graph.out_neighbors(u);
        let from = outs.partition_point(|a| a.time <= reach);
        for entry in &outs[from..] {
            // `A(u) < τ` holds by the slice bound; `τ < D(v)` (checked
            // here) implies `τ ≤ τ_e`, and `τ > A(u) ≥ τ_b − 1` implies
            // `τ ≥ τ_b`, so no separate window test is needed.
            if polarity.departure(entry.neighbor).is_some_and(|depart| entry.time < depart) {
                buf.push(TemporalEdge::new(u, entry.neighbor, entry.time));
            }
        }
    }
}

/// Computes the polarity times and builds `G_q` in one call.
pub fn quick_upper_bound_graph(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
) -> TemporalGraph {
    let polarity = compute_polarity(graph, s, t, window);
    quick_upper_bound_graph_from(graph, &polarity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{fig1, figure1_graph, figure1_query};
    use tspg_graph::{EdgeSet, TemporalEdge};

    #[test]
    fn reproduces_figure_3c() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = quick_upper_bound_graph(&g, s, t, w);
        let expected = EdgeSet::from_edges(vec![
            TemporalEdge::new(fig1::S, fig1::B, 2),
            TemporalEdge::new(fig1::B, fig1::C, 3),
            TemporalEdge::new(fig1::C, fig1::F, 4),
            TemporalEdge::new(fig1::F, fig1::B, 5),
            TemporalEdge::new(fig1::F, fig1::E, 5),
            TemporalEdge::new(fig1::E, fig1::C, 6),
            TemporalEdge::new(fig1::B, fig1::T, 6),
            TemporalEdge::new(fig1::C, fig1::T, 7),
        ]);
        assert_eq!(EdgeSet::from_graph(&gq), expected);
        assert_eq!(gq.num_edges(), 8);
    }

    #[test]
    fn identical_to_dijkstra_based_tgtsg() {
        // The paper's discussion after Theorem 2: QuickUBG and tgTSG achieve
        // the same reduction; only their running time differs.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let n = rng.random_range(5..40);
            let edges: Vec<TemporalEdge> = (0..rng.random_range(10..250))
                .map(|_| {
                    TemporalEdge::new(
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(1..25),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = TemporalGraph::from_edges(n, edges);
            let s = rng.random_range(0..n) as VertexId;
            let t = rng.random_range(0..n) as VertexId;
            let w = TimeInterval::new(2, 2 + rng.random_range(0..15));
            let ours = EdgeSet::from_graph(&quick_upper_bound_graph(&g, s, t, w));
            let theirs = EdgeSet::from_graph(&tspg_baselines::tg_tsg(&g, s, t, w));
            assert_eq!(ours, theirs);
        }
    }

    #[test]
    fn gq_is_contained_in_the_projection() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = EdgeSet::from_graph(&quick_upper_bound_graph(&g, s, t, w));
        let dt = EdgeSet::from_graph(&g.project(w));
        assert!(gq.is_subset_of(&dt));
    }

    #[test]
    fn frontier_restricted_scan_matches_the_full_scan() {
        use crate::polarity::{
            compute_polarity_into_with_frontier, PolarityScratch, SourceFrontier,
        };
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let mut buf = Vec::new();
        let mut scratch = PolarityScratch::default();
        let mut times = PolarityTimes::default();
        let mut restricted = TemporalGraph::default();
        let mut full = TemporalGraph::default();
        for case in 0..25 {
            let n = rng.random_range(5..30);
            let edges: Vec<TemporalEdge> = (0..rng.random_range(10..200))
                .map(|_| {
                    TemporalEdge::new(
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(1..20),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = TemporalGraph::from_edges(n, edges);
            let s = rng.random_range(0..n) as VertexId;
            let hull = TimeInterval::new(2, 2 + rng.random_range(4..15));
            let frontier = SourceFrontier::compute(&g, s, hull);
            for _ in 0..3 {
                let t = rng.random_range(0..n) as VertexId;
                let window = TimeInterval::new(2, rng.random_range(2..=hull.end()));
                compute_polarity_into_with_frontier(
                    &g,
                    s,
                    t,
                    window,
                    &frontier,
                    &mut times,
                    &mut scratch,
                );
                quick_upper_bound_graph_into_with_frontier(
                    &g,
                    &times,
                    &frontier,
                    &mut buf,
                    &mut restricted,
                );
                quick_upper_bound_graph_into(&g, &times, &mut full);
                assert_eq!(
                    restricted.edges(),
                    full.edges(),
                    "case {case}: restricted scan diverged for ({s}, {t}, {window})"
                );
            }
        }
    }

    #[test]
    fn frontier_gq_is_a_superset_of_the_avoiding_gq() {
        use crate::polarity::{
            compute_polarity_into_with_frontier, PolarityScratch, SourceFrontier,
        };
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let frontier = SourceFrontier::compute(&g, s, w);
        let mut times = PolarityTimes::default();
        let mut buf = Vec::new();
        let mut gq = TemporalGraph::default();
        compute_polarity_into_with_frontier(
            &g,
            s,
            t,
            w,
            &frontier,
            &mut times,
            &mut PolarityScratch::default(),
        );
        quick_upper_bound_graph_into_with_frontier(&g, &times, &frontier, &mut buf, &mut gq);
        let avoiding = EdgeSet::from_graph(&quick_upper_bound_graph(&g, s, t, w));
        assert!(avoiding.is_subset_of(&EdgeSet::from_graph(&gq)));
    }

    #[test]
    fn empty_when_target_unreachable() {
        let g = figure1_graph();
        let gq = quick_upper_bound_graph(&g, fig1::T, fig1::S, TimeInterval::new(2, 7));
        assert!(gq.is_empty());
    }
}
