//! Quick upper-bound graph generation (Algorithm 2).
//!
//! Given the polarity times, the quick upper-bound graph `G_q` keeps exactly
//! the edges `e(u, v, τ)` with `A(u) < τ < D(v)` (Lemma 1): the edges lying
//! on at least one strict temporal path from `s` to `t` within the window.
//! The scan is `O(m)`.

use crate::polarity::{compute_polarity, PolarityTimes};
use tspg_graph::{TemporalGraph, TimeInterval, VertexId};

/// Builds `G_q` from precomputed polarity times.
pub fn quick_upper_bound_graph_from(
    graph: &TemporalGraph,
    polarity: &PolarityTimes,
) -> TemporalGraph {
    graph.edge_induced(|_, e| polarity.admits_edge(e.src, e.dst, e.time))
}

/// In-place variant of [`quick_upper_bound_graph_from`]: rebuilds `out` as
/// `G_q`, reusing its storage (allocation-free once warm).
pub fn quick_upper_bound_graph_into(
    graph: &TemporalGraph,
    polarity: &PolarityTimes,
    out: &mut TemporalGraph,
) {
    out.assign_edge_induced(graph, |_, e| polarity.admits_edge(e.src, e.dst, e.time));
}

/// Computes the polarity times and builds `G_q` in one call.
pub fn quick_upper_bound_graph(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
) -> TemporalGraph {
    let polarity = compute_polarity(graph, s, t, window);
    quick_upper_bound_graph_from(graph, &polarity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{fig1, figure1_graph, figure1_query};
    use tspg_graph::{EdgeSet, TemporalEdge};

    #[test]
    fn reproduces_figure_3c() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = quick_upper_bound_graph(&g, s, t, w);
        let expected = EdgeSet::from_edges(vec![
            TemporalEdge::new(fig1::S, fig1::B, 2),
            TemporalEdge::new(fig1::B, fig1::C, 3),
            TemporalEdge::new(fig1::C, fig1::F, 4),
            TemporalEdge::new(fig1::F, fig1::B, 5),
            TemporalEdge::new(fig1::F, fig1::E, 5),
            TemporalEdge::new(fig1::E, fig1::C, 6),
            TemporalEdge::new(fig1::B, fig1::T, 6),
            TemporalEdge::new(fig1::C, fig1::T, 7),
        ]);
        assert_eq!(EdgeSet::from_graph(&gq), expected);
        assert_eq!(gq.num_edges(), 8);
    }

    #[test]
    fn identical_to_dijkstra_based_tgtsg() {
        // The paper's discussion after Theorem 2: QuickUBG and tgTSG achieve
        // the same reduction; only their running time differs.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..25 {
            let n = rng.random_range(5..40);
            let edges: Vec<TemporalEdge> = (0..rng.random_range(10..250))
                .map(|_| {
                    TemporalEdge::new(
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(1..25),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = TemporalGraph::from_edges(n, edges);
            let s = rng.random_range(0..n) as VertexId;
            let t = rng.random_range(0..n) as VertexId;
            let w = TimeInterval::new(2, 2 + rng.random_range(0..15));
            let ours = EdgeSet::from_graph(&quick_upper_bound_graph(&g, s, t, w));
            let theirs = EdgeSet::from_graph(&tspg_baselines::tg_tsg(&g, s, t, w));
            assert_eq!(ours, theirs);
        }
    }

    #[test]
    fn gq_is_contained_in_the_projection() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = EdgeSet::from_graph(&quick_upper_bound_graph(&g, s, t, w));
        let dt = EdgeSet::from_graph(&g.project(w));
        assert!(gq.is_subset_of(&dt));
    }

    #[test]
    fn empty_when_target_unreachable() {
        let g = figure1_graph();
        let gq = quick_upper_bound_graph(&g, fig1::T, fig1::S, TimeInterval::new(2, 7));
        assert!(gq.is_empty());
    }
}
