//! Batch planning: collapse duplicate queries, attach window-contained
//! queries to the unit whose result already covers them, and synthesize
//! **envelope units** for overlapping (non-nested) windows.
//!
//! The planner turns the flat query list of a batch into a [`BatchPlan`] of
//! executable [`PlanUnit`]s. Three reductions are applied, all purely
//! syntactic on the canonical query forms (no graph access):
//!
//! 1. **Dedup** — queries with identical canonical form share one unit; the
//!    unit's result is copied into every duplicate's result slot.
//! 2. **Window sharing** — a query whose window is *contained* in another
//!    query's window on the same `(s, t)` pair is attached to the covering
//!    unit as a [`Follower`]. Every temporal simple path of the narrower
//!    query lies within the covering window, hence inside the covering
//!    unit's tspG (Definition 2); the follower is therefore answered exactly
//!    by re-running the pipeline *on that tspG* — usually orders of
//!    magnitude smaller than the input graph — instead of on the full graph.
//! 3. **Envelope units** — same-`(s, t)` queries whose windows merely
//!    *overlap* (their union is one interval, no member containing the
//!    rest) are collapsed into one *synthesized* unit whose window is the
//!    envelope `[min begin, max end]`. The envelope query was never asked
//!    by the batch — its `direct` list is empty — but every member window
//!    is contained in the envelope, so each member becomes a follower and
//!    is answered exactly from the envelope's tspG by the same Definition-2
//!    argument as reduction 2. One full-graph pipeline execution (over a
//!    slightly wider window) replaces one per member.
//!
//!    A **cost guard** keeps envelopes from regressing latency: merging is
//!    abandoned whenever the envelope's span would exceed
//!    [`PlannerConfig::envelope_span_factor`] times the widest member's
//!    span, so a pathological chain of barely-overlapping windows is split
//!    into several bounded envelopes instead of one graph-wide window.
//!
//! The planner never changes answers, only who computes them: the executor
//! runs one full-graph pipeline per unit and one tspG-sized pipeline per
//! follower, and the assembly step fans results back out to the original
//! query order.

use crate::engine::QuerySpec;
use std::collections::HashMap;
use tspg_graph::{TimeInterval, VertexId};

/// Default envelope cost-guard factor: an envelope may span at most this
/// many times the widest window it absorbs.
pub const DEFAULT_ENVELOPE_SPAN_FACTOR: f64 = 2.0;

/// Default dense-graph cutoff: envelope synthesis is disabled once the
/// engine's observed average `tspG vertices / graph vertices` ratio
/// exceeds this value (see [`PlannerConfig::envelope_density_cutoff`]).
pub const DEFAULT_ENVELOPE_DENSITY_CUTOFF: f64 = 0.8;

/// Default dense-graph cutoff for profile sharing: grouping is disabled
/// once the engine's observed average `clamp superset H vertices / graph
/// vertices` ratio exceeds this value (see
/// [`PlannerConfig::profile_density_cutoff`]).
pub const DEFAULT_PROFILE_DENSITY_CUTOFF: f64 = 0.8;

/// Planner policy knobs (the CLI exposes them as `--envelope-factor`,
/// `--no-envelopes`, `--envelope-density-cutoff` and
/// `--no-profile-sharing`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlannerConfig {
    /// Synthesize envelope units for overlapping windows. When `false` the
    /// planner shares work on exact containment only (the PR 3 behaviour).
    pub envelopes: bool,
    /// Cost guard `k ≥ 1`: an envelope's span may not exceed `k ×` the span
    /// of the widest window merged into it. The same factor guards
    /// same-source profile hulls: a unit joins a profile group only while
    /// the hull's span stays within `k ×` every member's own span.
    pub envelope_span_factor: f64,
    /// Dense-graph heuristic (the ROADMAP item): when the engine's observed
    /// average `tspG vertices / graph vertices` ratio exceeds this cutoff,
    /// envelope synthesis is disabled for the batch — on dense graphs a
    /// follower rerun over the envelope's tspG costs nearly as much as a
    /// full-graph run, so the synthesized envelope run is pure overhead.
    /// Containment sharing and dedup are unaffected (they never add runs).
    pub envelope_density_cutoff: f64,
    /// Group same-source units (begins hulled under the span-factor guard)
    /// so the executor computes one target-agnostic arrival profile
    /// ([`crate::polarity::ArrivalProfile`]) per group instead of one
    /// forward pass per unit.
    pub profile_sharing: bool,
    /// Dense-graph heuristic for profile sharing, mirroring
    /// `envelope_density_cutoff`: when the engine's observed average
    /// `clamp superset H vertices / graph vertices` ratio exceeds this
    /// cutoff, profile grouping is disabled for the batch — on dense
    /// graphs the clamped candidate subgraph `H` is nearly the whole
    /// graph, so the profile pass plus the member reruns cost more than
    /// the plain per-unit pipeline.
    pub profile_density_cutoff: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            envelopes: true,
            envelope_span_factor: DEFAULT_ENVELOPE_SPAN_FACTOR,
            envelope_density_cutoff: DEFAULT_ENVELOPE_DENSITY_CUTOFF,
            profile_sharing: true,
            profile_density_cutoff: DEFAULT_PROFILE_DENSITY_CUTOFF,
        }
    }
}

impl PlannerConfig {
    /// Containment-only sharing — no synthesized envelope units.
    pub fn containment_only() -> Self {
        Self { envelopes: false, ..Self::default() }
    }

    /// Envelope sharing with an explicit cost-guard factor, clamped to
    /// `≥ 1`. At exactly 1 only containment can merge, so the planner
    /// behaves like [`PlannerConfig::containment_only`]; non-finite input
    /// (NaN, ±∞) clamps to 1 too — the conservative end, never surprise
    /// merging from a degenerate computed ratio.
    pub fn with_span_factor(factor: f64) -> Self {
        let factor = if factor.is_finite() { factor.max(1.0) } else { 1.0 };
        Self { envelope_span_factor: factor, ..Self::default() }
    }

    /// Disables same-source profile sharing (every unit runs its own
    /// forward polarity pass — the PR 4 behaviour).
    pub fn without_profile_sharing(mut self) -> Self {
        self.profile_sharing = false;
        self
    }

    /// Sets the dense-graph cutoff for envelope synthesis. The observed
    /// ratio lies in `[0, 1]`, so a cutoff `≥ 1` keeps envelopes on
    /// regardless of density; non-finite or negative input clamps to 0
    /// (every observation counts as dense — the conservative end).
    pub fn with_density_cutoff(mut self, cutoff: f64) -> Self {
        self.envelope_density_cutoff = if cutoff.is_finite() { cutoff.max(0.0) } else { 0.0 };
        self
    }

    /// Sets the dense-graph cutoff for profile sharing, with the same
    /// clamping rules as [`PlannerConfig::with_density_cutoff`].
    pub fn with_profile_density_cutoff(mut self, cutoff: f64) -> Self {
        self.profile_density_cutoff = if cutoff.is_finite() { cutoff.max(0.0) } else { 0.0 };
        self
    }
}

/// One executable unit of a [`BatchPlan`]: a canonical query, the original
/// batch positions it answers directly, and the narrower queries answered
/// from its result.
#[derive(Clone, Debug)]
pub struct PlanUnit {
    /// The canonical query the executor runs against the full graph. For a
    /// synthesized envelope unit this query was never asked by the batch.
    pub query: QuerySpec,
    /// Positions in the original batch answered by this unit's result
    /// verbatim (the unit's own query plus exact duplicates). Empty iff the
    /// unit is a synthesized envelope.
    pub direct: Vec<usize>,
    /// Distinct narrower queries answered by re-running the pipeline on
    /// this unit's tspG.
    pub followers: Vec<Follower>,
}

impl PlanUnit {
    /// Returns `true` if this unit's query was synthesized by envelope
    /// planning rather than asked by the batch.
    pub fn is_envelope(&self) -> bool {
        self.direct.is_empty()
    }

    /// The smallest original batch position this unit answers (through its
    /// direct slots or its followers) — the deterministic ordering key.
    fn first_index(&self) -> usize {
        self.direct
            .first()
            .copied()
            .into_iter()
            .chain(self.followers.iter().map(|f| f.indexes[0]))
            .min()
            .expect("a unit answers at least one query")
    }
}

/// A distinct query whose window is contained in its unit's window.
#[derive(Clone, Debug)]
pub struct Follower {
    /// The narrower canonical query.
    pub query: QuerySpec,
    /// Positions in the original batch answered by this follower's result
    /// (the follower plus its exact duplicates).
    pub indexes: Vec<usize>,
}

/// A set of plan units sharing one source: the executor computes one
/// target-agnostic arrival profile
/// ([`crate::polarity::ArrivalProfile`]) over the group's hull window and
/// every member unit clamps it at its own `(begin, end)` instead of
/// running a forward pass.
///
/// Exactness: the profile stores earliest arrival as a step function of
/// the start bound, so the clamp reproduces a fresh forward pass for
/// *every* member window inside the hull — begins no longer need to match
/// (the PR 5 restriction). The shared pass does not avoid any member's
/// target, so each member runs the exact pipeline on the candidate
/// subgraph the clamped frontier defines (`tspG ⊆ G_q ⊆ H ⊆ G` — the
/// Definition-2 rerun argument), producing the byte-identical tspG.
#[derive(Clone, Debug)]
pub struct ProfileGroup {
    /// The shared source vertex.
    pub source: VertexId,
    /// Hull window `[min member begin, max member end]` the profile's
    /// forward pass runs over.
    pub window: TimeInterval,
    /// Indices into [`BatchPlan::units`] of the member units (≥ 2).
    pub units: Vec<usize>,
}

/// The execution plan of one batch: units to run, and counters describing
/// how much work planning saved.
#[derive(Clone, Debug, Default)]
pub struct BatchPlan {
    units: Vec<PlanUnit>,
    planned_queries: usize,
    dedup_answered: usize,
    shared_answered: usize,
    envelope_answered: usize,
    envelope_units: usize,
    profile_groups: Vec<ProfileGroup>,
    /// `unit_group[i]` is the profile group unit `i` belongs to, if any.
    unit_group: Vec<Option<usize>>,
    profile_answered: usize,
}

impl BatchPlan {
    /// The executable units, ordered by their first appearance in the batch.
    pub fn units(&self) -> &[PlanUnit] {
        &self.units
    }

    /// Number of full-graph pipeline executions the plan requires
    /// (including synthesized envelope units).
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Number of queries handed to the planner.
    pub fn planned_queries(&self) -> usize {
        self.planned_queries
    }

    /// Queries answered by copying another identical query's result
    /// (duplicates beyond the first occurrence, including duplicate
    /// followers).
    pub fn dedup_answered(&self) -> usize {
        self.dedup_answered
    }

    /// Queries answered from a *batch-asked* covering unit's tspG instead
    /// of the full graph (counting duplicates of followers once each).
    pub fn shared_answered(&self) -> usize {
        self.shared_answered
    }

    /// Queries answered from a synthesized envelope unit's tspG (counting
    /// duplicates once each).
    pub fn envelope_answered(&self) -> usize {
        self.envelope_answered
    }

    /// Number of synthesized envelope units in the plan (full-graph runs
    /// that answer no batch query directly).
    pub fn envelope_units(&self) -> usize {
        self.envelope_units
    }

    /// The same-source profile groups of the plan (each with ≥ 2 member
    /// units), in deterministic first-appearance order.
    pub fn profile_groups(&self) -> &[ProfileGroup] {
        &self.profile_groups
    }

    /// The profile group the unit at `index` belongs to, if any.
    pub fn unit_profile_group(&self, index: usize) -> Option<&ProfileGroup> {
        self.unit_profile_group_index(index).map(|g| &self.profile_groups[g])
    }

    /// Index into [`BatchPlan::profile_groups`] of the unit's group, if
    /// any (the executor keys its published profiles by this).
    pub fn unit_profile_group_index(&self, index: usize) -> Option<usize> {
        self.unit_group.get(index).copied().flatten()
    }

    /// Batch queries answered by (or from the tspG of) a unit that shares
    /// an arrival profile — an overlay counter (such queries are also
    /// counted by the regular buckets).
    pub fn profile_answered(&self) -> usize {
        self.profile_answered
    }
}

/// One distinct query being grouped: its slot in the planner's `distinct`
/// list plus the batch positions it answers.
struct Member {
    query: QuerySpec,
    indexes: Vec<usize>,
}

/// Builds the execution plan for `pending`: pairs of (original batch
/// position, canonical query). Degenerate queries and cache hits must
/// already have been filtered out by the caller.
///
/// `observed_density` is the engine's running average `tspG vertices /
/// graph vertices` ratio (`None` before the first full-graph run); when it
/// exceeds [`PlannerConfig::envelope_density_cutoff`] envelope synthesis is
/// disabled for this batch — the dense-graph heuristic — while containment
/// sharing, dedup and profile grouping stay on (they never add pipeline
/// runs).
///
/// `observed_profile_density` is the analogous running average for shared
/// runs: `clamp superset H vertices / graph vertices` (`None` before the
/// first shared run); above
/// [`PlannerConfig::profile_density_cutoff`] profile grouping is disabled
/// for this batch — on dense graphs the clamped candidate subgraph is
/// nearly the whole graph, making the shared pass pure overhead.
pub fn plan(
    pending: &[(usize, QuerySpec)],
    config: &PlannerConfig,
    observed_density: Option<f64>,
    observed_profile_density: Option<f64>,
) -> BatchPlan {
    // 1. Dedup: canonical query -> every batch position asking it. The
    //    distinct list preserves first-appearance order so that planning is
    //    deterministic regardless of hash iteration order.
    let mut by_query: HashMap<QuerySpec, usize> = HashMap::with_capacity(pending.len());
    let mut distinct: Vec<Member> = Vec::new();
    for &(index, query) in pending {
        match by_query.get(&query) {
            Some(&slot) => distinct[slot].indexes.push(index),
            None => {
                by_query.insert(query, distinct.len());
                distinct.push(Member { query, indexes: vec![index] });
            }
        }
    }
    let dedup_answered = pending.len() - distinct.len();

    // 2. Group distinct queries by endpoint pair.
    let mut groups: HashMap<(VertexId, VertexId), Vec<usize>> = HashMap::new();
    for (slot, member) in distinct.iter().enumerate() {
        groups.entry((member.query.source, member.query.target)).or_default().push(slot);
    }

    // 3. Per-group window sweep. Sorting windows by (begin asc, end desc)
    //    means every earlier entry starts no later than the current one,
    //    which makes both containment ("is the current window inside the
    //    max-end unit seen so far?") and contiguity ("does the current
    //    window extend the running envelope?") single-pass checks.
    //
    //    Containment-only mode is the factor-1 special case of the same
    //    sweep: with begins ascending, a factor-1 hull may never exceed
    //    the widest member's span, which forces hull == cluster head —
    //    pure containment attachment, never a synthesized window.
    let dense = observed_density.is_some_and(|ratio| ratio > config.envelope_density_cutoff);
    let factor =
        if config.envelopes && !dense { config.envelope_span_factor.max(1.0) } else { 1.0 };
    let mut plan =
        BatchPlan { planned_queries: pending.len(), dedup_answered, ..Default::default() };
    for slots in groups.values() {
        let mut ordered: Vec<usize> = slots.clone();
        ordered.sort_by_key(|&slot| {
            let w = distinct[slot].query.window;
            (w.begin(), std::cmp::Reverse(w.end()))
        });
        sweep(&distinct, &ordered, factor, &mut plan);
    }

    // 4. Deterministic unit order: first batch appearance.
    plan.units.sort_by_key(PlanUnit::first_index);

    // 5. Profile grouping: units sharing a source — the arrival-profile
    //    pass over the hull `[min begin, max end]` clamps exactly at every
    //    member window. The span factor guards the hull like it guards
    //    envelopes: a unit joins only while the hull's span stays within
    //    `factor ×` *every* member's own span, so a narrow window never
    //    pays for a profile computed over a vastly wider one. (The profile
    //    guard always uses the configured factor — hull width is a
    //    per-member scan-cost concern — but the *profile* density signal
    //    gates grouping entirely on dense graphs, where the clamped
    //    candidate subgraph approaches the whole graph.)
    let profile_dense =
        observed_profile_density.is_some_and(|ratio| ratio > config.profile_density_cutoff);
    if config.profile_sharing && !profile_dense {
        group_profiles(config.envelope_span_factor.max(1.0), &mut plan);
    }
    plan
}

/// Step 5 of [`plan`]: partition the (sorted) units into same-source
/// profile groups. Units bucket by source in first-appearance order;
/// within a bucket, units ordered by descending window end greedily join
/// the running hull while `hull span ≤ factor × min member span`
/// (checking against the narrowest member keeps the guard invariant for
/// units that joined before the hull widened towards earlier begins),
/// else a new hull starts. Clusters of one unit share nothing and are
/// left ungrouped.
fn group_profiles(factor: f64, plan: &mut BatchPlan) {
    let mut by_source: HashMap<VertexId, usize> = HashMap::new();
    let mut buckets: Vec<Vec<usize>> = Vec::new();
    for (index, unit) in plan.units.iter().enumerate() {
        let slot = *by_source.entry(unit.query.source).or_insert_with(|| {
            buckets.push(Vec::new());
            buckets.len() - 1
        });
        buckets[slot].push(index);
    }
    plan.unit_group = vec![None; plan.units.len()];
    for mut bucket in buckets {
        if bucket.len() < 2 {
            continue;
        }
        // Descending end; ties keep unit order for determinism.
        bucket
            .sort_by_key(|&index| (std::cmp::Reverse(plan.units[index].query.window.end()), index));
        let mut cluster: Vec<usize> = Vec::new();
        let mut hull = plan.units[bucket[0]].query.window;
        let mut min_span = i64::MAX;
        for &index in &bucket {
            let window = plan.units[index].query.window;
            let grown = hull.hull(&window);
            let narrowest = min_span.min(window.span());
            if grown.span() as f64 <= factor * narrowest as f64 {
                cluster.push(index);
                hull = grown;
                min_span = narrowest;
            } else {
                flush_profile_cluster(&mut cluster, hull, plan);
                hull = window;
                min_span = window.span();
                cluster.push(index);
            }
        }
        flush_profile_cluster(&mut cluster, hull, plan);
    }
}

/// Publishes one profile cluster as a [`ProfileGroup`] if it has at
/// least two members, and clears it either way.
fn flush_profile_cluster(cluster: &mut Vec<usize>, hull: TimeInterval, plan: &mut BatchPlan) {
    if cluster.len() >= 2 {
        let group = plan.profile_groups.len();
        let source = plan.units[cluster[0]].query.source;
        for &index in cluster.iter() {
            plan.unit_group[index] = Some(group);
            let unit = &plan.units[index];
            plan.profile_answered +=
                unit.direct.len() + unit.followers.iter().map(|f| f.indexes.len()).sum::<usize>();
        }
        debug_assert!(cluster.iter().all(|&i| hull.contains_interval(&plan.units[i].query.window)));
        plan.profile_groups.push(ProfileGroup {
            source,
            window: hull,
            units: std::mem::take(cluster),
        });
    } else {
        cluster.clear();
    }
}

/// The per-group sweep: greedily grow a cluster of windows whose union is
/// a single interval, flushing whenever the next window would break
/// contiguity or blow the cost guard.
///
/// Containment is subsumed: a window inside the running envelope never
/// grows it, so it always joins the cluster, and a cluster whose envelope
/// equals its first member's window flushes as a plain covering unit (the
/// PR 3 shape) rather than a synthesized one. At `factor == 1.0` that is
/// the *only* possible shape — growing the hull past the first member is
/// never allowed — so the factor-1 sweep reproduces PR 3's
/// containment-only planning exactly (the tests pin this equivalence).
fn sweep(distinct: &[Member], ordered: &[usize], factor: f64, plan: &mut BatchPlan) {
    // The open cluster: member slots, envelope so far, widest member span.
    let mut cluster: Vec<usize> = Vec::new();
    let mut envelope: Option<TimeInterval> = None;
    let mut widest_span: i64 = 0;
    for &slot in ordered {
        let window = distinct[slot].query.window;
        let merged = match envelope {
            Some(env) if env.union_is_interval(&window) => {
                let hull = env.hull(&window);
                let widest = widest_span.max(window.span());
                if hull == env {
                    // Contained in the running envelope: always joins.
                    Some((env, widest))
                } else {
                    // Growing the hull is an envelope merge proper: allowed
                    // only when the merged span stays within `factor ×` the
                    // widest window absorbed so far (including this one).
                    // The explicit `factor > 1` check keeps factor-1 mode
                    // containment-only even when saturated spans (both
                    // `i64::MAX`) would make the arithmetic guard pass.
                    (factor > 1.0 && hull.span() as f64 <= factor * widest as f64)
                        .then_some((hull, widest))
                }
            }
            _ => None,
        };
        match merged {
            Some((hull, widest)) => {
                envelope = Some(hull);
                widest_span = widest;
                cluster.push(slot);
            }
            None => {
                if let Some(env) = envelope {
                    flush_cluster(distinct, &cluster, env, plan);
                }
                cluster.clear();
                cluster.push(slot);
                envelope = Some(window);
                widest_span = window.span();
            }
        }
    }
    if let Some(env) = envelope {
        flush_cluster(distinct, &cluster, env, plan);
    }
}

/// Turns one flushed cluster into a plan unit.
///
/// * One member → a plain unit (nothing to share).
/// * Envelope equals the first member's window (only the first member can:
///   the sort order gives it the minimum begin and, among equal begins, the
///   maximum end) → that member covers the rest; the PR 3 containment
///   shape, counted as `shared_answered`.
/// * Otherwise → a synthesized envelope unit: every member is a follower,
///   counted as `envelope_answered`.
fn flush_cluster(
    distinct: &[Member],
    cluster: &[usize],
    envelope: TimeInterval,
    plan: &mut BatchPlan,
) {
    let first = &distinct[cluster[0]];
    if cluster.len() == 1 {
        plan.units.push(PlanUnit {
            query: first.query,
            direct: first.indexes.clone(),
            followers: Vec::new(),
        });
        return;
    }
    let followers = |slots: &[usize]| -> Vec<Follower> {
        slots
            .iter()
            .map(|&slot| Follower {
                query: distinct[slot].query,
                indexes: distinct[slot].indexes.clone(),
            })
            .collect()
    };
    if first.query.window == envelope {
        plan.units.push(PlanUnit {
            query: first.query,
            direct: first.indexes.clone(),
            followers: followers(&cluster[1..]),
        });
        plan.shared_answered += cluster.len() - 1;
    } else {
        let query = QuerySpec::new(first.query.source, first.query.target, envelope);
        debug_assert!(cluster.iter().all(|&slot| query.covers(&distinct[slot].query)));
        plan.units.push(PlanUnit { query, direct: Vec::new(), followers: followers(cluster) });
        plan.envelope_answered += cluster.len();
        plan.envelope_units += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: u32, t: u32, b: i64, e: i64) -> QuerySpec {
        QuerySpec::new(s, t, TimeInterval::new(b, e))
    }

    fn indexed(queries: &[QuerySpec]) -> Vec<(usize, QuerySpec)> {
        queries.iter().copied().enumerate().collect()
    }

    fn plan_default(queries: &[QuerySpec]) -> BatchPlan {
        plan(&indexed(queries), &PlannerConfig::default(), None, None)
    }

    fn plan_containment(queries: &[QuerySpec]) -> BatchPlan {
        plan(&indexed(queries), &PlannerConfig::containment_only(), None, None)
    }

    /// Every batch position must be answered by exactly one plan entry.
    fn assert_covers_batch(plan: &BatchPlan, len: usize) {
        let mut seen = vec![0usize; len];
        for unit in plan.units() {
            for &i in &unit.direct {
                seen[i] += 1;
            }
            for f in &unit.followers {
                assert!(unit.query.covers(&f.query), "{:?} must cover {:?}", unit.query, f.query);
                for &i in &f.indexes {
                    seen[i] += 1;
                }
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each query answered exactly once: {seen:?}");
    }

    #[test]
    fn exact_duplicates_collapse_to_one_unit() {
        let plan = plan_default(&[q(0, 7, 2, 7), q(1, 5, 1, 4), q(0, 7, 2, 7), q(0, 7, 2, 7)]);
        assert_eq!(plan.num_units(), 2);
        assert_eq!(plan.dedup_answered(), 2);
        assert_eq!(plan.shared_answered(), 0);
        let unit = &plan.units()[0];
        assert_eq!(unit.query, q(0, 7, 2, 7));
        assert_eq!(unit.direct, vec![0, 2, 3]);
        assert_eq!(plan.units()[1].direct, vec![1]);
    }

    #[test]
    fn contained_windows_attach_to_the_covering_unit() {
        for plan in [
            plan_default(&[q(0, 7, 0, 10), q(0, 7, 2, 7), q(0, 7, 3, 5)]),
            plan_containment(&[q(0, 7, 0, 10), q(0, 7, 2, 7), q(0, 7, 3, 5)]),
        ] {
            assert_eq!(plan.num_units(), 1, "both narrower windows share the wide unit");
            assert_eq!(plan.shared_answered(), 2);
            assert_eq!(plan.envelope_units(), 0, "containment must not synthesize");
            let unit = &plan.units()[0];
            assert_eq!(unit.query, q(0, 7, 0, 10));
            assert!(!unit.is_envelope());
            assert_eq!(unit.followers.len(), 2);
            assert_covers_batch(&plan, 3);
        }
    }

    #[test]
    fn containment_chains_attach_to_the_widest_window() {
        // A ⊇ B ⊇ C: both B and C become followers of A, not of each other.
        let plan = plan_default(&[q(1, 2, 3, 4), q(1, 2, 1, 8), q(1, 2, 2, 6)]);
        assert_eq!(plan.num_units(), 1);
        assert_eq!(plan.units()[0].query, q(1, 2, 1, 8));
        assert_eq!(plan.units()[0].followers.len(), 2);
        assert_eq!(plan.units()[0].direct, vec![1]);
        assert_eq!(plan.envelope_units(), 0);
    }

    #[test]
    fn overlap_without_containment_stays_separate_in_containment_mode() {
        let plan = plan_containment(&[q(0, 1, 0, 5), q(0, 1, 3, 8)]);
        assert_eq!(plan.num_units(), 2);
        assert_eq!(plan.shared_answered(), 0);
        assert_eq!(plan.envelope_answered(), 0);
    }

    #[test]
    fn overlapping_windows_collapse_into_a_synthesized_envelope() {
        let plan = plan_default(&[q(0, 1, 0, 5), q(0, 1, 3, 8)]);
        assert_eq!(plan.num_units(), 1);
        assert_eq!(plan.envelope_units(), 1);
        assert_eq!(plan.envelope_answered(), 2);
        assert_eq!(plan.shared_answered(), 0);
        let unit = &plan.units()[0];
        assert!(unit.is_envelope());
        assert_eq!(unit.query, q(0, 1, 0, 8), "envelope is [min begin, max end]");
        assert!(unit.direct.is_empty());
        assert_eq!(unit.followers.len(), 2);
        assert_covers_batch(&plan, 2);
    }

    #[test]
    fn adversarial_overlap_chain_respects_the_cost_guard() {
        // [0,5], [3,8], [6,12]: the full envelope [0,12] spans 13 ≤ 2×7, so
        // the default guard (k = 2) merges the whole chain into one
        // synthesized unit.
        let queries = [q(0, 1, 0, 5), q(0, 1, 3, 8), q(0, 1, 6, 12)];
        let merged = plan_default(&queries);
        assert_eq!(merged.num_units(), 1);
        assert_eq!(merged.envelope_units(), 1);
        assert_eq!(merged.envelope_answered(), 3);
        assert_eq!(merged.units()[0].query, q(0, 1, 0, 12));
        assert_covers_batch(&merged, 3);

        // A tighter guard splits the chain: [0,8] (span 9 ≤ 1.5×6) absorbs
        // the first two, but growing to [0,12] (span 13 > 1.5×7) is vetoed,
        // so [6,12] stays its own plain unit.
        let tight = plan(&indexed(&queries), &PlannerConfig::with_span_factor(1.5), None, None);
        assert_eq!(tight.num_units(), 2);
        assert_eq!(tight.envelope_units(), 1);
        assert_eq!(tight.envelope_answered(), 2);
        assert_eq!(tight.units()[0].query, q(0, 1, 0, 8));
        assert_eq!(tight.units()[1].query, q(0, 1, 6, 12));
        assert!(!tight.units()[1].is_envelope());
        assert_covers_batch(&tight, 3);
    }

    #[test]
    fn span_factor_one_degenerates_to_containment_only() {
        let queries = [q(0, 1, 0, 5), q(0, 1, 3, 8), q(0, 1, 1, 4)];
        let strict = plan(&indexed(&queries), &PlannerConfig::with_span_factor(1.0), None, None);
        let containment = plan_containment(&queries);
        assert_eq!(strict.num_units(), containment.num_units());
        assert_eq!(strict.envelope_units(), 0);
        assert_eq!(strict.shared_answered(), containment.shared_answered());
    }

    #[test]
    fn degenerate_span_factors_clamp_to_the_conservative_end() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -3.0] {
            assert_eq!(PlannerConfig::with_span_factor(bad).envelope_span_factor, 1.0, "{bad}");
        }
        assert_eq!(PlannerConfig::with_span_factor(2.5).envelope_span_factor, 2.5);
    }

    #[test]
    fn mixed_nested_overlapping_and_disjoint_groups() {
        let queries = [
            q(0, 1, 0, 10),  // covers the next one
            q(0, 1, 2, 5),   // nested -> follower of [0,10]
            q(0, 1, 8, 15),  // overlaps [0,10] -> envelope [0,15] (span 16 ≤ 2×11)
            q(0, 1, 40, 45), // disjoint -> own unit
            q(2, 3, 0, 10),  // different endpoints -> own unit
        ];
        let plan = plan_default(&queries);
        assert_eq!(plan.num_units(), 3);
        assert_eq!(plan.envelope_units(), 1);
        assert_eq!(plan.envelope_answered(), 3);
        assert_eq!(plan.shared_answered(), 0, "the nested window rides the envelope too");
        let envelope = &plan.units()[0];
        assert_eq!(envelope.query, q(0, 1, 0, 15));
        assert!(envelope.is_envelope());
        assert_eq!(envelope.followers.len(), 3);
        assert_covers_batch(&plan, 5);
    }

    #[test]
    fn adjacent_windows_merge_into_an_envelope() {
        // [0,5] and [6,12] are disjoint but adjacent: their union covers
        // every timestamp of [0,12], so they are mergeable (guard: span 13
        // ≤ 2 × 7).
        let plan = plan_default(&[q(0, 1, 0, 5), q(0, 1, 6, 12)]);
        assert_eq!(plan.num_units(), 1);
        assert_eq!(plan.units()[0].query, q(0, 1, 0, 12));
        assert_eq!(plan.envelope_answered(), 2);
    }

    #[test]
    fn gapped_windows_never_merge() {
        let plan = plan_default(&[q(0, 1, 0, 5), q(0, 1, 7, 12)]);
        assert_eq!(plan.num_units(), 2);
        assert_eq!(plan.envelope_units(), 0);
    }

    #[test]
    fn different_endpoints_never_share() {
        let plan = plan_default(&[q(0, 1, 0, 10), q(1, 0, 2, 7), q(0, 2, 2, 7)]);
        assert_eq!(plan.num_units(), 3);
        assert_eq!(plan.shared_answered(), 0);
        assert_eq!(plan.envelope_answered(), 0);
    }

    #[test]
    fn duplicate_followers_count_once_as_shared() {
        let plan = plan_default(&[q(0, 1, 0, 10), q(0, 1, 2, 5), q(0, 1, 2, 5)]);
        assert_eq!(plan.num_units(), 1);
        assert_eq!(plan.dedup_answered(), 1);
        assert_eq!(plan.shared_answered(), 1);
        assert_eq!(plan.units()[0].followers[0].indexes, vec![1, 2]);
    }

    #[test]
    fn duplicate_envelope_members_count_once_as_envelope_answered() {
        let plan = plan_default(&[q(0, 1, 0, 5), q(0, 1, 3, 8), q(0, 1, 3, 8)]);
        assert_eq!(plan.num_units(), 1);
        assert_eq!(plan.dedup_answered(), 1);
        assert_eq!(plan.envelope_answered(), 2);
        assert_covers_batch(&plan, 3);
    }

    #[test]
    fn equal_begin_prefers_the_wider_window_as_unit() {
        let plan = plan_default(&[q(0, 1, 2, 5), q(0, 1, 2, 9)]);
        assert_eq!(plan.num_units(), 1);
        assert_eq!(plan.units()[0].query, q(0, 1, 2, 9));
        assert!(!plan.units()[0].is_envelope(), "[2,9] covers [2,5]: no synthesis needed");
        assert_eq!(plan.units()[0].followers[0].query, q(0, 1, 2, 5));
    }

    #[test]
    fn unit_order_follows_first_batch_appearance() {
        let plan = plan_default(&[q(5, 6, 1, 2), q(3, 4, 1, 2), q(1, 2, 1, 2)]);
        let firsts: Vec<usize> = plan.units().iter().map(|u| u.direct[0]).collect();
        assert_eq!(firsts, vec![0, 1, 2]);
        // Envelope units order by their earliest follower.
        let plan = plan_default(&[q(5, 6, 1, 9), q(3, 4, 1, 2), q(5, 6, 4, 12)]);
        assert_eq!(plan.num_units(), 2);
        assert!(plan.units()[0].is_envelope());
        assert_eq!(plan.units()[0].followers[0].indexes, vec![0]);
        assert_eq!(plan.units()[1].direct, vec![1]);
    }

    #[test]
    fn extreme_windows_do_not_overflow_the_cost_guard() {
        // Spans saturate; the guard arithmetic must stay finite and the
        // sweep must not panic.
        let queries =
            [q(0, 1, i64::MIN, 0), q(0, 1, -5, i64::MAX), q(0, 1, i64::MAX - 1, i64::MAX)];
        let plan = plan_default(&queries);
        assert_covers_batch(&plan, 3);
        assert!(plan.num_units() >= 1);
        // Saturated spans satisfy `hull.span <= 1 x widest` even when the
        // hull grew, so containment-only mode must refuse the hull-growing
        // merge structurally, never synthesizing an envelope: [MIN, 0] and
        // [-5, MAX] stay separate units, while [MAX-1, MAX] is genuinely
        // contained in [-5, MAX] and attaches as a plain follower.
        let containment = plan_containment(&queries);
        assert_eq!(containment.envelope_units(), 0);
        assert_eq!(containment.envelope_answered(), 0);
        assert_eq!(containment.num_units(), 2);
        assert_eq!(containment.shared_answered(), 1);
        assert_covers_batch(&containment, 3);
    }

    #[test]
    fn empty_input_yields_an_empty_plan() {
        let plan = plan_default(&[]);
        assert_eq!(plan.num_units(), 0);
        assert_eq!(plan.planned_queries(), 0);
        assert_eq!(plan.dedup_answered(), 0);
        assert_eq!(plan.envelope_units(), 0);
        assert!(plan.profile_groups().is_empty());
        assert_eq!(plan.profile_answered(), 0);
    }

    #[test]
    fn same_source_same_begin_units_form_a_profile_group() {
        // Three targets fanned out from source 0, same window: one group.
        let queries = [q(0, 1, 2, 7), q(0, 2, 2, 7), q(0, 3, 2, 7), q(5, 6, 2, 7)];
        let plan = plan_default(&queries);
        assert_eq!(plan.num_units(), 4);
        assert_eq!(plan.profile_groups().len(), 1);
        let group = &plan.profile_groups()[0];
        assert_eq!(group.source, 0);
        assert_eq!(group.window, TimeInterval::new(2, 7));
        assert_eq!(group.units.len(), 3);
        assert_eq!(plan.profile_answered(), 3);
        for &index in &group.units {
            assert_eq!(plan.unit_profile_group_index(index), Some(0));
            assert!(std::ptr::eq(plan.unit_profile_group(index).unwrap(), group));
        }
        // The (5, 6) unit is ungrouped (a single-unit bucket shares nothing).
        let lone = (0..plan.num_units())
            .find(|&i| plan.units()[i].query.source == 5)
            .expect("unit exists");
        assert_eq!(plan.unit_profile_group_index(lone), None);
    }

    #[test]
    fn profile_hulls_absorb_same_begin_ends_within_the_span_factor() {
        // Same source and begin, ends 9 / 7 / 5: hull [2, 9] (span 8) holds
        // [2, 7] (span 6, 8 <= 2x6) and [2, 5] (span 4, 8 <= 2x4).
        let queries = [q(0, 1, 2, 9), q(0, 2, 2, 7), q(0, 3, 2, 5)];
        let plan = plan_default(&queries);
        assert_eq!(plan.profile_groups().len(), 1);
        assert_eq!(plan.profile_groups()[0].window, TimeInterval::new(2, 9));
        assert_eq!(plan.profile_groups()[0].units.len(), 3);

        // A far narrower member is guarded out: [2, 2] (span 1) would need
        // the hull span 8 <= 2x1 — it stays ungrouped.
        let queries = [q(0, 1, 2, 9), q(0, 2, 2, 7), q(0, 3, 2, 2)];
        let plan = plan_default(&queries);
        assert_eq!(plan.profile_groups().len(), 1);
        assert_eq!(plan.profile_groups()[0].units.len(), 2);
        assert_eq!(plan.profile_answered(), 2);
    }

    #[test]
    fn guarded_out_units_cascade_into_their_own_group() {
        // Ends 9, 8 cluster under hull [0, 9]; ends 2, 1 fail its guard but
        // form their own hull [0, 2].
        let queries = [q(0, 1, 0, 9), q(0, 2, 0, 8), q(0, 3, 0, 2), q(0, 4, 0, 1)];
        let plan = plan_default(&queries);
        assert_eq!(plan.profile_groups().len(), 2);
        assert_eq!(plan.profile_groups()[0].window, TimeInterval::new(0, 9));
        assert_eq!(plan.profile_groups()[1].window, TimeInterval::new(0, 2));
        assert_eq!(plan.profile_answered(), 4);
    }

    #[test]
    fn mixed_begins_share_a_profile_group_but_sources_never_do() {
        // Begins 2 and 3 hull to [2, 7] (span 6 ≤ 2 × 5) — the cross-begin
        // sharing PR 5 could not do. The source-1 unit stays alone.
        let plan = plan_default(&[q(0, 1, 2, 7), q(0, 2, 3, 7), q(1, 2, 2, 7)]);
        assert_eq!(plan.profile_groups().len(), 1);
        let group = &plan.profile_groups()[0];
        assert_eq!(group.source, 0);
        assert_eq!(group.window, TimeInterval::new(2, 7));
        assert_eq!(group.units.len(), 2);
        assert_eq!(plan.profile_answered(), 2);
    }

    #[test]
    fn cross_begin_hulls_respect_every_members_span_guard() {
        // [2, 9] (span 8) and [5, 7] (span 3): the hull [2, 9] would charge
        // the narrow window 8 > 2 × 3 — guarded out, no group.
        let plan = plan_default(&[q(0, 1, 2, 9), q(0, 2, 5, 7)]);
        assert!(plan.profile_groups().is_empty());
        // Widening must never betray a member already admitted: [5, 8]
        // (span 4) absorbs [2, 8] (hull span 7 ≤ 2 × 4), but [5, 7]
        // (span 3) is then checked against that *widened* hull — 7 > 2 × 3
        // — and stays out, even though it fit the original [5, 8].
        let plan = plan_default(&[q(0, 1, 5, 8), q(0, 2, 2, 8), q(0, 3, 5, 7)]);
        assert_eq!(plan.profile_groups().len(), 1, "{:?}", plan.profile_groups());
        assert_eq!(plan.profile_groups()[0].window, TimeInterval::new(2, 8));
        assert_eq!(plan.profile_groups()[0].units.len(), 2);
    }

    #[test]
    fn profile_sharing_can_be_disabled() {
        let queries = [q(0, 1, 2, 7), q(0, 2, 2, 7)];
        let plan = super::plan(
            &indexed(&queries),
            &PlannerConfig::default().without_profile_sharing(),
            None,
            None,
        );
        assert!(plan.profile_groups().is_empty());
        assert_eq!(plan.num_units(), 2, "unit planning is unchanged");
    }

    #[test]
    fn profile_groups_span_envelope_and_containment_units() {
        // Same source 0, same begin: an envelope unit ([1,5] ∪ [3,8] → [1,8]
        // ... begins differ there, so use same-begin shapes) — here a
        // covering unit with a follower plus a plain unit on another target.
        let queries = [q(0, 1, 2, 9), q(0, 1, 3, 5), q(0, 2, 2, 8)];
        let plan = plan_default(&queries);
        assert_eq!(plan.num_units(), 2);
        assert_eq!(plan.profile_groups().len(), 1);
        // profile_answered counts the covering unit's direct slot, its
        // follower, and the other unit's direct slot.
        assert_eq!(plan.profile_answered(), 3);
    }

    #[test]
    fn dense_observations_disable_envelope_synthesis() {
        let queries = [q(0, 1, 0, 5), q(0, 1, 3, 8)];
        let config = PlannerConfig::default();
        // Below the cutoff (or no observation): the overlap still merges.
        for observed in [None, Some(0.5), Some(DEFAULT_ENVELOPE_DENSITY_CUTOFF)] {
            let plan = super::plan(&indexed(&queries), &config, observed, None);
            assert_eq!(plan.envelope_units(), 1, "observed={observed:?}");
        }
        // Above the cutoff: containment-only behaviour for this batch.
        let plan = super::plan(&indexed(&queries), &config, Some(0.9), None);
        assert_eq!(plan.envelope_units(), 0);
        assert_eq!(plan.num_units(), 2);
        // A cutoff >= 1 can never trip (the ratio is bounded by 1).
        let relaxed = config.with_density_cutoff(1.0);
        let plan = super::plan(&indexed(&queries), &relaxed, Some(1.0), None);
        assert_eq!(plan.envelope_units(), 1);
        // Degenerate cutoffs clamp to the conservative end (always dense).
        for bad in [f64::NAN, f64::NEG_INFINITY, -2.0] {
            assert_eq!(config.with_density_cutoff(bad).envelope_density_cutoff, 0.0, "{bad}");
        }
        let plan =
            super::plan(&indexed(&queries), &config.with_density_cutoff(0.0), Some(0.01), None);
        assert_eq!(plan.envelope_units(), 0);
    }

    #[test]
    fn dense_profile_observations_disable_grouping() {
        let queries = [q(0, 1, 2, 7), q(0, 2, 3, 7)];
        let config = PlannerConfig::default();
        // Below the cutoff (or no observation): the fan-out still groups.
        for observed in [None, Some(0.5), Some(DEFAULT_PROFILE_DENSITY_CUTOFF)] {
            let plan = super::plan(&indexed(&queries), &config, None, observed);
            assert_eq!(plan.profile_groups().len(), 1, "observed={observed:?}");
        }
        // Above the cutoff: grouping is pure overhead on dense graphs.
        let plan = super::plan(&indexed(&queries), &config, None, Some(0.9));
        assert!(plan.profile_groups().is_empty());
        assert_eq!(plan.num_units(), 2, "unit planning is unchanged");
        // The envelope density signal does not gate profile grouping.
        let plan = super::plan(&indexed(&queries), &config, Some(0.9), None);
        assert_eq!(plan.profile_groups().len(), 1);
        // Degenerate cutoffs clamp to the conservative end (always dense).
        for bad in [f64::NAN, f64::NEG_INFINITY, -2.0] {
            assert_eq!(config.with_profile_density_cutoff(bad).profile_density_cutoff, 0.0);
        }
        let strict = config.with_profile_density_cutoff(0.0);
        let plan = super::plan(&indexed(&queries), &strict, None, Some(0.01));
        assert!(plan.profile_groups().is_empty());
    }
}
