//! Batch planning: collapse duplicate queries and attach window-contained
//! queries to the unit whose result already covers them.
//!
//! The planner turns the flat query list of a batch into a [`BatchPlan`] of
//! executable [`PlanUnit`]s. Two reductions are applied, both purely
//! syntactic on the canonical query forms (no graph access):
//!
//! 1. **Dedup** — queries with identical canonical form share one unit; the
//!    unit's result is copied into every duplicate's result slot.
//! 2. **Window sharing** — a query whose window is *contained* in another
//!    query's window on the same `(s, t)` pair is attached to the covering
//!    unit as a [`Follower`]. Every temporal simple path of the narrower
//!    query lies within the covering window, hence inside the covering
//!    unit's tspG (Definition 2); the follower is therefore answered exactly
//!    by re-running the pipeline *on that tspG* — usually orders of
//!    magnitude smaller than the input graph — instead of on the full graph.
//!
//! The planner never changes answers, only who computes them: the executor
//! runs one full-graph pipeline per unit and one tspG-sized pipeline per
//! follower, and the assembly step fans results back out to the original
//! query order.

use crate::engine::QuerySpec;
use std::collections::HashMap;
use tspg_graph::VertexId;

/// One executable unit of a [`BatchPlan`]: a distinct canonical query, the
/// original batch positions it answers directly, and the contained-window
/// queries answered from its result.
#[derive(Clone, Debug)]
pub struct PlanUnit {
    /// The canonical query the executor runs against the full graph.
    pub query: QuerySpec,
    /// Positions in the original batch answered by this unit's result
    /// verbatim (the unit's own query plus exact duplicates).
    pub direct: Vec<usize>,
    /// Distinct narrower queries answered by re-running the pipeline on
    /// this unit's tspG.
    pub followers: Vec<Follower>,
}

/// A distinct query whose window is contained in its unit's window.
#[derive(Clone, Debug)]
pub struct Follower {
    /// The narrower canonical query.
    pub query: QuerySpec,
    /// Positions in the original batch answered by this follower's result
    /// (the follower plus its exact duplicates).
    pub indexes: Vec<usize>,
}

/// The execution plan of one batch: units to run, and counters describing
/// how much work planning saved.
#[derive(Clone, Debug, Default)]
pub struct BatchPlan {
    units: Vec<PlanUnit>,
    planned_queries: usize,
    dedup_answered: usize,
    shared_answered: usize,
}

impl BatchPlan {
    /// The executable units, ordered by their first appearance in the batch.
    pub fn units(&self) -> &[PlanUnit] {
        &self.units
    }

    /// Number of full-graph pipeline executions the plan requires.
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Number of queries handed to the planner.
    pub fn planned_queries(&self) -> usize {
        self.planned_queries
    }

    /// Queries answered by copying another identical query's result
    /// (duplicates beyond the first occurrence, including duplicate
    /// followers).
    pub fn dedup_answered(&self) -> usize {
        self.dedup_answered
    }

    /// Queries answered from a covering unit's tspG instead of the full
    /// graph (counting duplicates of followers once each).
    pub fn shared_answered(&self) -> usize {
        self.shared_answered
    }
}

/// Builds the execution plan for `pending`: pairs of (original batch
/// position, canonical query). Degenerate queries and cache hits must
/// already have been filtered out by the caller.
pub fn plan(pending: &[(usize, QuerySpec)]) -> BatchPlan {
    // 1. Dedup: canonical query -> every batch position asking it. The
    //    distinct list preserves first-appearance order so that planning is
    //    deterministic regardless of hash iteration order.
    let mut by_query: HashMap<QuerySpec, usize> = HashMap::with_capacity(pending.len());
    let mut distinct: Vec<(QuerySpec, Vec<usize>)> = Vec::new();
    for &(index, query) in pending {
        match by_query.get(&query) {
            Some(&slot) => distinct[slot].1.push(index),
            None => {
                by_query.insert(query, distinct.len());
                distinct.push((query, vec![index]));
            }
        }
    }
    let dedup_answered = pending.len() - distinct.len();

    // 2. Group distinct queries by endpoint pair.
    let mut groups: HashMap<(VertexId, VertexId), Vec<usize>> = HashMap::new();
    for (slot, (query, _)) in distinct.iter().enumerate() {
        groups.entry((query.source, query.target)).or_default().push(slot);
    }

    // 3. Containment sweep per group. Sorting windows by (begin asc, end
    //    desc) means every earlier entry starts no later than the current
    //    one, so the current window is contained in *some* earlier unit iff
    //    it is contained in the earlier unit with the maximum end.
    let mut units: Vec<PlanUnit> = Vec::new();
    let mut shared_answered = 0usize;
    for slots in groups.values() {
        let mut ordered: Vec<usize> = slots.clone();
        ordered.sort_by_key(|&slot| {
            let w = distinct[slot].0.window;
            (w.begin(), std::cmp::Reverse(w.end()))
        });
        // (end of the widest unit so far, its index in `units`)
        let mut widest: Option<(i64, usize)> = None;
        for slot in ordered {
            let (query, ref indexes) = distinct[slot];
            match widest {
                Some((max_end, unit)) if max_end >= query.window.end() => {
                    debug_assert!(units[unit].query.covers(&query));
                    units[unit].followers.push(Follower { query, indexes: indexes.clone() });
                    shared_answered += 1;
                }
                _ => {
                    units.push(PlanUnit { query, direct: indexes.clone(), followers: Vec::new() });
                    if widest.is_none_or(|(max_end, _)| query.window.end() > max_end) {
                        widest = Some((query.window.end(), units.len() - 1));
                    }
                }
            }
        }
    }

    // 4. Deterministic unit order: first batch appearance.
    units.sort_by_key(|u| u.direct[0]);

    BatchPlan { units, planned_queries: pending.len(), dedup_answered, shared_answered }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::TimeInterval;

    fn q(s: u32, t: u32, b: i64, e: i64) -> QuerySpec {
        QuerySpec::new(s, t, TimeInterval::new(b, e))
    }

    fn indexed(queries: &[QuerySpec]) -> Vec<(usize, QuerySpec)> {
        queries.iter().copied().enumerate().collect()
    }

    #[test]
    fn exact_duplicates_collapse_to_one_unit() {
        let plan = plan(&indexed(&[q(0, 7, 2, 7), q(1, 5, 1, 4), q(0, 7, 2, 7), q(0, 7, 2, 7)]));
        assert_eq!(plan.num_units(), 2);
        assert_eq!(plan.dedup_answered(), 2);
        assert_eq!(plan.shared_answered(), 0);
        let unit = &plan.units()[0];
        assert_eq!(unit.query, q(0, 7, 2, 7));
        assert_eq!(unit.direct, vec![0, 2, 3]);
        assert_eq!(plan.units()[1].direct, vec![1]);
    }

    #[test]
    fn contained_windows_attach_to_the_covering_unit() {
        let plan = plan(&indexed(&[q(0, 7, 0, 10), q(0, 7, 2, 7), q(0, 7, 3, 5)]));
        assert_eq!(plan.num_units(), 1, "both narrower windows share the wide unit");
        assert_eq!(plan.shared_answered(), 2);
        let unit = &plan.units()[0];
        assert_eq!(unit.query, q(0, 7, 0, 10));
        assert_eq!(unit.followers.len(), 2);
        for f in &unit.followers {
            assert!(unit.query.covers(&f.query));
        }
    }

    #[test]
    fn containment_chains_attach_to_the_widest_window() {
        // A ⊇ B ⊇ C: both B and C become followers of A, not of each other.
        let plan = plan(&indexed(&[q(1, 2, 3, 4), q(1, 2, 1, 8), q(1, 2, 2, 6)]));
        assert_eq!(plan.num_units(), 1);
        assert_eq!(plan.units()[0].query, q(1, 2, 1, 8));
        assert_eq!(plan.units()[0].followers.len(), 2);
        assert_eq!(plan.units()[0].direct, vec![1]);
    }

    #[test]
    fn overlap_without_containment_stays_separate() {
        let plan = plan(&indexed(&[q(0, 1, 0, 5), q(0, 1, 3, 8)]));
        assert_eq!(plan.num_units(), 2);
        assert_eq!(plan.shared_answered(), 0);
    }

    #[test]
    fn different_endpoints_never_share() {
        let plan = plan(&indexed(&[q(0, 1, 0, 10), q(1, 0, 2, 7), q(0, 2, 2, 7)]));
        assert_eq!(plan.num_units(), 3);
        assert_eq!(plan.shared_answered(), 0);
    }

    #[test]
    fn duplicate_followers_count_once_as_shared() {
        let plan = plan(&indexed(&[q(0, 1, 0, 10), q(0, 1, 2, 5), q(0, 1, 2, 5)]));
        assert_eq!(plan.num_units(), 1);
        assert_eq!(plan.dedup_answered(), 1);
        assert_eq!(plan.shared_answered(), 1);
        assert_eq!(plan.units()[0].followers[0].indexes, vec![1, 2]);
    }

    #[test]
    fn equal_begin_prefers_the_wider_window_as_unit() {
        let plan = plan(&indexed(&[q(0, 1, 2, 5), q(0, 1, 2, 9)]));
        assert_eq!(plan.num_units(), 1);
        assert_eq!(plan.units()[0].query, q(0, 1, 2, 9));
        assert_eq!(plan.units()[0].followers[0].query, q(0, 1, 2, 5));
    }

    #[test]
    fn unit_order_follows_first_batch_appearance() {
        let plan = plan(&indexed(&[q(5, 6, 1, 2), q(3, 4, 1, 2), q(1, 2, 1, 2)]));
        let firsts: Vec<usize> = plan.units().iter().map(|u| u.direct[0]).collect();
        assert_eq!(firsts, vec![0, 1, 2]);
    }

    #[test]
    fn empty_input_yields_an_empty_plan() {
        let plan = plan(&[]);
        assert_eq!(plan.num_units(), 0);
        assert_eq!(plan.planned_queries(), 0);
        assert_eq!(plan.dedup_answered(), 0);
    }
}
