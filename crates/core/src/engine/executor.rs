//! Work-stealing execution of a [`BatchPlan`](crate::engine::planner::BatchPlan).
//!
//! PR 2's `run_batch` split the query list into contiguous chunks, one per
//! worker. That balances *counts*, not *costs*: one chunk holding the few
//! expensive queries of a skewed batch leaves every other worker idle while
//! its owner grinds. The executor replaces chunking with a single atomic
//! cursor over the plan's units — every worker repeatedly claims the next
//! unexecuted unit until the cursor passes the end, so imbalance is bounded
//! by one unit rather than one chunk.
//!
//! A unit's job is self-contained: run the unit's query against the full
//! graph, then answer each follower by re-running the pipeline on the just
//! computed tspG (materialized once per unit), all out of the same worker
//! scratch. Follower answering therefore inherits the unit's cache-warm
//! scratch and never touches another worker's state. The trade-off: a
//! unit's followers run serially on the worker that claimed the unit, so a
//! single hot query with very many narrowed repeats can still tail-load
//! one worker — acceptable because follower runs are tspG-sized (tiny),
//! but making followers individually claimable is a known follow-on
//! (see ROADMAP).
//!
//! The worker count is clamped to the number of pending units, so tiny
//! batches stop paying thread start-up for workers that would find the
//! cursor already exhausted.

use crate::engine::planner::PlanUnit;
use crate::engine::{generate_tspg_scratch, QueryEngine, QueryScratch};
use crate::vug::VugResult;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The results of one executed [`PlanUnit`]: the unit query's own result
/// plus one result per follower (parallel to `unit.followers`).
#[derive(Debug)]
pub(crate) struct UnitOutcome {
    pub main: VugResult,
    pub followers: Vec<VugResult>,
}

/// Executes every unit of a plan across at most `threads` workers and
/// returns the outcomes in unit order.
pub(crate) fn execute(
    engine: &QueryEngine,
    units: &[PlanUnit],
    threads: usize,
) -> Vec<UnitOutcome> {
    let threads = threads.clamp(1, units.len().max(1));
    if threads == 1 {
        let mut scratch = engine.checkout_scratch();
        let outcomes = units.iter().map(|u| execute_unit(engine, u, &mut scratch)).collect();
        engine.return_scratch(scratch);
        return outcomes;
    }

    let cursor = AtomicUsize::new(0);
    let mut outcomes: Vec<Option<UnitOutcome>> = Vec::new();
    outcomes.resize_with(units.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut scratch = engine.checkout_scratch();
                    let mut done: Vec<(usize, UnitOutcome)> = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(unit) = units.get(index) else { break };
                        done.push((index, execute_unit(engine, unit, &mut scratch)));
                    }
                    engine.return_scratch(scratch);
                    done
                })
            })
            .collect();
        for handle in handles {
            for (index, outcome) in handle.join().expect("executor worker panicked") {
                outcomes[index] = Some(outcome);
            }
        }
    });
    outcomes.into_iter().map(|o| o.expect("the cursor visits every unit")).collect()
}

/// Runs one unit: its own query on the full graph, then every follower on
/// the unit's tspG.
///
/// Correctness of the follower path: a follower's window is contained in
/// the unit's window on the same `(s, t)`, so every temporal simple path
/// satisfying the follower also satisfies the unit and all its edges are in
/// the unit's tspG. Conversely the tspG is a subgraph of the input, so it
/// adds no paths. The follower's set of temporal simple paths — and hence
/// its tspG — is identical whether computed on the full graph or on the
/// unit's tspG, and the latter is usually orders of magnitude smaller.
fn execute_unit(engine: &QueryEngine, unit: &PlanUnit, scratch: &mut QueryScratch) -> UnitOutcome {
    let main = engine.run(unit.query, scratch);
    let mut followers = Vec::with_capacity(unit.followers.len());
    if !unit.followers.is_empty() {
        let shared = main.tspg.to_graph(engine.graph().num_vertices());
        for follower in &unit.followers {
            followers.push(generate_tspg_scratch(
                &shared,
                follower.query.source,
                follower.query.target,
                follower.query.window,
                engine.config(),
                scratch,
            ));
        }
    }
    UnitOutcome { main, followers }
}
