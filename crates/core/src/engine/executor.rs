//! Work-stealing execution of a [`BatchPlan`]
//! with individually claimable followers.
//!
//! PR 2's `run_batch` split the query list into contiguous chunks, one per
//! worker. That balances *counts*, not *costs*: one chunk holding the few
//! expensive queries of a skewed batch leaves every other worker idle while
//! its owner grinds. PR 3 replaced chunking with a single atomic cursor
//! over the plan's units — but a unit's followers still ran serially on the
//! worker that claimed the unit, so one hot query with very many narrowed
//! repeats could tail-load a single worker while the rest sat idle.
//!
//! This executor closes that skew tail. Work is split into two kinds of
//! items:
//!
//! * **Units** — claimed off an atomic cursor as before. Running a unit
//!   executes its query against the full graph; if the unit has followers
//!   the worker then *publishes* the unit's tspG (materialized once, into a
//!   `OnceLock`) before moving on to the next unit.
//! * **Followers** — once a unit's tspG is published, each of its followers
//!   is an independent work item: any worker whose unit cursor has run dry
//!   claims followers one at a time (per-unit atomic cursors) and answers
//!   them by re-running the pipeline on the published tspG out of its own
//!   scratch.
//!
//! Full-graph runs are the expensive items, so workers always prefer an
//! unclaimed unit over follower stealing; followers (tspG-sized, tiny) soak
//! up the idle tail once the units are all claimed. A worker that finds
//! neither — every remaining follower belongs to a unit still executing —
//! yields and re-scans until the outstanding-follower count hits zero.
//!
//! The worker count is clamped to the number of pending work items (units
//! plus followers), so tiny batches stop paying thread start-up for workers
//! that would find every cursor already exhausted.

use crate::engine::planner::{BatchPlan, PlanUnit};
use crate::engine::{generate_tspg_scratch, QueryEngine, QueryScratch, QuerySpec};
use crate::polarity::ArrivalProfile;
use crate::vug::{VugReport, VugResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use tspg_graph::{EdgeSet, TemporalEdge, TemporalGraph, VertexId};

/// The results of one executed [`PlanUnit`]: the unit query's own result
/// plus one result per follower (parallel to `unit.followers`).
#[derive(Debug)]
pub(crate) struct UnitOutcome {
    pub main: VugResult,
    pub followers: Vec<VugResult>,
}

/// A unit's tspG, materialized once for answering its followers.
///
/// The tspG is compacted to its own induced vertex set before follower
/// runs: the pipeline's per-run working state (polarity labels, visited
/// bitmaps, TCV tables) scales with the graph's vertex count, so running a
/// follower over the tspG *re-numbered to its handful of vertices* costs
/// time proportional to the tspG — materializing it in the parent graph's
/// id space would silently keep every follower run `O(|V|)` of the full
/// graph. Follower answers are remapped back to original ids afterwards.
#[derive(Debug)]
enum SharedTspg {
    /// The unit's tspG is empty: every follower's tspG is a subset of it,
    /// hence empty too — no pipeline run needed at all.
    Empty,
    /// Non-empty tspG, compacted.
    Compact {
        graph: TemporalGraph,
        /// Compact id of the unit's (and thus every follower's) source.
        source: VertexId,
        /// Compact id of the unit's (and thus every follower's) target.
        target: VertexId,
        /// Compact-to-original vertex mapping.
        originals: Vec<VertexId>,
    },
}

impl SharedTspg {
    /// Compacts a unit's freshly computed tspG for follower answering.
    fn new(unit_query: &QuerySpec, tspg: &EdgeSet) -> Self {
        if tspg.is_empty() {
            return Self::Empty;
        }
        let (graph, originals) = tspg.to_compact_graph();
        // Every tspG edge lies on a temporal simple s→t path, so a
        // non-empty tspG always contains both endpoints.
        let compact = |v: VertexId| -> VertexId {
            // tspg-lint: allow(no-panic-in-server) — unreachable by the invariant above
            originals.binary_search(&v).expect("tspG contains its endpoints") as VertexId
        };
        let (source, target) = (compact(unit_query.source), compact(unit_query.target));
        Self::Compact { graph, source, target, originals }
    }

    /// Answers one follower of the unit by re-running the pipeline on the
    /// compact tspG with the follower's window, mapping the resulting edge
    /// set back to original vertex ids.
    fn answer(
        &self,
        follower: &QuerySpec,
        engine: &QueryEngine,
        s: &mut QueryScratch,
    ) -> VugResult {
        match self {
            Self::Empty => VugResult { tspg: EdgeSet::new(), report: VugReport::default() },
            Self::Compact { graph, source, target, originals } => {
                let result = generate_tspg_scratch(
                    graph,
                    *source,
                    *target,
                    follower.window,
                    engine.config(),
                    s,
                );
                let tspg = EdgeSet::from_edges(result.tspg.edges().iter().map(|e| {
                    TemporalEdge::new(originals[e.src as usize], originals[e.dst as usize], e.time)
                }));
                VugResult { tspg, report: result.report }
            }
        }
    }
}

/// Executes every unit of a plan across at most `threads` workers and
/// returns the outcomes in unit order.
///
/// Units the planner put into a same-source profile group run through
/// [`QueryEngine::run_with_profile`]: the first member to execute obtains
/// the group's arrival profile — from the engine's profile cache when a
/// resident profile covers the hull, else by one target-agnostic forward
/// pass — and *publishes* it via `OnceLock` (mirroring the tspG
/// publication below); every other member clamps the published profile at
/// its own window instead of re-running the forward BFS.
pub(crate) fn execute(engine: &QueryEngine, plan: &BatchPlan, threads: usize) -> Vec<UnitOutcome> {
    let units = plan.units();
    let num_followers: usize = units.iter().map(|u| u.followers.len()).sum();
    let threads = threads.clamp(1, (units.len() + num_followers).max(1));
    if threads == 1 {
        let profiles = SharedProfiles::new(engine, plan);
        let mut scratch = engine.checkout_scratch();
        let outcomes = units
            .iter()
            .enumerate()
            .map(|(index, u)| execute_unit(engine, u, profiles.for_unit(index), &mut scratch))
            .collect();
        engine.return_scratch(scratch);
        return outcomes;
    }

    let pool = WorkPool::new(engine, plan, num_followers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let pool = &pool;
                scope.spawn(move || {
                    // A worker that panics mid-unit never completes its
                    // unit's followers, so without poisoning the surviving
                    // workers would wait on the outstanding-follower count
                    // forever instead of letting the panic propagate at
                    // join time.
                    let _poison = PoisonOnPanic(&pool.poisoned);
                    let mut scratch = engine.checkout_scratch();
                    pool.work(engine, &mut scratch);
                    engine.return_scratch(scratch);
                })
            })
            .collect();
        for handle in handles {
            // Propagating a worker panic (rather than swallowing it and
            // returning partial outcomes) is the intended behavior here.
            // tspg-lint: allow(no-panic-in-server)
            handle.join().expect("executor worker panicked");
        }
    });
    pool.into_outcomes()
}

/// The once-published arrival profiles of a plan's same-source groups.
///
/// Whoever first executes a member unit obtains the group's profile —
/// through [`QueryEngine::profile_for`], which consults the resident
/// profile cache before running the target-agnostic forward pass over the
/// hull window — inside `OnceLock::get_or_init`; concurrent members of the
/// same group block on that initialization — acceptable, because the
/// profile is a fraction of the full pipeline run each of them is about to
/// perform, and every other group's units remain claimable by other
/// workers. The slots hold `Arc`s because the same profile may be resident
/// in the engine's cache across batches.
struct SharedProfiles<'p> {
    engine: &'p QueryEngine,
    plan: &'p BatchPlan,
    slots: Vec<OnceLock<Arc<ArrivalProfile>>>,
}

impl<'p> SharedProfiles<'p> {
    fn new(engine: &'p QueryEngine, plan: &'p BatchPlan) -> Self {
        let slots = (0..plan.profile_groups().len()).map(|_| OnceLock::new()).collect();
        Self { engine, plan, slots }
    }

    /// The published profile of the unit's group (obtaining and publishing
    /// it first if this is the group's first executing member), or `None`
    /// for ungrouped units.
    fn for_unit(&self, index: usize) -> Option<&Arc<ArrivalProfile>> {
        let group_index = self.plan.unit_profile_group_index(index)?;
        let group = &self.plan.profile_groups()[group_index];
        Some(
            self.slots[group_index]
                .get_or_init(|| self.engine.profile_for(group.source, group.window)),
        )
    }
}

/// Shared state of one parallel batch execution: result slots for every
/// unit and follower, the published tspGs and profiles, and the claim
/// cursors.
struct WorkPool<'p> {
    units: &'p [PlanUnit],
    /// The plan's profile groups, published on first member execution.
    profiles: SharedProfiles<'p>,
    /// Cursor over `units`; claiming past the end means "go steal".
    unit_cursor: AtomicUsize,
    /// `mains[i]` receives unit `i`'s own result.
    mains: Vec<OnceLock<VugResult>>,
    /// Unit `i`'s tspG, compacted once its main run finished (only set for
    /// units that have followers). Publishing this is what makes the
    /// unit's followers stealable.
    shared: Vec<OnceLock<SharedTspg>>,
    /// Claim cursor over unit `i`'s followers.
    follower_cursors: Vec<AtomicUsize>,
    /// Flattened result slots for followers; unit `i`'s follower `j` lands
    /// in `follower_results[follower_offsets[i] + j]`.
    follower_offsets: Vec<usize>,
    follower_results: Vec<OnceLock<VugResult>>,
    /// Followers not yet *completed* (not merely claimed) — the workers'
    /// termination condition.
    outstanding_followers: AtomicUsize,
    /// Set when a worker panics, so the survivors stop waiting for work
    /// the dead worker can no longer publish and the panic reaches the
    /// caller through `join` instead of hanging the batch.
    poisoned: std::sync::atomic::AtomicBool,
}

/// Drop guard that flags the pool when its worker unwinds from a panic.
struct PoisonOnPanic<'p>(&'p std::sync::atomic::AtomicBool);

impl Drop for PoisonOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.store(true, Ordering::Release);
        }
    }
}

impl<'p> WorkPool<'p> {
    fn new(engine: &'p QueryEngine, plan: &'p BatchPlan, num_followers: usize) -> Self {
        let units = plan.units();
        let mut follower_offsets = Vec::with_capacity(units.len());
        let mut offset = 0;
        for unit in units {
            follower_offsets.push(offset);
            offset += unit.followers.len();
        }
        fn slots<T>(n: usize) -> Vec<OnceLock<T>> {
            (0..n).map(|_| OnceLock::new()).collect()
        }
        Self {
            units,
            profiles: SharedProfiles::new(engine, plan),
            unit_cursor: AtomicUsize::new(0),
            mains: slots(units.len()),
            shared: slots(units.len()),
            follower_cursors: (0..units.len()).map(|_| AtomicUsize::new(0)).collect(),
            follower_offsets,
            follower_results: slots(num_followers),
            outstanding_followers: AtomicUsize::new(num_followers),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// One worker's loop: drain the unit cursor, then steal followers until
    /// none are outstanding.
    fn work(&self, engine: &QueryEngine, scratch: &mut QueryScratch) {
        loop {
            // relaxed: the cursor only hands out distinct indices; result
            // publication is ordered by the OnceLock slots, not the cursor.
            let index = self.unit_cursor.fetch_add(1, Ordering::Relaxed);
            let Some(unit) = self.units.get(index) else { break };
            let main = match self.profiles.for_unit(index) {
                Some(profile) => engine.run_with_profile(unit.query, profile, scratch),
                None => engine.run(unit.query, scratch),
            };
            if !unit.followers.is_empty() {
                // Publish the compacted tspG *before* parking the main
                // result; from this instant the unit's followers are
                // fair game for every worker, this one included.
                let _ = self.shared[index].set(SharedTspg::new(&unit.query, &main.tspg));
            }
            let _ = self.mains[index].set(main);
        }
        // No units left: steal followers until the batch is drained. A
        // fruitless scan means every unclaimed follower belongs to a unit
        // another worker is still executing; yield at first (publishes are
        // usually imminent), then back off to short sleeps so workers
        // waiting out one long full-graph run do not burn their cores —
        // follower runs are tspG-sized, so 50µs of extra latency is noise.
        let mut fruitless_scans = 0u32;
        while self.outstanding_followers.load(Ordering::Acquire) != 0 {
            if self.poisoned.load(Ordering::Acquire) {
                break;
            }
            if self.steal_followers(engine, scratch) {
                fruitless_scans = 0;
            } else if fruitless_scans < 16 {
                fruitless_scans += 1;
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
        }
    }

    /// Scans every published unit for unclaimed followers and runs all it
    /// can claim. Returns whether any follower was executed.
    fn steal_followers(&self, engine: &QueryEngine, scratch: &mut QueryScratch) -> bool {
        // relaxed: follower cursors only partition claims between workers;
        // each claimed result is published via its OnceLock slot, and the
        // drain condition rides on `outstanding_followers` (Release above,
        // Acquire in `work`), not on cursor ordering.
        let mut progressed = false;
        for (index, unit) in self.units.iter().enumerate() {
            if unit.followers.is_empty()
                || self.follower_cursors[index].load(Ordering::Relaxed) >= unit.followers.len()
            {
                continue;
            }
            let Some(shared) = self.shared[index].get() else { continue };
            loop {
                let claimed = self.follower_cursors[index].fetch_add(1, Ordering::Relaxed);
                let Some(follower) = unit.followers.get(claimed) else { break };
                let result = shared.answer(&follower.query, engine, scratch);
                let _ = self.follower_results[self.follower_offsets[index] + claimed].set(result);
                self.outstanding_followers.fetch_sub(1, Ordering::Release);
                progressed = true;
            }
        }
        progressed
    }

    /// Collects the filled slots into per-unit outcomes (every slot is set
    /// once the workers have joined).
    fn into_outcomes(self) -> Vec<UnitOutcome> {
        let mut follower_results = self.follower_results.into_iter();
        self.units
            .iter()
            .zip(self.mains)
            .map(|(unit, main)| UnitOutcome {
                // tspg-lint: allow(no-panic-in-server) — see the doc comment: slots are full post-join
                main: main.into_inner().expect("the unit cursor visits every unit"),
                followers: follower_results
                    .by_ref()
                    .take(unit.followers.len())
                    // tspg-lint: allow(no-panic-in-server) — same post-join invariant
                    .map(|slot| slot.into_inner().expect("every follower is claimed and run"))
                    .collect(),
            })
            .collect()
    }
}

/// Runs one unit serially: its own query on the full graph, then every
/// follower on the unit's tspG (the single-worker path).
///
/// Correctness of the follower path: a follower's window is contained in
/// the unit's window on the same `(s, t)` — by construction for both
/// containment followers and envelope members — so every temporal simple
/// path satisfying the follower also satisfies the unit and all its edges
/// are in the unit's tspG. Conversely the tspG is a subgraph of the input,
/// so it adds no paths. The follower's set of temporal simple paths — and
/// hence its tspG — is identical whether computed on the full graph or on
/// the unit's tspG, and the latter is usually orders of magnitude smaller.
fn execute_unit(
    engine: &QueryEngine,
    unit: &PlanUnit,
    profile: Option<&Arc<ArrivalProfile>>,
    scratch: &mut QueryScratch,
) -> UnitOutcome {
    let main = match profile {
        Some(profile) => engine.run_with_profile(unit.query, profile, scratch),
        None => engine.run(unit.query, scratch),
    };
    let mut followers = Vec::with_capacity(unit.followers.len());
    if !unit.followers.is_empty() {
        let shared = SharedTspg::new(&unit.query, &main.tspg);
        for follower in &unit.followers {
            followers.push(shared.answer(&follower.query, engine, scratch));
        }
    }
    UnitOutcome { main, followers }
}
