//! Sharded LRU cache of query results, keyed by canonical
//! `(s, t, [τ_b, τ_e])` queries.
//!
//! The engine's graph is immutable between edge ingestions, so a query's
//! tspG never changes within one graph epoch and memoizing whole
//! [`VugResult`]s is sound. The cache is consulted before batch planning
//! and populated after execution; under repeated-query serving traffic a
//! hit skips the entire pipeline. When the graph mutates
//! ([`crate::engine::QueryEngine::ingest`]) the whole cache is flushed via
//! [`ResultCache::clear`] — an epoch-scoped flush is equivalent to
//! epoch-tagged keys here because result keys are dense and short-lived,
//! and it releases the stale entries' memory immediately instead of
//! waiting for LRU pressure.
//!
//! The map is split into independently locked shards (key-hash selected) so
//! that concurrent executor workers and front-end threads do not serialize
//! on one mutex. Each shard maintains its own intrusive LRU list and is
//! bounded both by entry count and by approximate heap bytes; inserting
//! past either bound evicts least-recently-used entries. Hit / miss /
//! insert / evict counters are global atomics, readable at any time via
//! [`ResultCache::stats`] without taking a shard lock.

use crate::engine::QuerySpec;
use crate::polarity::ArrivalProfile;
use crate::vug::{VugReport, VugResult};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use tspg_graph::{EdgeSet, GraphEpoch, TimeInterval, VertexId};

/// Sizing of a [`ResultCache`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of cached results across all shards (≥ 1).
    pub max_entries: usize,
    /// Approximate upper bound on cached heap bytes across all shards.
    /// A single result larger than this whole budget is not cached at all;
    /// one merely larger than its shard's share is still admitted (it
    /// simply becomes the only resident entry of its shard).
    pub max_bytes: usize,
    /// Number of independently locked shards (≥ 1; rounded up to 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self { max_entries: 4096, max_bytes: 64 << 20, shards: 8 }
    }
}

impl CacheConfig {
    /// A config with the given entry bound and the default byte/shard
    /// limits.
    pub fn with_max_entries(max_entries: usize) -> Self {
        Self { max_entries: max_entries.max(1), ..Self::default() }
    }
}

/// A snapshot of the cache's counters and current occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Results stored (excluding replaced duplicates).
    pub insertions: u64,
    /// Entries dropped to satisfy the entry or byte bound.
    pub evictions: u64,
    /// Resident entries right now.
    pub entries: usize,
    /// Approximate resident heap bytes right now.
    pub bytes: usize,
}

impl CacheStats {
    /// Snapshot of every counter as `(name, value)` pairs for `key=value`
    /// surfaces (the `tspg-server` `stats` verb). The names carry a
    /// `cache_` prefix — and the lookup counters a `_lookup_` infix — so
    /// they never collide with [`super::BatchStats::key_values`]' names
    /// (whose `cache_hits` counts queries answered from the cache, the same
    /// quantity `cache_lookup_hits` counts from the cache's side).
    pub fn key_values(&self) -> [(&'static str, u64); 6] {
        [
            ("cache_lookup_hits", self.hits),
            ("cache_lookup_misses", self.misses),
            ("cache_insertions", self.insertions),
            ("cache_evictions", self.evictions),
            ("cache_entries", self.entries as u64),
            ("cache_bytes", self.bytes as u64),
        ]
    }

    /// Hit rate in `[0, 1]`; 0 when no lookups happened yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const NIL: usize = usize::MAX;

/// One cached result inside a shard's slot arena, threaded on the shard's
/// doubly linked LRU list (`head` = most recently used).
#[derive(Debug)]
struct Slot {
    key: QuerySpec,
    value: VugResult,
    bytes: usize,
    prev: usize,
    next: usize,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<QuerySpec, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    bytes: usize,
}

impl Shard {
    fn new() -> Self {
        Self { head: NIL, tail: NIL, ..Self::default() }
    }

    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.slots[slot].prev, self.slots[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.slots[h].prev = slot,
        }
        self.head = slot;
    }

    fn get(&mut self, key: &QuerySpec) -> Option<VugResult> {
        let slot = *self.map.get(key)?;
        self.unlink(slot);
        self.push_front(slot);
        Some(self.slots[slot].value.clone())
    }

    /// Inserts (or refreshes) an entry, then evicts from the tail until the
    /// shard is within both bounds. Returns `(inserted, evicted)`.
    ///
    /// Admission is checked against `global_max_bytes` (the whole cache's
    /// configured budget), not the shard's share: a result that fits the
    /// budget the caller configured must never be silently refused just
    /// because key hashing divided that budget by the shard count. The
    /// eviction loop below still enforces `max_bytes` (the per-shard
    /// share), but its `len() > 1` guard lets a single oversized entry
    /// live alone in its shard.
    fn insert(
        &mut self,
        key: QuerySpec,
        value: &VugResult,
        bytes: usize,
        max_entries: usize,
        max_bytes: usize,
        global_max_bytes: usize,
    ) -> (bool, u64) {
        if bytes > global_max_bytes || max_entries == 0 {
            return (false, 0);
        }
        let inserted = match self.map.get(&key) {
            Some(&slot) => {
                // Same canonical query ⇒ same tspG; just refresh recency.
                self.unlink(slot);
                self.push_front(slot);
                false
            }
            None => {
                let slot = match self.free.pop() {
                    Some(reused) => {
                        self.slots[reused] =
                            Slot { key, value: value.clone(), bytes, prev: NIL, next: NIL };
                        reused
                    }
                    None => {
                        self.slots.push(Slot {
                            key,
                            value: value.clone(),
                            bytes,
                            prev: NIL,
                            next: NIL,
                        });
                        self.slots.len() - 1
                    }
                };
                self.map.insert(key, slot);
                self.push_front(slot);
                self.bytes += bytes;
                true
            }
        };
        let mut evicted = 0;
        while self.map.len() > max_entries || (self.bytes > max_bytes && self.map.len() > 1) {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL);
            self.unlink(tail);
            self.bytes -= self.slots[tail].bytes;
            self.map.remove(&self.slots[tail].key);
            // Drop the evicted result now — a free slot must not pin the
            // tspG's heap allocation until its eventual reuse, or real
            // memory could exceed the byte bound stats() reports against.
            self.slots[tail].value =
                VugResult { tspg: EdgeSet::new(), report: VugReport::default() };
            self.slots[tail].bytes = 0;
            self.free.push(tail);
            evicted += 1;
        }
        (inserted, evicted)
    }

    /// Drops every resident entry and releases its heap allocation, keeping
    /// the slot arena's capacity for reuse.
    fn clear(&mut self) {
        self.map.clear();
        self.free.clear();
        for (i, slot) in self.slots.iter_mut().enumerate() {
            slot.value = VugResult { tspg: EdgeSet::new(), report: VugReport::default() };
            slot.bytes = 0;
            self.free.push(i);
        }
        self.head = NIL;
        self.tail = NIL;
        self.bytes = 0;
    }
}

/// The engine's sharded LRU result cache. See the module docs.
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    max_entries_per_shard: usize,
    max_bytes_per_shard: usize,
    max_bytes_global: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// Creates an empty cache with the given bounds.
    pub fn new(config: CacheConfig) -> Self {
        // Never more shards than entries: each shard holds at least one
        // entry, so excess shards would silently inflate the global bound.
        let shards = config.shards.clamp(1, config.max_entries.max(1));
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::new())).collect(),
            max_entries_per_shard: (config.max_entries / shards).max(1),
            max_bytes_per_shard: (config.max_bytes / shards).max(1),
            max_bytes_global: config.max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &QuerySpec) -> &Mutex<Shard> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Looks up the result of a canonical query, refreshing its recency.
    pub fn get(&self, key: &QuerySpec) -> Option<VugResult> {
        let result = self.shard(key).lock().ok()?.get(key);
        // relaxed: hit/miss tallies are pure statistics — no reader orders
        // other memory against them.
        match result {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    /// Stores the result of a canonical query, evicting LRU entries as
    /// needed. Oversized results (larger than the whole configured byte
    /// budget) are silently skipped.
    pub fn insert(&self, key: QuerySpec, value: &VugResult) {
        let bytes = entry_bytes(value);
        let Ok(mut shard) = self.shard(&key).lock() else { return };
        let (inserted, evicted) = shard.insert(
            key,
            value,
            bytes,
            self.max_entries_per_shard,
            self.max_bytes_per_shard,
            self.max_bytes_global,
        );
        drop(shard);
        // relaxed: insertion/eviction tallies are pure statistics; the
        // cached data itself is published by the shard mutex above.
        if inserted {
            self.insertions.fetch_add(1, Ordering::Relaxed);
        }
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Drops every resident entry at once — the graph-epoch flush.
    ///
    /// Called when the underlying graph mutates: every cached tspG was
    /// computed against the previous epoch and must become unreachable.
    /// Flushed entries are not counted as evictions (`cache_evictions`
    /// keeps measuring capacity pressure, not invalidation); the hit/miss
    /// history is preserved so hit-rate recovery after an ingest is
    /// observable in the same counters.
    pub fn clear(&self) {
        for shard in &self.shards {
            if let Ok(mut shard) = shard.lock() {
                shard.clear();
            }
        }
    }

    /// Counters plus current occupancy.
    pub fn stats(&self) -> CacheStats {
        let (mut entries, mut bytes) = (0, 0);
        for shard in &self.shards {
            if let Ok(shard) = shard.lock() {
                entries += shard.map.len();
                bytes += shard.bytes;
            }
        }
        // relaxed: a stats snapshot tolerates torn reads across counters;
        // each counter individually is just a monotone tally.
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

/// Fixed per-entry overhead charged on top of the result's own heap bytes.
///
/// An entry does not just own its tspG: it pins a [`Slot`] in the shard's
/// slot arena (key + value struct + the two intrusive LRU links), a
/// `key → slot` pair in the shard's hash map, and a share of the map's
/// bucket/control metadata (hash maps keep a load factor below 1, so each
/// resident entry costs more than its own pair; 2× is a conservative
/// stand-in). Charging only `tspg.approx_bytes()` would let a small-result
/// workload blow far past `max_bytes` in real memory while the accounted
/// total stays near zero.
const ENTRY_OVERHEAD: usize = std::mem::size_of::<Slot>()
    + 2 * std::mem::size_of::<(QuerySpec, usize)>()
    + std::mem::size_of::<usize>();

/// Approximate heap footprint of one cached entry: the result's own heap
/// allocation plus [`ENTRY_OVERHEAD`].
fn entry_bytes(value: &VugResult) -> usize {
    value.tspg.approx_bytes() + ENTRY_OVERHEAD
}

/// Sizing of a [`ProfileCache`].
///
/// Profiles are per *source*, not per query, so the working set is the
/// number of hot fan-out sources — orders of magnitude smaller than the
/// result cache's key space. The defaults reflect that.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProfileCacheConfig {
    /// Maximum number of resident profiles (≥ 1).
    pub max_entries: usize,
    /// Approximate upper bound on resident profile heap bytes. Profiles
    /// larger than this are not cached at all.
    pub max_bytes: usize,
}

impl Default for ProfileCacheConfig {
    fn default() -> Self {
        Self { max_entries: 128, max_bytes: 32 << 20 }
    }
}

impl ProfileCacheConfig {
    /// A config with the given entry bound and the default byte limit.
    pub fn with_max_entries(max_entries: usize) -> Self {
        Self { max_entries: max_entries.max(1), ..Self::default() }
    }
}

/// A snapshot of the profile cache's counters and current occupancy.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProfileCacheStats {
    /// Lookups answered by a resident profile whose hull covers the
    /// requested window.
    pub hits: u64,
    /// Lookups that found no profile, or one with too narrow a hull.
    pub misses: u64,
    /// Profiles stored (replacements of a stale same-source profile
    /// included — the value really changed).
    pub insertions: u64,
    /// Profiles dropped to satisfy the entry or byte bound.
    pub evictions: u64,
    /// Resident profiles right now.
    pub entries: usize,
    /// Approximate resident heap bytes right now.
    pub bytes: usize,
}

impl ProfileCacheStats {
    /// Snapshot of every counter as `(name, value)` pairs for `key=value`
    /// surfaces (the `tspg-server` `stats` verb). The `profile_cache_`
    /// prefix keeps the names disjoint from both [`CacheStats::key_values`]
    /// and [`super::BatchStats::key_values`].
    pub fn key_values(&self) -> [(&'static str, u64); 6] {
        [
            ("profile_cache_hits", self.hits),
            ("profile_cache_misses", self.misses),
            ("profile_cache_insertions", self.insertions),
            ("profile_cache_evictions", self.evictions),
            ("profile_cache_entries", self.entries as u64),
            ("profile_cache_bytes", self.bytes as u64),
        ]
    }
}

/// Cache key for one source's resident arrival profile.
///
/// `epoch` is the [`GraphEpoch`] the profile was computed against, supplied
/// by the engine from the live graph on every lookup and insert. Bumping
/// the graph's epoch therefore makes every resident profile unreachable
/// without a stop-the-world flush: old-epoch entries linger until LRU
/// pressure reclaims them, but no key built from the live graph can ever
/// address one.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
struct ProfileKey {
    source: VertexId,
    epoch: GraphEpoch,
}

#[derive(Debug)]
struct ProfileEntry {
    value: Arc<ArrivalProfile>,
    bytes: usize,
    last_used: u64,
}

#[derive(Debug, Default)]
struct ProfileMap {
    map: HashMap<ProfileKey, ProfileEntry>,
    bytes: usize,
    tick: u64,
}

/// A small keyed LRU of per-source [`ArrivalProfile`]s, consulted by the
/// engine before any profile forward pass and surviving across batches in
/// the resident server.
///
/// A lookup hits only when the resident profile's hull `covers` the
/// requested window (same source, hull ⊇ window — begins may differ, that
/// is the whole point of a profile); a too-narrow hull is a miss and the
/// caller's freshly computed wider profile replaces it. The cache is one
/// mutex — it is touched once per profile *group*, not per query, so
/// sharding would buy nothing — and eviction scans for the least recently
/// used entry linearly, which at ≤ a few hundred hot sources beats
/// maintaining an intrusive list.
#[derive(Debug)]
pub struct ProfileCache {
    inner: Mutex<ProfileMap>,
    max_entries: usize,
    max_bytes: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ProfileCache {
    /// Creates an empty cache with the given bounds.
    pub fn new(config: ProfileCacheConfig) -> Self {
        Self {
            inner: Mutex::new(ProfileMap::default()),
            max_entries: config.max_entries.max(1),
            max_bytes: config.max_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a resident profile for `source` computed at `epoch` and
    /// able to answer `window`, refreshing its recency. Profiles from any
    /// other epoch are unreachable by key construction.
    pub fn get(
        &self,
        source: VertexId,
        epoch: GraphEpoch,
        window: TimeInterval,
    ) -> Option<Arc<ArrivalProfile>> {
        let key = ProfileKey { source, epoch };
        let found = match self.inner.lock() {
            Ok(mut inner) => {
                inner.tick += 1;
                let tick = inner.tick;
                inner.map.get_mut(&key).and_then(|entry| {
                    if entry.value.covers(source, window) {
                        entry.last_used = tick;
                        Some(entry.value.clone())
                    } else {
                        None
                    }
                })
            }
            Err(_) => None,
        };
        // relaxed: hit/miss tallies are pure statistics — no reader orders
        // other memory against them.
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Stores a profile under its source and the graph `epoch` it was
    /// computed at, replacing any resident profile for that `(source,
    /// epoch)` and evicting LRU entries as needed. Profiles larger than the
    /// whole byte bound are silently skipped.
    pub fn insert(&self, profile: Arc<ArrivalProfile>, epoch: GraphEpoch) {
        let bytes = profile_bytes(&profile);
        if bytes > self.max_bytes {
            return;
        }
        let key = ProfileKey { source: profile.source(), epoch };
        let Ok(mut inner) = self.inner.lock() else { return };
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.insert(key, ProfileEntry { value: profile, bytes, last_used: tick }) {
            Some(old) => inner.bytes = inner.bytes - old.bytes + bytes,
            None => inner.bytes += bytes,
        }
        let mut evicted = 0u64;
        while inner.map.len() > self.max_entries
            || (inner.bytes > self.max_bytes && inner.map.len() > 1)
        {
            let Some((&victim, _)) = inner.map.iter().min_by_key(|(_, entry)| entry.last_used)
            else {
                break;
            };
            if let Some(old) = inner.map.remove(&victim) {
                inner.bytes -= old.bytes;
                evicted += 1;
            }
        }
        drop(inner);
        // relaxed: insertion/eviction tallies are pure statistics; the
        // cached profile itself is published by the mutex above.
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Counters plus current occupancy.
    pub fn stats(&self) -> ProfileCacheStats {
        let (entries, bytes) = match self.inner.lock() {
            Ok(inner) => (inner.map.len(), inner.bytes),
            Err(_) => (0, 0),
        };
        // relaxed: a stats snapshot tolerates torn reads across counters;
        // each counter individually is just a monotone tally.
        ProfileCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }
}

/// Fixed per-profile overhead charged on top of the profile's own heap
/// bytes: the map entry, its share of bucket metadata, and the `Arc`
/// control block.
const PROFILE_ENTRY_OVERHEAD: usize =
    2 * std::mem::size_of::<(ProfileKey, ProfileEntry)>() + 2 * std::mem::size_of::<u64>();

/// Approximate heap footprint of one resident profile.
fn profile_bytes(profile: &ArrivalProfile) -> usize {
    profile.approx_bytes() + PROFILE_ENTRY_OVERHEAD
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vug::VugReport;
    use tspg_graph::{EdgeSet, TemporalEdge, TimeInterval};

    fn key(i: i64) -> QuerySpec {
        QuerySpec::new(0, 1, TimeInterval::new(i, i + 3))
    }

    fn result(edges: usize) -> VugResult {
        let tspg = EdgeSet::from_edges((0..edges).map(|i| TemporalEdge::new(0, 1, i as i64 + 1)));
        VugResult { tspg, report: VugReport::default() }
    }

    fn single_shard(max_entries: usize, max_bytes: usize) -> ResultCache {
        ResultCache::new(CacheConfig { max_entries, max_bytes, shards: 1 })
    }

    #[test]
    fn get_after_insert_roundtrips_and_counts() {
        let cache = ResultCache::new(CacheConfig::default());
        assert!(cache.get(&key(0)).is_none());
        cache.insert(key(0), &result(3));
        let hit = cache.get(&key(0)).expect("hit");
        assert_eq!(hit.tspg, result(3).tspg);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let cache = single_shard(2, usize::MAX >> 1);
        cache.insert(key(1), &result(1));
        cache.insert(key(2), &result(1));
        // Touch key 1 so key 2 becomes LRU.
        assert!(cache.get(&key(1)).is_some());
        cache.insert(key(3), &result(1));
        assert!(cache.get(&key(2)).is_none(), "LRU entry must be evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn byte_bound_evicts_and_oversized_results_are_skipped() {
        let per_entry = entry_bytes(&result(4));
        let cache = single_shard(1024, 2 * per_entry + per_entry / 2);
        cache.insert(key(1), &result(4));
        cache.insert(key(2), &result(4));
        cache.insert(key(3), &result(4));
        let stats = cache.stats();
        assert!(stats.entries <= 2, "byte bound must hold: {stats:?}");
        assert!(stats.bytes <= 2 * per_entry + per_entry / 2);
        assert!(stats.evictions >= 1);
        // A result bigger than the whole shard is never admitted.
        let tiny = single_shard(1024, per_entry / 2);
        tiny.insert(key(9), &result(4));
        assert_eq!(tiny.stats().entries, 0);
        assert!(tiny.get(&key(9)).is_none());
    }

    #[test]
    fn empty_results_still_pay_per_entry_overhead() {
        // A zero-edge result owns no tspG heap at all; if the accounting
        // charged only the value's approximate bytes, max_bytes would never
        // bite and resident memory (Slot + map entry per insert) would grow
        // unboundedly. With the per-entry overhead charged, a byte bound
        // sized for ~8 entries must hold the cache to ~8 entries.
        let empty = VugResult { tspg: EdgeSet::new(), report: VugReport::default() };
        assert_eq!(entry_bytes(&empty), ENTRY_OVERHEAD);
        let budget = 8 * ENTRY_OVERHEAD;
        let cache = single_shard(usize::MAX >> 1, budget);
        for i in 0..256 {
            cache.insert(key(i), &empty);
        }
        let stats = cache.stats();
        assert!(stats.entries <= 8, "byte bound must limit empty entries: {stats:?}");
        assert!(stats.bytes <= budget, "{stats:?}");
        assert!(stats.evictions >= 248, "{stats:?}");
    }

    #[test]
    fn reinserting_a_key_refreshes_recency_without_double_counting() {
        let cache = single_shard(2, usize::MAX >> 1);
        cache.insert(key(1), &result(1));
        cache.insert(key(2), &result(1));
        cache.insert(key(1), &result(1)); // refresh, not a new entry
        assert_eq!(cache.stats().insertions, 2);
        assert_eq!(cache.stats().entries, 2);
        cache.insert(key(3), &result(1));
        assert!(cache.get(&key(1)).is_some(), "refreshed key must survive");
        assert!(cache.get(&key(2)).is_none());
    }

    #[test]
    fn oversized_entry_fitting_global_budget_is_admitted_in_sharded_cache() {
        // Regression: admission used to be checked against max_bytes /
        // shards, so an entry within the configured global budget but above
        // one shard's share was silently refused whenever shards > 1.
        let per_entry = entry_bytes(&result(4));
        let global = 3 * per_entry; // per-shard share = 3/4 of one entry
        let cache = ResultCache::new(CacheConfig { max_entries: 64, max_bytes: global, shards: 4 });
        cache.insert(key(1), &result(4));
        assert!(cache.get(&key(1)).is_some(), "entry within global budget must be cached");
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "{stats:?}");
        assert_eq!(stats.insertions, 1, "{stats:?}");
        // It lives alone in its shard: inserting a second entry that hashes
        // to the same shard may evict one, but the global byte budget holds.
        for i in 2..32 {
            cache.insert(key(i), &result(4));
        }
        assert!(cache.stats().bytes <= global + 3 * per_entry, "one oversized entry per shard");
        // Entries above the global budget are still refused outright.
        let tiny =
            ResultCache::new(CacheConfig { max_entries: 64, max_bytes: per_entry - 1, shards: 4 });
        tiny.insert(key(1), &result(4));
        assert_eq!(tiny.stats().entries, 0);
    }

    #[test]
    fn clear_flushes_every_shard_without_counting_evictions() {
        let cache =
            ResultCache::new(CacheConfig { max_entries: 64, max_bytes: 1 << 20, shards: 4 });
        for i in 0..16 {
            cache.insert(key(i), &result(2));
        }
        assert!(cache.stats().entries > 0);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0, "{stats:?}");
        assert_eq!(stats.bytes, 0, "{stats:?}");
        assert_eq!(stats.evictions, 0, "an epoch flush is not capacity pressure");
        assert_eq!(stats.insertions, 16, "history survives the flush");
        for i in 0..16 {
            assert!(cache.get(&key(i)).is_none(), "flushed entries must be gone");
        }
        // The cache keeps working after a flush (slot arena is reused).
        cache.insert(key(0), &result(2));
        assert!(cache.get(&key(0)).is_some());
    }

    #[test]
    fn tiny_entry_bounds_are_honored_even_with_many_shards() {
        // max_entries < shards must not inflate the global bound to one
        // entry per shard.
        let cache = ResultCache::new(CacheConfig { max_entries: 2, max_bytes: 1 << 20, shards: 8 });
        for i in 0..32 {
            cache.insert(key(i), &result(1));
        }
        assert!(cache.stats().entries <= 2, "{:?}", cache.stats());
    }

    #[test]
    fn shards_partition_the_bounds() {
        let cache = ResultCache::new(CacheConfig { max_entries: 8, max_bytes: 1 << 20, shards: 4 });
        for i in 0..64 {
            cache.insert(key(i), &result(1));
        }
        let stats = cache.stats();
        assert!(stats.entries <= 8, "{stats:?}");
        assert!(stats.evictions >= 56);
    }

    fn profile(source: VertexId, begin: i64, end: i64) -> Arc<ArrivalProfile> {
        use tspg_graph::{TemporalEdge, TemporalGraph};
        let g = TemporalGraph::from_edges(
            4,
            vec![
                TemporalEdge::new(0, 1, 2),
                TemporalEdge::new(1, 2, 4),
                TemporalEdge::new(2, 3, 6),
                TemporalEdge::new(3, 0, 8),
            ],
        );
        Arc::new(ArrivalProfile::compute(&g, source, TimeInterval::new(begin, end)))
    }

    #[test]
    fn profile_cache_hits_any_covered_window_and_counts() {
        let cache = ProfileCache::new(ProfileCacheConfig::default());
        assert!(cache.get(0, GraphEpoch::ZERO, TimeInterval::new(2, 6)).is_none());
        cache.insert(profile(0, 1, 9), GraphEpoch::ZERO);
        // Any sub-window of the resident hull hits, begins included.
        for begin in 1..=5 {
            assert!(cache.get(0, GraphEpoch::ZERO, TimeInterval::new(begin, 6)).is_some());
        }
        // Other sources and wider windows miss.
        assert!(cache.get(1, GraphEpoch::ZERO, TimeInterval::new(2, 6)).is_none());
        assert!(cache.get(0, GraphEpoch::ZERO, TimeInterval::new(0, 6)).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (5, 3, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn profile_cache_replaces_stale_narrow_profiles_in_place() {
        let cache = ProfileCache::new(ProfileCacheConfig::with_max_entries(4));
        cache.insert(profile(0, 3, 5), GraphEpoch::ZERO);
        assert!(
            cache.get(0, GraphEpoch::ZERO, TimeInterval::new(1, 9)).is_none(),
            "narrow hull must miss"
        );
        cache.insert(profile(0, 1, 9), GraphEpoch::ZERO);
        assert!(cache.get(0, GraphEpoch::ZERO, TimeInterval::new(1, 9)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 1, "same source replaces, never duplicates");
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn profile_cache_evicts_least_recently_used_sources() {
        let cache = ProfileCache::new(ProfileCacheConfig::with_max_entries(2));
        cache.insert(profile(0, 1, 9), GraphEpoch::ZERO);
        cache.insert(profile(1, 1, 9), GraphEpoch::ZERO);
        // Touch source 0 so source 1 becomes LRU.
        assert!(cache.get(0, GraphEpoch::ZERO, TimeInterval::new(2, 6)).is_some());
        cache.insert(profile(2, 1, 9), GraphEpoch::ZERO);
        assert!(
            cache.get(1, GraphEpoch::ZERO, TimeInterval::new(2, 6)).is_none(),
            "LRU source must be evicted"
        );
        assert!(cache.get(0, GraphEpoch::ZERO, TimeInterval::new(2, 6)).is_some());
        assert!(cache.get(2, GraphEpoch::ZERO, TimeInterval::new(2, 6)).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn profile_cache_byte_bound_evicts_and_skips_oversized() {
        let per_entry = profile_bytes(&profile(0, 1, 9));
        let cache = ProfileCache::new(ProfileCacheConfig {
            max_entries: 1024,
            max_bytes: 2 * per_entry + per_entry / 2,
        });
        cache.insert(profile(0, 1, 9), GraphEpoch::ZERO);
        cache.insert(profile(1, 1, 9), GraphEpoch::ZERO);
        cache.insert(profile(2, 1, 9), GraphEpoch::ZERO);
        let stats = cache.stats();
        assert!(stats.entries <= 2, "byte bound must hold: {stats:?}");
        assert!(stats.bytes <= 2 * per_entry + per_entry / 2);
        assert!(stats.evictions >= 1);
        // A profile bigger than the whole bound is never admitted.
        let tiny = ProfileCache::new(ProfileCacheConfig { max_entries: 1024, max_bytes: 1 });
        tiny.insert(profile(0, 1, 9), GraphEpoch::ZERO);
        assert_eq!(tiny.stats().entries, 0);
    }

    #[test]
    fn profile_cache_scopes_entries_to_their_epoch() {
        let cache = ProfileCache::new(ProfileCacheConfig::with_max_entries(8));
        cache.insert(profile(0, 1, 9), GraphEpoch::ZERO);
        assert!(cache.get(0, GraphEpoch::ZERO, TimeInterval::new(2, 6)).is_some());
        // The same source at a newer epoch misses: the old profile is
        // unreachable by key construction, no flush required.
        let next = GraphEpoch::ZERO.next();
        assert!(cache.get(0, next, TimeInterval::new(2, 6)).is_none());
        cache.insert(profile(0, 1, 9), next);
        assert!(cache.get(0, next, TimeInterval::new(2, 6)).is_some());
        // Both epochs' entries are resident until LRU pressure reclaims the
        // stale one; the new epoch never sees it.
        assert_eq!(cache.stats().entries, 2);
        assert!(cache.get(0, next.next(), TimeInterval::new(2, 6)).is_none());
    }

    #[test]
    fn profile_cache_concurrent_access_is_safe() {
        let cache = ProfileCache::new(ProfileCacheConfig::with_max_entries(8));
        std::thread::scope(|scope| {
            for worker in 0..4u32 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..50 {
                        let source = (i + worker) % 12;
                        if cache.get(source, GraphEpoch::ZERO, TimeInterval::new(2, 6)).is_none() {
                            cache.insert(profile(source, 1, 9), GraphEpoch::ZERO);
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 200);
        assert!(stats.entries <= 8);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache =
            ResultCache::new(CacheConfig { max_entries: 64, max_bytes: 1 << 20, shards: 4 });
        std::thread::scope(|scope| {
            for worker in 0..4i64 {
                let cache = &cache;
                scope.spawn(move || {
                    for i in 0..100 {
                        let k = key((i + worker) % 32);
                        if cache.get(&k).is_none() {
                            cache.insert(k, &result(2));
                        }
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.hits + stats.misses == 400);
        assert!(stats.entries <= 64);
    }
}
