//! The VUG pipeline (Algorithm 1): orchestration, configuration and
//! per-phase instrumentation.

use crate::bidir::BidirOptions;
use crate::eev::EevStats;
use crate::engine::{generate_tspg_scratch, QueryScratch};
use std::time::Duration;
use tspg_graph::{EdgeSet, TemporalGraph, TimeInterval, VertexId};

/// Configuration of a VUG run.
///
/// The defaults correspond to the algorithm as published; the switches exist
/// for the ablation experiments (what does each phase / optimization buy?).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VugConfig {
    /// Apply the `TightUBG` phase. When `false`, EEV runs directly on the
    /// quick upper-bound graph (ablation: "VUG without the simple-path
    /// pruning").
    pub use_tight_ubg: bool,
    /// Options of the bidirectional DFS used by EEV.
    pub bidir: BidirOptions,
}

impl Default for VugConfig {
    fn default() -> Self {
        Self { use_tight_ubg: true, bidir: BidirOptions::default() }
    }
}

impl VugConfig {
    /// The published algorithm with every optimization enabled.
    pub fn full() -> Self {
        Self::default()
    }

    /// Ablation: skip the `TightUBG` phase.
    pub fn without_tight_ubg() -> Self {
        Self { use_tight_ubg: false, ..Self::default() }
    }

    /// Ablation: disable both bidirectional-DFS optimizations.
    pub fn without_bidir_optimizations() -> Self {
        Self {
            bidir: BidirOptions { prioritize_direction: false, order_neighbors: false },
            ..Self::default()
        }
    }
}

/// Per-phase measurements of one VUG run (the data behind Figs. 7, 8 and 10).
#[derive(Clone, Copy, Debug, Default)]
pub struct VugReport {
    /// Wall-clock time of the polarity-time computation plus the `G_q` scan
    /// (the paper reports these together as `QuickUBG`).
    pub quick_elapsed: Duration,
    /// Wall-clock time of the TCV computation plus the `G_t` scan
    /// (`TightUBG`).
    pub tight_elapsed: Duration,
    /// Wall-clock time of Escaped Edges Verification.
    pub eev_elapsed: Duration,
    /// Number of edges in the input graph.
    pub input_edges: usize,
    /// Number of edges in the quick upper-bound graph `G_q`.
    pub quick_edges: usize,
    /// Number of edges in the tight upper-bound graph `G_t`.
    pub tight_edges: usize,
    /// Number of edges in the resulting `tspG`.
    pub result_edges: usize,
    /// Number of vertices in the resulting `tspG`.
    pub result_vertices: usize,
    /// EEV counters (rule confirmations, searches, rejections).
    pub eev: EevStats,
    /// Approximate peak heap bytes of the run: `G_q` + TCV tables + `G_t`
    /// + result (the quantity reported for VUG in Fig. 7).
    pub approx_bytes: usize,
}

impl VugReport {
    /// Total wall-clock time of the run.
    pub fn total_elapsed(&self) -> Duration {
        self.quick_elapsed + self.tight_elapsed + self.eev_elapsed
    }

    /// Upper-bound ratio of `G_q` (`|tspG| / |G_q|`), 1.0 for empty bounds.
    pub fn quick_ratio(&self) -> f64 {
        ratio(self.result_edges, self.quick_edges)
    }

    /// Upper-bound ratio of `G_t` (`|tspG| / |G_t|`), 1.0 for empty bounds.
    pub fn tight_ratio(&self) -> f64 {
        ratio(self.result_edges, self.tight_edges)
    }
}

fn ratio(result: usize, bound: usize) -> f64 {
    if bound == 0 {
        1.0
    } else {
        result as f64 / bound as f64
    }
}

/// The full result of a VUG run: the `tspG` plus the phase report.
#[derive(Clone, Debug)]
pub struct VugResult {
    /// The temporal simple path graph of the query.
    pub tspg: EdgeSet,
    /// Per-phase measurements.
    pub report: VugReport,
}

/// Generates the temporal simple path graph of `(s, t, window)` over `graph`
/// with the default configuration (the published VUG algorithm).
pub fn generate_tspg(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
) -> VugResult {
    generate_tspg_with(graph, s, t, window, &VugConfig::default())
}

/// Generates the temporal simple path graph with an explicit configuration.
///
/// This is the one-shot face of the pipeline: it runs
/// `generate_tspg_scratch` with a cold [`QueryScratch`].
/// Callers answering many queries over one graph should use
/// [`crate::QueryEngine`] instead, which reuses the scratch across the
/// batch.
pub fn generate_tspg_with(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    config: &VugConfig,
) -> VugResult {
    generate_tspg_scratch(graph, s, t, window, config, &mut QueryScratch::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{figure1_expected_tspg_edges, figure1_graph, figure1_query};
    use tspg_graph::TemporalEdge;

    #[test]
    fn end_to_end_on_the_running_example() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let result = generate_tspg(&g, s, t, w);
        assert_eq!(result.tspg, EdgeSet::from_edges(figure1_expected_tspg_edges()));
        let r = &result.report;
        assert_eq!(r.input_edges, 14);
        assert_eq!(r.quick_edges, 8);
        assert_eq!(r.tight_edges, 5);
        assert_eq!(r.result_edges, 4);
        assert_eq!(r.result_vertices, 4);
        assert!(r.approx_bytes > 0);
        assert!(r.total_elapsed() >= r.quick_elapsed);
        assert!((r.quick_ratio() - 0.5).abs() < 1e-12);
        assert!((r.tight_ratio() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn every_configuration_gives_the_same_tspg() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let expected = generate_tspg(&g, s, t, w).tspg;
        for config in [
            VugConfig::full(),
            VugConfig::without_tight_ubg(),
            VugConfig::without_bidir_optimizations(),
        ] {
            let got = generate_tspg_with(&g, s, t, w, &config);
            assert_eq!(got.tspg, expected, "config {config:?}");
        }
    }

    #[test]
    fn skipping_tight_ubg_keeps_gq_as_gt() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let r = generate_tspg_with(&g, s, t, w, &VugConfig::without_tight_ubg());
        assert_eq!(r.report.tight_edges, r.report.quick_edges);
    }

    #[test]
    fn unreachable_and_degenerate_queries() {
        let g = figure1_graph();
        let (s, t, _) = figure1_query();
        let r = generate_tspg(&g, t, s, TimeInterval::new(2, 7));
        assert!(r.tspg.is_empty());
        let r = generate_tspg(&g, s, s, TimeInterval::new(2, 7));
        assert!(r.tspg.is_empty());
        let r = generate_tspg(&g, s, t, TimeInterval::new(3, 5));
        assert!(r.tspg.is_empty());
        let r = generate_tspg(&TemporalGraph::empty(2), 0, 1, TimeInterval::new(1, 2));
        assert!(r.tspg.is_empty());
        let r = generate_tspg(&g, 99, t, TimeInterval::new(2, 7));
        assert!(r.tspg.is_empty());
    }

    #[test]
    fn ratios_default_to_one_for_empty_bounds() {
        let r = VugReport::default();
        assert_eq!(r.quick_ratio(), 1.0);
        assert_eq!(r.tight_ratio(), 1.0);
    }

    #[test]
    fn agrees_with_naive_enumeration_and_baselines_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31337);
        for case in 0..60 {
            let n: u32 = rng.random_range(5..16);
            let m = rng.random_range(10..110);
            let edges: Vec<TemporalEdge> = (0..m)
                .map(|_| {
                    TemporalEdge::new(
                        rng.random_range(0..n),
                        rng.random_range(0..n),
                        rng.random_range(1..14),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = TemporalGraph::from_edges(n as usize, edges);
            let s = rng.random_range(0..n);
            let t = rng.random_range(0..n);
            if s == t {
                continue;
            }
            let w = TimeInterval::new(rng.random_range(1..4), rng.random_range(6..14));
            let vug = generate_tspg(&g, s, t, w);
            let naive = tspg_enum::naive_tspg(&g, s, t, w, &tspg_enum::Budget::unlimited());
            assert_eq!(vug.tspg, naive.tspg, "case {case}: VUG vs naive");
            for alg in tspg_baselines::EpAlgorithm::ALL {
                let ep = tspg_baselines::run_ep(alg, &g, s, t, w, &tspg_enum::Budget::unlimited());
                assert_eq!(vug.tspg, ep.tspg, "case {case}: VUG vs {alg}");
            }
            // Sandwich property: tspG ⊆ G_t ⊆ G_q.
            assert!(vug.report.result_edges <= vug.report.tight_edges);
            assert!(vug.report.tight_edges <= vug.report.quick_edges);
        }
    }
}
