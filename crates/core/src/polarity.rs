//! Polarity time computation (Algorithm 3).
//!
//! For the query `(s, t, [τ_b, τ_e])` every vertex `u` gets
//!
//! * an **earliest arrival time** `A(u)`: the smallest arrival time over all
//!   strict temporal paths from `s` to `u` within the window that do not
//!   pass through `t`, with the sentinel `A(s) = τ_b − 1`, and
//! * a **latest departure time** `D(u)`: the largest departure time over all
//!   strict temporal paths from `u` to `t` within the window that do not
//!   pass through `s`, with the sentinel `D(t) = τ_e + 1`.
//!
//! Unreachable vertices keep `None` (the paper's `+∞` / `−∞`).
//!
//! The computation is a label-correcting BFS over time-sorted adjacency —
//! `O(n + m)` — and is the reason `QuickUBG` beats the Dijkstra-based
//! `tgTSG` by the `O(log n)` factor examined in Exp-5 / Fig. 9.

use std::collections::VecDeque;
use tspg_graph::{TemporalGraph, TimeInterval, Timestamp, VertexId};

/// Earliest arrival and latest departure times of every vertex for one query.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PolarityTimes {
    /// `A(u)` per vertex; `None` encodes `+∞` (unreachable from `s`).
    pub arrival: Vec<Option<Timestamp>>,
    /// `D(u)` per vertex; `None` encodes `−∞` (cannot reach `t`).
    pub departure: Vec<Option<Timestamp>>,
}

impl PolarityTimes {
    /// Earliest arrival time of `u`, if `u` is reachable from the source.
    #[inline]
    pub fn arrival(&self, u: VertexId) -> Option<Timestamp> {
        self.arrival.get(u as usize).copied().flatten()
    }

    /// Latest departure time of `u`, if `u` can reach the target.
    #[inline]
    pub fn departure(&self, u: VertexId) -> Option<Timestamp> {
        self.departure.get(u as usize).copied().flatten()
    }

    /// Lemma 1: `true` iff the edge `e(u, v, τ)` lies on some strict temporal
    /// path from the source to the target within the window.
    #[inline]
    pub fn admits_edge(&self, u: VertexId, v: VertexId, time: Timestamp) -> bool {
        matches!(
            (self.arrival(u), self.departure(v)),
            (Some(a), Some(d)) if a < time && time < d
        )
    }

    /// Rough heap usage of the two label arrays.
    pub fn approx_bytes(&self) -> usize {
        (self.arrival.len() + self.departure.len()) * std::mem::size_of::<Option<Timestamp>>()
    }
}

/// Reusable traversal state of [`compute_polarity_into`]: the BFS queue and
/// the in-queue flags. One instance per worker amortises both allocations
/// across a whole batch of queries.
#[derive(Clone, Debug, Default)]
pub struct PolarityScratch {
    queue: VecDeque<VertexId>,
    queued: Vec<bool>,
}

/// Computes `A(u)` and `D(u)` for every vertex (Algorithm 3).
///
/// Out-of-range `s`/`t` yield all-`None` tables (the query is unanswerable).
pub fn compute_polarity(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
) -> PolarityTimes {
    let mut times = PolarityTimes::default();
    compute_polarity_into(graph, s, t, window, &mut times, &mut PolarityScratch::default());
    times
}

/// In-place variant of [`compute_polarity`]: writes the labels into `times`
/// and runs the two BFS passes out of `scratch`, so a warm caller performs
/// no allocation.
pub fn compute_polarity_into(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    times: &mut PolarityTimes,
    scratch: &mut PolarityScratch,
) {
    let n = graph.num_vertices();
    times.arrival.clear();
    times.arrival.resize(n, None);
    times.departure.clear();
    times.departure.resize(n, None);
    if (s as usize) >= n || (t as usize) >= n {
        return;
    }
    forward_pass(graph, s, Some(t), window, &mut times.arrival, scratch);
    backward_pass(graph, s, t, window, &mut times.departure, scratch);
}

/// Forward half of Algorithm 3: earliest arrival from `s` within `window`,
/// never relaxing into `avoid` (the query target, when there is one). The
/// caller has cleared and sized `arrival`.
fn forward_pass(
    graph: &TemporalGraph,
    s: VertexId,
    avoid: Option<VertexId>,
    window: TimeInterval,
    arrival: &mut [Option<Timestamp>],
    scratch: &mut PolarityScratch,
) {
    let queue = &mut scratch.queue;
    let queued = &mut scratch.queued;
    arrival[s as usize] = Some(window.begin() - 1);
    queue.clear();
    queue.push_back(s);
    queued.clear();
    queued.resize(arrival.len(), false);
    queued[s as usize] = true;
    while let Some(u) = queue.pop_front() {
        queued[u as usize] = false;
        let reach = arrival[u as usize].expect("queued vertices carry labels");
        for entry in graph.out_neighbors_in(u, window) {
            if Some(entry.neighbor) == avoid || entry.time <= reach {
                continue;
            }
            let v = entry.neighbor as usize;
            if arrival[v].is_none_or(|cur| entry.time < cur) {
                arrival[v] = Some(entry.time);
                // A vertex arriving exactly at τ_e cannot be extended further,
                // but other in-edges may still improve it, so it is re-queued
                // only when it can possibly relax someone else.
                if entry.time != window.end() && !queued[v] {
                    queued[v] = true;
                    queue.push_back(entry.neighbor);
                }
            }
        }
    }
}

/// Backward half of Algorithm 3: latest departure towards `t` within
/// `window`, never relaxing into `s`. The caller has cleared and sized
/// `departure`.
fn backward_pass(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    departure: &mut [Option<Timestamp>],
    scratch: &mut PolarityScratch,
) {
    let queue = &mut scratch.queue;
    let queued = &mut scratch.queued;
    departure[t as usize] = Some(window.end() + 1);
    queue.clear();
    queue.push_back(t);
    queued.clear();
    queued.resize(departure.len(), false);
    queued[t as usize] = true;
    while let Some(u) = queue.pop_front() {
        queued[u as usize] = false;
        let depart = departure[u as usize].expect("queued vertices carry labels");
        for entry in graph.in_neighbors_in(u, window) {
            if entry.neighbor == s || entry.time >= depart {
                continue;
            }
            let v = entry.neighbor as usize;
            if departure[v].is_none_or(|cur| entry.time > cur) {
                departure[v] = Some(entry.time);
                if entry.time != window.begin() && !queued[v] {
                    queued[v] = true;
                    queue.push_back(entry.neighbor);
                }
            }
        }
    }
}

/// The **target-agnostic** forward half of the polarity computation,
/// computed once per source over a group's *hull* window and shared across
/// every query of that source.
///
/// The forward pass of Algorithm 3 depends on the target only through the
/// "never relax into `t`" tightening. A frontier drops that tightening:
/// `A₀(u)` is the plain earliest arrival from `s` within the hull window,
/// so `A₀(u) ≤ A(u)` for every query target. Substituting `A₀` for `A`
/// admits a *superset* `H` of the edges Lemma 1 admits — a valid candidate
/// subgraph (`tspG ⊆ G_q ⊆ H ⊆ G`), but **not** a graph the rest of the
/// pipeline may consume as `G_q`: the EEV rule confirmations (Lemmas 2 and
/// 10) are proven under `G_q`'s avoid-`t`/avoid-`s` polarity invariants and
/// can falsely confirm cycle edges of `H` (e.g. an `H`-edge into `t` whose
/// only "paths" revisit `t`). Consumers therefore treat `H` as an *input
/// graph* and re-run the exact pipeline on it — `tspG(H) = tspG(G)` by the
/// Definition-2 containment argument, and `H` is `G_q`-sized, so the rerun
/// replaces the full-graph forward BFS and `O(m)` edge scan with work
/// proportional to the query's own neighbourhood.
///
/// **Window restriction is exact for same-begin windows.** A strict
/// temporal path arriving at time `τ` uses only edge times in
/// `[begin, τ]`, so for any member window `[begin, e]` with the frontier's
/// begin, clamping (`A₀(u)` kept iff `A₀(u) ≤ e`) yields precisely the
/// arrivals of a fresh target-agnostic pass over `[begin, e]`. Arbitrary
/// begins need the step function an [`ArrivalProfile`] records; a profile
/// clamp materializes exactly this frontier for any member window inside
/// the hull, which is why the planner groups units by source alone and
/// hulls their windows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceFrontier {
    source: VertexId,
    window: TimeInterval,
    /// `A₀(u)` per vertex over the hull window; `None` = unreachable.
    arrival: Vec<Option<Timestamp>>,
    /// Vertices with a label (including `s` itself), ascending — the scan
    /// list of the frontier-restricted `G_q` construction.
    reachable: Vec<VertexId>,
}

impl Default for SourceFrontier {
    /// An empty frontier (no vertex labelled) over the degenerate window
    /// `[0, 0]` — the rest state of a scratch slot that a profile clamp
    /// ([`ArrivalProfile::clamp_into`]) fills in place.
    fn default() -> Self {
        Self {
            source: 0,
            window: TimeInterval::point(0),
            arrival: Vec::new(),
            reachable: Vec::new(),
        }
    }
}

impl SourceFrontier {
    /// Runs the target-agnostic forward pass from `source` over `window`.
    ///
    /// An out-of-range source yields an empty frontier (no vertex labelled),
    /// mirroring [`compute_polarity`]'s all-`None` tables.
    pub fn compute(graph: &TemporalGraph, source: VertexId, window: TimeInterval) -> Self {
        let n = graph.num_vertices();
        let mut arrival = vec![None; n];
        if (source as usize) < n {
            forward_pass(
                graph,
                source,
                None,
                window,
                &mut arrival,
                &mut PolarityScratch::default(),
            );
        }
        let reachable =
            arrival.iter().enumerate().filter_map(|(v, a)| a.map(|_| v as VertexId)).collect();
        Self { source, window, arrival, reachable }
    }

    /// The source vertex the frontier was computed from.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The hull window the forward pass ran over.
    pub fn window(&self) -> TimeInterval {
        self.window
    }

    /// Vertices carrying an arrival label, ascending.
    pub fn reachable(&self) -> &[VertexId] {
        &self.reachable
    }

    /// `A₀(u)` over the hull window.
    #[inline]
    pub fn arrival(&self, u: VertexId) -> Option<Timestamp> {
        self.arrival.get(u as usize).copied().flatten()
    }

    /// Returns `true` if this frontier's forward pass can be restricted to
    /// `window` exactly: same begin, end within the hull.
    pub fn covers(&self, source: VertexId, window: TimeInterval) -> bool {
        self.source == source
            && self.window.begin() == window.begin()
            && self.window.contains_interval(&window)
    }
}

/// Frontier-sharing variant of [`compute_polarity_into`]: the forward
/// labels are *restricted* from the shared [`SourceFrontier`] (an `O(n)`
/// clamp instead of a BFS) and only the target-dependent backward pass
/// runs.
///
/// The restriction keeps `A₀(u)` iff `A₀(u) ≤ window.end()` — exact for
/// the frontier's begin (see [`SourceFrontier`]); the resulting tables
/// admit a superset of [`compute_polarity_into`]'s edges (the frontier does
/// not avoid the target), which the downstream EEV phase reduces to the
/// identical tspG.
///
/// # Panics
///
/// Panics if the frontier does not cover `(s, window)`.
pub fn compute_polarity_into_with_frontier(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    frontier: &SourceFrontier,
    times: &mut PolarityTimes,
    scratch: &mut PolarityScratch,
) {
    assert!(
        frontier.covers(s, window),
        "frontier over {} from vertex {} cannot answer ({s}, {t}, {window})",
        frontier.window,
        frontier.source,
    );
    let n = graph.num_vertices();
    times.departure.clear();
    times.departure.resize(n, None);
    times.arrival.clear();
    if (t as usize) >= n || (s as usize) >= n {
        times.arrival.resize(n, None);
        return;
    }
    let end = window.end();
    times.arrival.extend(frontier.arrival.iter().map(|a| a.filter(|&time| time <= end)));
    backward_pass(graph, s, t, window, &mut times.departure, scratch);
}

/// A per-source **arrival profile**: earliest arrival at every vertex as a
/// step function of the query's *start bound*, computed by one
/// target-agnostic forward pass over a hull window and clamped — exactly —
/// at any member `(begin, end)` inside that hull.
///
/// Where a [`SourceFrontier`] stores one arrival per vertex (valid for a
/// single shared begin), the profile stores per vertex the **Pareto front**
/// of `(first-edge time f, arrival a)` pairs over strict temporal walks
/// from the source inside the hull: `(f₁, a₁)` is dominated by `(f₂, a₂)`
/// iff `f₂ ≥ f₁ ∧ a₂ ≤ a₁` (a later start that arrives no later answers
/// every query the earlier start answers). Kept non-dominated, the front is
/// strictly ascending in both `f` and `a`, so for a member window
/// `[b, e] ⊆ hull` the earliest arrival at `v` is the *first* pair with
/// `f ≥ b`, kept iff its `a ≤ e` — a walk is valid in `[b, e]` iff its
/// strictly increasing edge times all lie in `[b, e]`, i.e. iff `f ≥ b`
/// and `a ≤ e`. Clamping therefore reproduces a fresh target-agnostic pass
/// over `[b, e]` for **every** begin in the hull, not just a shared one —
/// this is the earliest-arrival-as-function-of-start-bound formulation of
/// Huang et al.'s temporal traversals.
///
/// The resident representation is a flattened CSR (`starts`/`pairs`,
/// following the Kairos compact time-indexed-layout direction) so a cached
/// profile costs three dense arrays, accounted by
/// [`ArrivalProfile::approx_bytes`] in the engine's profile cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrivalProfile {
    source: VertexId,
    window: TimeInterval,
    /// CSR offsets into `pairs`, length `num_vertices + 1`.
    starts: Vec<u32>,
    /// Concatenated per-vertex Pareto fronts, each strictly ascending in
    /// both components.
    pairs: Vec<(Timestamp, Timestamp)>,
    /// Vertices with a non-empty front, plus the source itself, ascending.
    reachable: Vec<VertexId>,
}

impl ArrivalProfile {
    /// Runs the target-agnostic Pareto forward pass from `source` over the
    /// hull `window`.
    ///
    /// An out-of-range source yields an empty profile whose every clamp is
    /// the empty frontier, mirroring [`SourceFrontier::compute`].
    pub fn compute(graph: &TemporalGraph, source: VertexId, window: TimeInterval) -> Self {
        let n = graph.num_vertices();
        let mut fronts: Vec<Vec<(Timestamp, Timestamp)>> = vec![Vec::new(); n];
        if (source as usize) < n {
            let mut queue = VecDeque::new();
            let mut queued = vec![false; n];
            queue.push_back(source);
            queued[source as usize] = true;
            while let Some(u) = queue.pop_front() {
                queued[u as usize] = false;
                for entry in graph.out_neighbors_in(u, window) {
                    let v = entry.neighbor;
                    // Walks into the source are never useful: a fresh start
                    // at the outgoing edge dominates them (larger `f`, same
                    // arrival). Self-loops are dominated for the same reason.
                    if v == source || v == u {
                        continue;
                    }
                    let tau = entry.time;
                    let first = if u == source {
                        // Fresh start: the walk's first edge is this edge.
                        tau
                    } else {
                        // Best extendable walk into `u`: the last front pair
                        // arriving strictly before `tau` (fronts ascend in
                        // both components, so it carries the largest `f`).
                        let front = &fronts[u as usize];
                        let idx = front.partition_point(|&(_, a)| a < tau);
                        if idx == 0 {
                            continue;
                        }
                        front[idx - 1].0
                    };
                    if insert_front_pair(&mut fronts[v as usize], (first, tau))
                        && tau != window.end()
                        && !queued[v as usize]
                    {
                        // A pair arriving exactly at the hull end cannot
                        // extend any walk, so it never needs re-relaxing.
                        queued[v as usize] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        let mut starts = Vec::with_capacity(n + 1);
        let mut pairs = Vec::new();
        let mut reachable = Vec::new();
        starts.push(0u32);
        for (v, front) in fronts.iter().enumerate() {
            pairs.extend_from_slice(front);
            starts.push(pairs.len() as u32);
            if !front.is_empty() || (v as VertexId == source && (source as usize) < n) {
                reachable.push(v as VertexId);
            }
        }
        Self { source, window, starts, pairs, reachable }
    }

    /// The source vertex the profile was computed from.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The hull window the forward pass ran over.
    pub fn window(&self) -> TimeInterval {
        self.window
    }

    /// The Pareto front of `(first-edge time, arrival)` pairs at `v`.
    pub fn front(&self, v: VertexId) -> &[(Timestamp, Timestamp)] {
        let lo = self.starts[v as usize] as usize;
        let hi = self.starts[v as usize + 1] as usize;
        &self.pairs[lo..hi]
    }

    /// Returns `true` if clamping this profile at `window` is exact: same
    /// source, window inside the hull. Unlike [`SourceFrontier::covers`]
    /// the begin may differ — that is the point of the profile.
    pub fn covers(&self, source: VertexId, window: TimeInterval) -> bool {
        self.source == source && self.window.contains_interval(&window)
    }

    /// Rough heap usage of the flattened profile, for cache accounting.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.starts.len() * std::mem::size_of::<u32>()
            + self.pairs.len() * std::mem::size_of::<(Timestamp, Timestamp)>()
            + self.reachable.len() * std::mem::size_of::<VertexId>()
    }

    /// Allocating convenience wrapper around [`Self::clamp_into`].
    pub fn clamp(&self, window: TimeInterval) -> SourceFrontier {
        let mut out = SourceFrontier::default();
        self.clamp_into(window, &mut out);
        out
    }

    /// Clamps the profile at a member `window`, writing a [`SourceFrontier`]
    /// that is byte-identical to `SourceFrontier::compute` over that window
    /// — for every begin inside the hull. The frontier's own machinery
    /// (`covers`, `compute_polarity_into_with_frontier`, the candidate-edge
    /// scan) then applies unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover `window`.
    pub fn clamp_into(&self, window: TimeInterval, out: &mut SourceFrontier) {
        assert!(
            self.covers(self.source, window),
            "profile over {} from vertex {} cannot answer {window}",
            self.window,
            self.source,
        );
        let n = self.starts.len() - 1;
        out.source = self.source;
        out.window = window;
        out.arrival.clear();
        out.arrival.resize(n, None);
        out.reachable.clear();
        let (begin, end) = (window.begin(), window.end());
        for &v in &self.reachable {
            let arrival = if v == self.source {
                // The source carries the same sentinel a fresh pass writes.
                Some(begin - 1)
            } else {
                let front = self.front(v);
                let idx = front.partition_point(|&(f, _)| f < begin);
                front.get(idx).map(|&(_, a)| a).filter(|&a| a <= end)
            };
            if let Some(a) = arrival {
                out.arrival[v as usize] = Some(a);
                out.reachable.push(v);
            }
        }
    }
}

/// Inserts `pair` into a Pareto front kept strictly ascending in both
/// components; returns `false` (front untouched) when an existing pair
/// dominates it, and prunes the pairs it dominates otherwise.
fn insert_front_pair(
    front: &mut Vec<(Timestamp, Timestamp)>,
    pair: (Timestamp, Timestamp),
) -> bool {
    let (f, a) = pair;
    let idx = front.partition_point(|&(pf, _)| pf < f);
    // Ascending arrivals make `front[idx]` the sharpest pair with `pf ≥ f`:
    // if it does not dominate `(f, a)`, nothing later does either.
    if front.get(idx).is_some_and(|&(_, pa)| pa <= a) {
        return false;
    }
    // Pairs the newcomer dominates: earlier starts arriving no earlier
    // (a contiguous run ending at `idx`), plus an equal-`f` pair at `idx`
    // (which, having survived the check above, must arrive later).
    let hi = if front.get(idx).is_some_and(|&(pf, _)| pf == f) { idx + 1 } else { idx };
    let lo = front[..idx].partition_point(|&(_, pa)| pa < a);
    front.splice(lo..hi, [pair]);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{fig1, figure1_graph, figure1_query};
    use tspg_graph::TemporalEdge;

    #[test]
    fn matches_figure_3_tables() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let p = compute_polarity(&g, s, t, w);
        // Fig. 3(a)
        assert_eq!(p.arrival(fig1::S), Some(1));
        assert_eq!(p.arrival(fig1::A), Some(3));
        assert_eq!(p.arrival(fig1::B), Some(2));
        assert_eq!(p.arrival(fig1::C), Some(3));
        assert_eq!(p.arrival(fig1::D), Some(3));
        assert_eq!(p.arrival(fig1::E), Some(5));
        assert_eq!(p.arrival(fig1::F), Some(4));
        assert_eq!(p.arrival(fig1::T), None);
        // Fig. 3(b)
        assert_eq!(p.departure(fig1::T), Some(8));
        assert_eq!(p.departure(fig1::B), Some(6));
        assert_eq!(p.departure(fig1::C), Some(7));
        assert_eq!(p.departure(fig1::D), Some(2));
        assert_eq!(p.departure(fig1::E), Some(6));
        assert_eq!(p.departure(fig1::F), Some(5));
        assert_eq!(p.departure(fig1::A), None);
        assert_eq!(p.departure(fig1::S), None);
    }

    #[test]
    fn admits_edge_reproduces_example_4() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let p = compute_polarity(&g, s, t, w);
        // Excluded: e(s, a, 3) because D(a) = −∞, e(d, t, 2) because A(d) = 3 > 2.
        assert!(!p.admits_edge(fig1::S, fig1::A, 3));
        assert!(!p.admits_edge(fig1::D, fig1::T, 2));
        // Kept examples from Fig. 3(c).
        assert!(p.admits_edge(fig1::S, fig1::B, 2));
        assert!(p.admits_edge(fig1::C, fig1::T, 7));
        assert!(p.admits_edge(fig1::C, fig1::F, 4));
        // e(b, f, 5) fails the strict constraint: D(f) = 5 is not > 5.
        assert!(!p.admits_edge(fig1::B, fig1::F, 5));
    }

    #[test]
    fn window_narrowing_removes_labels() {
        let g = figure1_graph();
        let p = compute_polarity(&g, fig1::S, fig1::T, TimeInterval::new(3, 5));
        // With the window [3, 5] vertex b is only reachable at time... never:
        // the only edge into b inside the window is f -> b @5, and f is
        // reached at 4 (via s? s->b is at 2, outside). So b is unreachable.
        assert_eq!(p.arrival(fig1::B), None);
        assert_eq!(p.departure(fig1::T), Some(6));
    }

    #[test]
    fn out_of_range_endpoints_yield_empty_tables() {
        let g = figure1_graph();
        let p = compute_polarity(&g, 99, fig1::T, TimeInterval::new(2, 7));
        assert!(p.arrival.iter().all(Option::is_none));
        assert!(p.departure.iter().all(Option::is_none));
        assert!(!p.admits_edge(fig1::S, fig1::B, 2));
    }

    #[test]
    fn source_equals_target() {
        let g = figure1_graph();
        let p = compute_polarity(&g, fig1::S, fig1::S, TimeInterval::new(2, 7));
        // A(s) and D(s) both carry their sentinels; no edge can satisfy
        // Lemma 1 against the same vertex both ways unless a cycle exists.
        assert_eq!(p.arrival(fig1::S), Some(1));
        assert_eq!(p.departure(fig1::S), Some(8));
    }

    #[test]
    fn chain_graph_labels() {
        // 0 -1-> 1 -2-> 2 -3-> 3
        let g = TemporalGraph::from_edges(
            4,
            vec![
                TemporalEdge::new(0, 1, 1),
                TemporalEdge::new(1, 2, 2),
                TemporalEdge::new(2, 3, 3),
            ],
        );
        let p = compute_polarity(&g, 0, 3, TimeInterval::new(1, 3));
        assert_eq!(p.arrival(1), Some(1));
        assert_eq!(p.arrival(2), Some(2));
        assert_eq!(p.arrival(3), None); // never relaxed into t
        assert_eq!(p.departure(2), Some(3));
        assert_eq!(p.departure(1), Some(2));
        assert_eq!(p.departure(0), None); // never relaxed into s
        assert!(p.admits_edge(0, 1, 1));
        assert!(p.admits_edge(1, 2, 2));
        assert!(p.admits_edge(2, 3, 3));
    }

    #[test]
    fn frontier_arrival_lower_bounds_the_avoiding_pass() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let frontier = SourceFrontier::compute(&g, s, w);
        let p = compute_polarity(&g, s, t, w);
        assert_eq!(frontier.source(), s);
        assert_eq!(frontier.window(), w);
        for u in g.vertices() {
            if let Some(a) = p.arrival(u) {
                let a0 = frontier.arrival(u).expect("avoid-t reachability implies reachability");
                assert!(a0 <= a, "vertex {u}: A0={a0} must not exceed A={a}");
            }
        }
        // The frontier does not avoid t, so t itself gets a label here
        // (reachable via b@6 / c@7) even though A(t) is None by definition.
        assert_eq!(p.arrival(fig1::T), None);
        assert!(frontier.arrival(fig1::T).is_some());
        assert!(frontier.reachable().contains(&fig1::T));
        assert!(frontier.reachable().windows(2).all(|p| p[0] < p[1]), "ascending");
    }

    #[test]
    fn frontier_restriction_equals_a_fresh_pass_on_same_begin_windows() {
        // For every narrower same-begin window, clamping the hull frontier
        // must equal a fresh target-agnostic pass over that window.
        let g = figure1_graph();
        let hull = TimeInterval::new(2, 7);
        let frontier = SourceFrontier::compute(&g, fig1::S, hull);
        for end in 2..=7 {
            let member = TimeInterval::new(2, end);
            let fresh = SourceFrontier::compute(&g, fig1::S, member);
            for u in g.vertices() {
                let clamped = frontier.arrival(u).filter(|&a| a <= end);
                assert_eq!(clamped, fresh.arrival(u), "vertex {u}, end {end}");
            }
        }
    }

    #[test]
    fn frontier_polarity_departure_matches_the_direct_pass() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let frontier = SourceFrontier::compute(&g, s, w);
        let direct = compute_polarity(&g, s, t, w);
        let mut times = PolarityTimes::default();
        let mut scratch = PolarityScratch::default();
        for end in [5, 7] {
            let member = TimeInterval::new(2, end);
            compute_polarity_into_with_frontier(
                &g,
                s,
                t,
                member,
                &frontier,
                &mut times,
                &mut scratch,
            );
            if end == 7 {
                assert_eq!(times.departure, direct.departure, "backward pass is untouched");
            }
            // Every admitted edge of the avoiding pass stays admitted: the
            // frontier tables bound the exact ones from below.
            let exact = compute_polarity(&g, s, t, member);
            for e in g.edges() {
                if exact.admits_edge(e.src, e.dst, e.time) {
                    assert!(times.admits_edge(e.src, e.dst, e.time), "{e:?} lost at end={end}");
                }
            }
        }
    }

    #[test]
    fn frontier_covers_checks_source_and_window() {
        let g = figure1_graph();
        let frontier = SourceFrontier::compute(&g, fig1::S, TimeInterval::new(2, 7));
        assert!(frontier.covers(fig1::S, TimeInterval::new(2, 7)));
        assert!(frontier.covers(fig1::S, TimeInterval::new(2, 4)));
        assert!(!frontier.covers(fig1::B, TimeInterval::new(2, 7)), "different source");
        assert!(!frontier.covers(fig1::S, TimeInterval::new(3, 7)), "different begin");
        assert!(!frontier.covers(fig1::S, TimeInterval::new(2, 9)), "end beyond the hull");
    }

    #[test]
    #[should_panic(expected = "cannot answer")]
    fn frontier_polarity_rejects_uncovered_windows() {
        let g = figure1_graph();
        let frontier = SourceFrontier::compute(&g, fig1::S, TimeInterval::new(2, 5));
        compute_polarity_into_with_frontier(
            &g,
            fig1::S,
            fig1::T,
            TimeInterval::new(2, 7),
            &frontier,
            &mut PolarityTimes::default(),
            &mut PolarityScratch::default(),
        );
    }

    #[test]
    fn out_of_range_frontier_source_is_empty() {
        let g = figure1_graph();
        let frontier = SourceFrontier::compute(&g, 99, TimeInterval::new(2, 7));
        assert!(frontier.reachable().is_empty());
        assert_eq!(frontier.arrival(fig1::S), None);
    }

    #[test]
    fn profile_clamp_equals_a_fresh_frontier_for_every_subwindow() {
        // The tentpole identity on the paper's running example: clamping
        // the hull profile at *any* (begin, end) inside the hull is
        // byte-identical to a fresh target-agnostic pass over that window.
        let g = figure1_graph();
        let hull = TimeInterval::new(2, 7);
        let profile = ArrivalProfile::compute(&g, fig1::S, hull);
        assert_eq!(profile.source(), fig1::S);
        assert_eq!(profile.window(), hull);
        for begin in 2..=7 {
            for end in begin..=7 {
                let member = TimeInterval::new(begin, end);
                let fresh = SourceFrontier::compute(&g, fig1::S, member);
                assert_eq!(profile.clamp(member), fresh, "window {member}");
            }
        }
    }

    #[test]
    fn profile_fronts_are_pareto_ordered() {
        let g = figure1_graph();
        let profile = ArrivalProfile::compute(&g, fig1::S, TimeInterval::new(2, 7));
        let mut labelled = 0;
        for v in g.vertices() {
            let front = profile.front(v);
            labelled += usize::from(!front.is_empty());
            assert!(
                front.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1),
                "front of {v} not strictly ascending: {front:?}"
            );
            assert!(front.iter().all(|&(f, a)| f <= a), "first edge after arrival at {v}");
        }
        assert!(labelled > 0, "figure 1 reaches vertices from s");
        assert!(profile.reachable.contains(&fig1::S), "source is always reachable");
        assert!(profile.approx_bytes() > 0);
    }

    #[test]
    fn profile_covers_any_begin_inside_the_hull() {
        let g = figure1_graph();
        let profile = ArrivalProfile::compute(&g, fig1::S, TimeInterval::new(2, 7));
        assert!(profile.covers(fig1::S, TimeInterval::new(2, 7)));
        assert!(profile.covers(fig1::S, TimeInterval::new(4, 6)), "begins may differ");
        assert!(!profile.covers(fig1::B, TimeInterval::new(2, 7)), "different source");
        assert!(!profile.covers(fig1::S, TimeInterval::new(1, 7)), "begin before the hull");
        assert!(!profile.covers(fig1::S, TimeInterval::new(2, 9)), "end beyond the hull");
    }

    #[test]
    #[should_panic(expected = "cannot answer")]
    fn profile_clamp_rejects_uncovered_windows() {
        let g = figure1_graph();
        let profile = ArrivalProfile::compute(&g, fig1::S, TimeInterval::new(3, 5));
        profile.clamp(TimeInterval::new(2, 5));
    }

    #[test]
    fn out_of_range_profile_source_clamps_to_the_empty_frontier() {
        let g = figure1_graph();
        let profile = ArrivalProfile::compute(&g, 99, TimeInterval::new(2, 7));
        let clamped = profile.clamp(TimeInterval::new(3, 5));
        assert!(clamped.reachable().is_empty());
        assert_eq!(clamped.arrival(fig1::S), None);
    }

    #[test]
    fn profile_clamp_equals_fresh_frontiers_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xa881);
        for case in 0..25 {
            let n = rng.random_range(5..30);
            let m = rng.random_range(10..150);
            let tmax = rng.random_range(4..24);
            let edges: Vec<TemporalEdge> = (0..m)
                .map(|_| {
                    TemporalEdge::new(
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(1..=tmax),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = TemporalGraph::from_edges(n, edges);
            let s = rng.random_range(0..n) as VertexId;
            let hull = TimeInterval::new(1, tmax);
            let profile = ArrivalProfile::compute(&g, s, hull);
            for begin in 1..=tmax {
                for end in begin..=tmax {
                    let member = TimeInterval::new(begin, end);
                    let fresh = SourceFrontier::compute(&g, s, member);
                    assert_eq!(profile.clamp(member), fresh, "case {case}, window {member}");
                }
            }
        }
    }

    #[test]
    fn agrees_with_dijkstra_baseline_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for case in 0..30 {
            let n = rng.random_range(5..40);
            let m = rng.random_range(10..200);
            let tmax = rng.random_range(4..30);
            let edges: Vec<TemporalEdge> = (0..m)
                .map(|_| {
                    TemporalEdge::new(
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(0..n) as VertexId,
                        rng.random_range(1..=tmax),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = TemporalGraph::from_edges(n, edges);
            let s = rng.random_range(0..n) as VertexId;
            let t = rng.random_range(0..n) as VertexId;
            let b = rng.random_range(1..=tmax);
            let w = TimeInterval::new(b, (b + rng.random_range(0..10)).min(tmax));
            let ours = compute_polarity(&g, s, t, w);
            let (a_ref, d_ref) = tspg_baselines::tg_polarity(&g, s, t, w);
            assert_eq!(ours.arrival, a_ref, "arrival mismatch in case {case}");
            assert_eq!(ours.departure, d_ref, "departure mismatch in case {case}");
        }
    }
}
