//! Tight upper-bound graph generation (Algorithm 5).
//!
//! `TightUBG` shrinks the quick upper-bound graph `G_q` using the simple
//! path constraint: an edge `e(u, v, τ)` with `u ≠ s` and `v ≠ t` can only
//! lie on a temporal simple path from `s` to `t` if some prefix path into
//! `u` and some suffix path out of `v` are vertex-disjoint, and a necessary
//! condition for that is the disjointness of the corresponding time-stream
//! common vertex sets (Lemma 3). Thanks to Lemma 8 only one intersection —
//! at the extreme timestamps `τ_l = max{T_in(u) < τ}` and
//! `τ_r = min{T_out(v) > τ}` — has to be checked per edge, so the whole pass
//! is `O(n + θ·m)`.

use crate::tcv::TcvTables;
use tspg_graph::{TemporalGraph, VertexId};

/// Builds `G_t` from `G_q` and precomputed TCV tables (Algorithm 5 /
/// Lemma 9).
pub fn tight_upper_bound_graph_from(
    gq: &TemporalGraph,
    tcv: &TcvTables,
    s: VertexId,
    t: VertexId,
) -> TemporalGraph {
    gq.edge_induced(|_, e| keep_edge(tcv, s, t, e))
}

/// In-place variant of [`tight_upper_bound_graph_from`]: rebuilds `out` as
/// `G_t`, reusing its storage (allocation-free once warm).
pub fn tight_upper_bound_graph_into(
    gq: &TemporalGraph,
    tcv: &TcvTables,
    s: VertexId,
    t: VertexId,
    out: &mut TemporalGraph,
) {
    out.assign_edge_induced(gq, |_, e| keep_edge(tcv, s, t, e));
}

/// The per-edge retention test of Algorithm 5.
fn keep_edge(tcv: &TcvTables, s: VertexId, t: VertexId, e: &tspg_graph::TemporalEdge) -> bool {
    if e.src == s || e.dst == t {
        // Lemma 2 case ii): edges incident to the query endpoints are
        // always retained (and are in fact already part of the tspG).
        return true;
    }
    // Lemma 8: it suffices to test the latest prefix entry of u strictly
    // before τ against the earliest suffix entry of v strictly after τ.
    let forward = tcv.forward(e.src, e.time - 1);
    let backward = tcv.backward(e.dst, e.time + 1);
    forward.is_disjoint(&backward)
}

/// Computes the TCV tables and builds `G_t` in one call.
pub fn tight_upper_bound_graph(gq: &TemporalGraph, s: VertexId, t: VertexId) -> TemporalGraph {
    let tcv = TcvTables::compute(gq, s, t);
    tight_upper_bound_graph_from(gq, &tcv, s, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quick_ubg::quick_upper_bound_graph;
    use tspg_graph::fixtures::{fig1, figure1_graph, figure1_query};
    use tspg_graph::{EdgeSet, TemporalEdge, TimeInterval};

    #[test]
    fn reproduces_figure_4c() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = quick_upper_bound_graph(&g, s, t, w);
        let gt = tight_upper_bound_graph(&gq, s, t);
        let expected = EdgeSet::from_edges(vec![
            TemporalEdge::new(fig1::S, fig1::B, 2),
            TemporalEdge::new(fig1::B, fig1::C, 3),
            TemporalEdge::new(fig1::C, fig1::F, 4), // kept: TCV_3(s,c) ∩ TCV_5(f,t) = ∅ (Example 8)
            TemporalEdge::new(fig1::B, fig1::T, 6),
            TemporalEdge::new(fig1::C, fig1::T, 7),
        ]);
        assert_eq!(EdgeSet::from_graph(&gt), expected);
        // The cycle edges e(e,c,6), e(f,e,5), e(f,b,5) are pruned by the
        // simple-path constraint, which no baseline upper bound achieves.
        assert!(!gt.has_edge(fig1::E, fig1::C, 6));
        assert!(!gt.has_edge(fig1::F, fig1::E, 5));
        assert!(!gt.has_edge(fig1::F, fig1::B, 5));
    }

    #[test]
    fn gt_is_sandwiched_between_tspg_and_gq() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = quick_upper_bound_graph(&g, s, t, w);
        let gt = tight_upper_bound_graph(&gq, s, t);
        let gq_set = EdgeSet::from_graph(&gq);
        let gt_set = EdgeSet::from_graph(&gt);
        let tspg = EdgeSet::from_edges(tspg_graph::fixtures::figure1_expected_tspg_edges());
        assert!(tspg.is_subset_of(&gt_set));
        assert!(gt_set.is_subset_of(&gq_set));
    }

    #[test]
    fn gt_is_an_upper_bound_on_random_graphs() {
        // G_t must contain the exact tspG (computed by brute force) and be
        // contained in G_q, for every random query.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        for case in 0..60 {
            let n: u32 = rng.random_range(4..14);
            let m = rng.random_range(8..80);
            let edges: Vec<TemporalEdge> = (0..m)
                .map(|_| {
                    TemporalEdge::new(
                        rng.random_range(0..n),
                        rng.random_range(0..n),
                        rng.random_range(1..12),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = tspg_graph::TemporalGraph::from_edges(n as usize, edges);
            let s = rng.random_range(0..n);
            let t = rng.random_range(0..n);
            if s == t {
                continue;
            }
            let w = TimeInterval::new(1, rng.random_range(2..12));
            let gq = quick_upper_bound_graph(&g, s, t, w);
            let gt = tight_upper_bound_graph(&gq, s, t);
            let gq_set = EdgeSet::from_graph(&gq);
            let gt_set = EdgeSet::from_graph(&gt);
            assert!(gt_set.is_subset_of(&gq_set), "case {case}: G_t ⊄ G_q");
            let exact = tspg_enum::naive_tspg(&g, s, t, w, &tspg_enum::Budget::unlimited()).tspg;
            assert!(
                exact.is_subset_of(&gt_set),
                "case {case}: tspG ⊄ G_t (missing {:?})",
                exact.difference(&gt_set)
            );
        }
    }

    #[test]
    fn empty_gq_yields_empty_gt() {
        let gq = tspg_graph::TemporalGraph::empty(4);
        let gt = tight_upper_bound_graph(&gq, 0, 3);
        assert!(gt.is_empty());
    }
}
