//! Escaped Edges Verification (Algorithm 6).
//!
//! EEV turns the tight upper-bound graph `G_t` into the exact `tspG` while
//! avoiding a full path enumeration:
//!
//! 1. Every edge incident to the source or the target is part of the result
//!    outright (Lemma 2).
//! 2. Every edge `e(u, v, τ)` that is directly "covered" by a source edge
//!    `e(s, u, τ') , τ' < τ` or a target edge `e(v, t, τ'), τ' > τ` is part
//!    of the result outright (Lemma 10).
//! 3. Each remaining unverified edge seeds one bidirectional DFS
//!    ([`crate::bidir`]); if a witness temporal simple path is found, every
//!    edge on it — and every parallel edge that could replace one of its
//!    edges while keeping the path valid (Lemma 11) — is confirmed in one
//!    batch. If no witness exists the edge is discarded.

use crate::bidir::{BidirOptions, BidirScratch, BidirSearcher, BidirStats};
use tspg_graph::{EdgeId, EdgeSet, TemporalGraph, TimeInterval, Timestamp, VertexId};

/// Reusable working state of one EEV run: edge flags, the Lemma 10 cover
/// tables, the witness-path buffers and the bidirectional-DFS scratch.
///
/// One instance per worker makes repeated EEV runs allocation-free apart
/// from the returned [`EdgeSet`] (which is the query's result and has to be
/// owned by the caller).
#[derive(Clone, Debug, Default)]
pub struct EevScratch {
    verified: Vec<bool>,
    in_result: Vec<bool>,
    earliest_from_s: Vec<Option<Timestamp>>,
    latest_to_t: Vec<Option<Timestamp>>,
    path: Vec<EdgeId>,
    path_times: Vec<Timestamp>,
    bidir: BidirScratch,
}

/// Counters describing one EEV run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EevStats {
    /// Edges confirmed by Lemma 2 (incident to `s` or `t`).
    pub confirmed_by_endpoints: u64,
    /// Edges confirmed by Lemma 10 (covered by a source/target edge).
    pub confirmed_by_cover: u64,
    /// Edges confirmed because they lie on (or can replace an edge of) a
    /// witness path found by the bidirectional DFS (Lemma 11).
    pub confirmed_by_search: u64,
    /// Edges of `G_t` proven *not* to belong to the tspG (no witness path).
    pub rejected: u64,
    /// Bidirectional DFS counters.
    pub bidir: BidirStats,
}

impl EevStats {
    /// Total number of edges placed in the result.
    pub fn confirmed(&self) -> u64 {
        self.confirmed_by_endpoints + self.confirmed_by_cover + self.confirmed_by_search
    }
}

/// The result of Escaped Edges Verification.
#[derive(Clone, Debug)]
pub struct EevOutcome {
    /// The exact temporal simple path graph.
    pub tspg: EdgeSet,
    /// Run counters.
    pub stats: EevStats,
}

/// Runs EEV over the tight upper-bound graph `gt` (Algorithm 6).
pub fn escaped_edges_verification(
    gt: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    options: BidirOptions,
) -> EevOutcome {
    escaped_edges_verification_with(gt, s, t, window, options, true)
}

/// Runs EEV with explicit control over the Lemma 10 pre-confirmation rule.
///
/// The cover rule is only *sound* when the input graph is a genuine tight
/// upper-bound graph (its proof relies on the TCV disjointness guaranteed by
/// Lemma 9). When EEV is run directly on `G_q` — the "skip TightUBG"
/// ablation — pass `input_is_tight = false` so that only the always-sound
/// Lemma 2 rule and the witness search are used.
pub fn escaped_edges_verification_with(
    gt: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    options: BidirOptions,
    input_is_tight: bool,
) -> EevOutcome {
    escaped_edges_verification_scratch(
        gt,
        s,
        t,
        window,
        options,
        input_is_tight,
        &mut EevScratch::default(),
    )
}

/// Scratch-reusing variant of [`escaped_edges_verification_with`]: all
/// working state lives in `scratch`, so a warm caller only allocates the
/// returned result set.
pub fn escaped_edges_verification_scratch(
    gt: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    options: BidirOptions,
    input_is_tight: bool,
    scratch: &mut EevScratch,
) -> EevOutcome {
    let m = gt.num_edges();
    let mut stats = EevStats::default();

    if m == 0 || s == t || (s as usize) >= gt.num_vertices() || (t as usize) >= gt.num_vertices() {
        return EevOutcome { tspg: EdgeSet::new(), stats };
    }

    let verified = &mut scratch.verified;
    verified.clear();
    verified.resize(m, false);
    let in_result = &mut scratch.in_result;
    in_result.clear();
    in_result.resize(m, false);

    // Lemma 10 needs, per vertex, the earliest source edge into it and the
    // latest target edge out of it (restricted to G_t).
    let earliest_from_s = &mut scratch.earliest_from_s;
    earliest_from_s.clear();
    earliest_from_s.resize(gt.num_vertices(), None);
    for entry in gt.out_neighbors(s) {
        let slot = &mut earliest_from_s[entry.neighbor as usize];
        if slot.is_none_or(|cur| entry.time < cur) {
            *slot = Some(entry.time);
        }
    }
    let latest_to_t = &mut scratch.latest_to_t;
    latest_to_t.clear();
    latest_to_t.resize(gt.num_vertices(), None);
    for entry in gt.in_neighbors(t) {
        let slot = &mut latest_to_t[entry.neighbor as usize];
        if slot.is_none_or(|cur| entry.time > cur) {
            *slot = Some(entry.time);
        }
    }

    // Lines 2-5: pre-confirmation by Lemmas 2 and 10.
    for (id, edge) in gt.edges().iter().enumerate() {
        if edge.src == s || edge.dst == t {
            verified[id] = true;
            in_result[id] = true;
            stats.confirmed_by_endpoints += 1;
        } else if input_is_tight
            && (earliest_from_s[edge.src as usize].is_some_and(|tau| tau < edge.time)
                || latest_to_t[edge.dst as usize].is_some_and(|tau| tau > edge.time))
        {
            verified[id] = true;
            in_result[id] = true;
            stats.confirmed_by_cover += 1;
        }
    }

    // Lines 6-19: witness search for the remaining edges.
    let mut searcher =
        BidirSearcher::with_scratch(gt, s, t, window, options, std::mem::take(&mut scratch.bidir));
    for id in 0..m as EdgeId {
        if verified[id as usize] {
            continue;
        }
        verified[id as usize] = true;
        if !searcher.find_path_through_into(id, &mut scratch.path) {
            stats.rejected += 1;
            continue;
        }
        confirm_along_path(
            gt,
            &scratch.path,
            window,
            &mut scratch.path_times,
            verified,
            in_result,
            &mut stats,
        );
        debug_assert!(in_result[id as usize], "the seed edge lies on its own witness path");
    }
    stats.bidir = searcher.stats();
    scratch.bidir = searcher.into_scratch();

    // tspg-lint: allow(hot-alloc-transitive) — answer materialization: the returned tspG must own its edges beyond the scratch's lifetime, one allocation per answer, not per step
    let tspg = EdgeSet::from_edges(
        gt.edges().iter().enumerate().filter(|(id, _)| in_result[*id]).map(|(_, e)| *e),
    );
    EevOutcome { tspg, stats }
}

/// Lemma 11: confirms every edge of the witness path plus every parallel
/// edge that can replace one of them while keeping the path a temporal
/// simple path from `s` to `t` within the window.
fn confirm_along_path(
    gt: &TemporalGraph,
    path: &[EdgeId],
    window: TimeInterval,
    times: &mut Vec<Timestamp>,
    verified: &mut [bool],
    in_result: &mut [bool],
    stats: &mut EevStats,
) {
    times.clear();
    times.extend(path.iter().map(|&id| gt.edge(id).time));
    for (pos, &id) in path.iter().enumerate() {
        let edge = gt.edge(id);
        // Replacement bounds: strictly between the neighbouring edges'
        // timestamps, or the window endpoints for the first / last position.
        let lower = if pos == 0 { window.begin() - 1 } else { times[pos - 1] };
        let upper = if pos + 1 == path.len() { window.end() + 1 } else { times[pos + 1] };
        for entry in gt.out_neighbors(edge.src) {
            if entry.neighbor != edge.dst {
                continue;
            }
            if entry.time <= lower || entry.time >= upper {
                continue;
            }
            let pid = entry.edge as usize;
            if !in_result[pid] {
                in_result[pid] = true;
                if !verified[pid] {
                    stats.confirmed_by_search += 1;
                } else {
                    // The edge was already processed (e.g. rejected is
                    // impossible here, but it may have been the current
                    // seed); count it as confirmed by search.
                    stats.confirmed_by_search += 1;
                }
                verified[pid] = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quick_ubg::quick_upper_bound_graph;
    use crate::tight_ubg::tight_upper_bound_graph;
    use tspg_graph::fixtures::{figure1_expected_tspg_edges, figure1_graph, figure1_query};
    use tspg_graph::TemporalEdge;

    fn run_on_figure1() -> EevOutcome {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let gq = quick_upper_bound_graph(&g, s, t, w);
        let gt = tight_upper_bound_graph(&gq, s, t);
        escaped_edges_verification(&gt, s, t, w, BidirOptions::default())
    }

    #[test]
    fn produces_the_exact_tspg_of_figure_1c() {
        let out = run_on_figure1();
        let expected = EdgeSet::from_edges(figure1_expected_tspg_edges());
        assert_eq!(out.tspg, expected);
        assert_eq!(out.tspg.num_vertices(), 4);
    }

    #[test]
    fn rule_based_confirmation_covers_most_of_the_example() {
        let out = run_on_figure1();
        // e(s,b,2), e(b,t,6), e(c,t,7) by Lemma 2; e(b,c,3) by Lemma 10
        // (covered by e(s,b,2)); e(c,f,4) is the only searched edge and it
        // is rejected.
        assert_eq!(out.stats.confirmed_by_endpoints, 3);
        assert_eq!(out.stats.confirmed_by_cover, 1);
        assert_eq!(out.stats.confirmed_by_search, 0);
        assert_eq!(out.stats.rejected, 1);
        assert_eq!(out.stats.bidir.searches, 1);
        assert_eq!(out.stats.confirmed(), 4);
    }

    #[test]
    fn empty_gt_gives_empty_result() {
        let gt = TemporalGraph::empty(3);
        let out =
            escaped_edges_verification(&gt, 0, 2, TimeInterval::new(1, 5), BidirOptions::default());
        assert!(out.tspg.is_empty());
        assert_eq!(out.stats.confirmed(), 0);
    }

    #[test]
    fn lemma_11_batches_parallel_edges() {
        // A chain s -> a -> b -> t where the middle hop has three parallel
        // edges, all replaceable within the neighbouring timestamps; one
        // witness search must confirm all of them.
        let g = TemporalGraph::from_edges(
            4,
            vec![
                TemporalEdge::new(0, 1, 1),
                TemporalEdge::new(1, 2, 3),
                TemporalEdge::new(1, 2, 4),
                TemporalEdge::new(1, 2, 5),
                TemporalEdge::new(2, 3, 7),
            ],
        );
        let w = TimeInterval::new(1, 7);
        let gq = quick_upper_bound_graph(&g, 0, 3, w);
        let gt = tight_upper_bound_graph(&gq, 0, 3);
        let out = escaped_edges_verification(&gt, 0, 3, w, BidirOptions::default());
        assert_eq!(out.tspg.num_edges(), 5);
        // The three parallel edges are covered by Lemma 10 (e(s,a,1) exists
        // with a smaller timestamp), so no search is even needed.
        assert_eq!(out.stats.bidir.searches, 0);
    }

    #[test]
    fn witness_search_path_batching_kicks_in_on_longer_chains() {
        // s -> a -> b -> c -> d -> t with parallel edges on the middle hop
        // (b -> c): those are neither incident to s/t nor covered by
        // Lemma 10, so they require a witness search; a single search must
        // confirm both parallel edges thanks to Lemma 11.
        let g = TemporalGraph::from_edges(
            6,
            vec![
                TemporalEdge::new(0, 1, 1),
                TemporalEdge::new(1, 2, 2),
                TemporalEdge::new(2, 3, 3),
                TemporalEdge::new(2, 3, 4),
                TemporalEdge::new(3, 4, 5),
                TemporalEdge::new(4, 5, 6),
            ],
        );
        let w = TimeInterval::new(1, 6);
        let gq = quick_upper_bound_graph(&g, 0, 5, w);
        let gt = tight_upper_bound_graph(&gq, 0, 5);
        let out = escaped_edges_verification(&gt, 0, 5, w, BidirOptions::default());
        assert_eq!(out.tspg.num_edges(), 6);
        assert_eq!(out.stats.bidir.searches, 1, "one search must confirm both parallel edges");
        assert!(out.stats.confirmed_by_search >= 2);
    }

    #[test]
    fn matches_naive_enumeration_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4242);
        for case in 0..80 {
            let n: u32 = rng.random_range(4..14);
            let m = rng.random_range(8..90);
            let edges: Vec<TemporalEdge> = (0..m)
                .map(|_| {
                    TemporalEdge::new(
                        rng.random_range(0..n),
                        rng.random_range(0..n),
                        rng.random_range(1..12),
                    )
                })
                .filter(|e| e.src != e.dst)
                .collect();
            let g = TemporalGraph::from_edges(n as usize, edges);
            let s = rng.random_range(0..n);
            let t = rng.random_range(0..n);
            if s == t {
                continue;
            }
            let w = TimeInterval::new(1, rng.random_range(2..12));
            let expected = tspg_enum::naive_tspg(&g, s, t, w, &tspg_enum::Budget::unlimited()).tspg;
            let gq = quick_upper_bound_graph(&g, s, t, w);
            let gt = tight_upper_bound_graph(&gq, s, t);
            let got = escaped_edges_verification(&gt, s, t, w, BidirOptions::default()).tspg;
            assert_eq!(got, expected, "case {case}: EEV disagrees with enumeration");
        }
    }
}
