//! The end-to-end baselines `EPdtTSG`, `EPesTSG` and `EPtgTSG`.
//!
//! Each baseline builds one of the three upper-bound graphs and then runs
//! the exhaustive temporal simple path enumeration of `tspg-enum` on it,
//! unioning the paths into the final `tspG`. Phase timings, search counters
//! and an approximate memory footprint are reported so that the experiment
//! harness can reproduce Figs. 5–7.

use crate::{dt_tsg, es_tsg, tg_tsg};
use std::fmt;
use std::time::{Duration, Instant};
use tspg_enum::{naive_tspg, Budget, SearchStats};
use tspg_graph::{EdgeSet, TemporalGraph, TimeInterval, VertexId};

/// Which upper-bound graph the baseline uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EpAlgorithm {
    /// `EPdtTSG`: enumeration on the projected graph.
    DtTsg,
    /// `EPesTSG`: enumeration on the non-decreasing-walk reduction.
    EsTsg,
    /// `EPtgTSG`: enumeration on the strict-ascent (Dijkstra) reduction.
    TgTsg,
}

impl EpAlgorithm {
    /// All three baselines, in the order the paper lists them.
    pub const ALL: [EpAlgorithm; 3] = [EpAlgorithm::DtTsg, EpAlgorithm::EsTsg, EpAlgorithm::TgTsg];

    /// The paper's name for the baseline.
    pub fn name(&self) -> &'static str {
        match self {
            EpAlgorithm::DtTsg => "EPdtTSG",
            EpAlgorithm::EsTsg => "EPesTSG",
            EpAlgorithm::TgTsg => "EPtgTSG",
        }
    }

    /// The name of the underlying upper-bound graph construction.
    pub fn upper_bound_name(&self) -> &'static str {
        match self {
            EpAlgorithm::DtTsg => "dtTSG",
            EpAlgorithm::EsTsg => "esTSG",
            EpAlgorithm::TgTsg => "tgTSG",
        }
    }

    /// Builds this baseline's upper-bound graph.
    pub fn upper_bound(
        &self,
        graph: &TemporalGraph,
        s: VertexId,
        t: VertexId,
        window: TimeInterval,
    ) -> TemporalGraph {
        match self {
            EpAlgorithm::DtTsg => dt_tsg(graph, window),
            EpAlgorithm::EsTsg => es_tsg(graph, s, t, window),
            EpAlgorithm::TgTsg => tg_tsg(graph, s, t, window),
        }
    }
}

impl fmt::Display for EpAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The result of one baseline run.
#[derive(Clone, Debug)]
pub struct EpResult {
    /// Which baseline produced this result.
    pub algorithm: EpAlgorithm,
    /// Number of edges in the upper-bound graph of stage 1.
    pub upper_bound_edges: usize,
    /// The generated temporal simple path graph.
    pub tspg: EdgeSet,
    /// Counters of the enumeration stage.
    pub enumeration: SearchStats,
    /// Wall-clock time of the upper-bound graph construction.
    pub upper_bound_elapsed: Duration,
    /// Wall-clock time of the enumeration stage.
    pub enumeration_elapsed: Duration,
    /// Approximate peak bytes: upper-bound graph plus explicitly stored
    /// paths plus the result (the quantity plotted in Fig. 7).
    pub approx_bytes: usize,
}

impl EpResult {
    /// Total wall-clock time of the run.
    pub fn total_elapsed(&self) -> Duration {
        self.upper_bound_elapsed + self.enumeration_elapsed
    }

    /// `true` if the enumeration finished within budget and the output is
    /// therefore the exact `tspG`.
    pub fn is_exact(&self) -> bool {
        self.enumeration.status.is_complete()
    }
}

/// Runs one baseline end to end.
pub fn run_ep(
    algorithm: EpAlgorithm,
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    budget: &Budget,
) -> EpResult {
    let started = Instant::now();
    let upper_bound = algorithm.upper_bound(graph, s, t, window);
    let upper_bound_elapsed = started.elapsed();

    let naive = naive_tspg(&upper_bound, s, t, window, budget);
    let approx_bytes = upper_bound.approx_bytes() + naive.approx_bytes;
    EpResult {
        algorithm,
        upper_bound_edges: upper_bound.num_edges(),
        tspg: naive.tspg,
        enumeration: naive.stats,
        upper_bound_elapsed,
        enumeration_elapsed: naive.elapsed,
        approx_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{figure1_expected_tspg_edges, figure1_graph, figure1_query};

    #[test]
    fn all_baselines_produce_the_exact_tspg_on_the_example() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let expected = EdgeSet::from_edges(figure1_expected_tspg_edges());
        for alg in EpAlgorithm::ALL {
            let out = run_ep(alg, &g, s, t, w, &Budget::unlimited());
            assert!(out.is_exact(), "{alg} did not finish");
            assert_eq!(out.tspg, expected, "{alg} produced a wrong tspG");
            assert!(out.upper_bound_edges >= expected.num_edges());
            assert!(out.total_elapsed() >= out.upper_bound_elapsed);
            assert!(out.approx_bytes > 0);
        }
    }

    #[test]
    fn tighter_upper_bounds_never_have_more_edges() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let dt = run_ep(EpAlgorithm::DtTsg, &g, s, t, w, &Budget::unlimited());
        let es = run_ep(EpAlgorithm::EsTsg, &g, s, t, w, &Budget::unlimited());
        let tg = run_ep(EpAlgorithm::TgTsg, &g, s, t, w, &Budget::unlimited());
        assert!(dt.upper_bound_edges >= es.upper_bound_edges);
        assert!(es.upper_bound_edges >= tg.upper_bound_edges);
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(EpAlgorithm::DtTsg.name(), "EPdtTSG");
        assert_eq!(EpAlgorithm::EsTsg.to_string(), "EPesTSG");
        assert_eq!(EpAlgorithm::TgTsg.upper_bound_name(), "tgTSG");
        assert_eq!(EpAlgorithm::ALL.len(), 3);
    }

    #[test]
    fn budgeted_runs_are_flagged_inexact() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let out = run_ep(EpAlgorithm::DtTsg, &g, s, t, w, &Budget::steps(1));
        assert!(!out.is_exact());
    }
}
