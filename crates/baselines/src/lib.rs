//! # tspg-baselines
//!
//! The baseline algorithms of Section III-A of the paper.
//!
//! Each baseline follows the same two-stage recipe:
//!
//! 1. build an *upper-bound graph* — a subgraph of the input that is
//!    guaranteed to contain the temporal simple path graph;
//! 2. enumerate every temporal simple path from `s` to `t` inside that
//!    upper-bound graph and union the paths' vertices and edges.
//!
//! Three upper-bound graph constructions are provided:
//!
//! | method | constraint used | complexity |
//! |--------|-----------------|------------|
//! | [`dt_tsg`]   | timestamps inside the query window (projection)          | `O(m)` |
//! | [`es_tsg`]   | lies on an `s→t` walk with *non-decreasing* timestamps    | `O(n + m)` |
//! | [`tg_tsg`]   | lies on an `s→t` walk with *strictly ascending* timestamps, computed with bidirectional Dijkstra | `O((n + m)·log n)` |
//!
//! and the corresponding end-to-end baselines [`EpAlgorithm::DtTsg`],
//! [`EpAlgorithm::EsTsg`] and [`EpAlgorithm::TgTsg`] (named `EPdtTSG`,
//! `EPesTSG`, `EPtgTSG` in the paper) are run through [`run_ep`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dt;
pub mod ep;
pub mod es;
pub mod tg;

pub use dt::dt_tsg;
pub use ep::{run_ep, EpAlgorithm, EpResult};
pub use es::es_tsg;
pub use tg::{tg_polarity, tg_tsg};
