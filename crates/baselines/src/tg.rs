//! `tgTSG`: the strict-temporal upper bound computed with bidirectional
//! Dijkstra.
//!
//! `tgTSG` keeps an edge `e(u, v, τ)` only if it lies on some walk from `s`
//! to `t` with **strictly ascending** timestamps inside the query window —
//! the same reduction that VUG's `QuickUBG` achieves. The difference is the
//! machinery: `tgTSG` computes earliest-arrival and latest-departure times
//! with a priority queue (Dijkstra), paying an `O(log n)` factor, whereas
//! `QuickUBG` uses the BFS-like label-correcting scan of Algorithm 3. The
//! two must produce identical upper-bound graphs (this is asserted by the
//! integration tests), which is exactly the comparison of Fig. 9.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use tspg_graph::{TemporalGraph, TimeInterval, Timestamp, VertexId};

/// Earliest strict arrival times from `s` and latest strict departure times
/// towards `t`, computed with two Dijkstra passes.
///
/// Mirroring Algorithm 3 of the paper, the forward pass never relaxes an
/// edge into `t` (so `A(t)` stays "+∞" / `None`) and the backward pass never
/// relaxes an edge into `s`; the sentinels are `A(s) = τ_b − 1` and
/// `D(t) = τ_e + 1`.
pub fn tg_polarity(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
) -> (Vec<Option<Timestamp>>, Vec<Option<Timestamp>>) {
    let n = graph.num_vertices();
    let mut arrival: Vec<Option<Timestamp>> = vec![None; n];
    let mut departure: Vec<Option<Timestamp>> = vec![None; n];
    if (s as usize) >= n || (t as usize) >= n {
        return (arrival, departure);
    }

    // Forward Dijkstra: minimise arrival time under strict ascent.
    arrival[s as usize] = Some(window.begin() - 1);
    let mut heap: BinaryHeap<Reverse<(Timestamp, VertexId)>> = BinaryHeap::new();
    heap.push(Reverse((window.begin() - 1, s)));
    while let Some(Reverse((dist, u))) = heap.pop() {
        if arrival[u as usize] != Some(dist) {
            continue; // stale entry
        }
        for entry in graph.out_neighbors_in(u, window) {
            if entry.neighbor == t || entry.time <= dist {
                continue;
            }
            let v = entry.neighbor as usize;
            if arrival[v].is_none_or(|cur| entry.time < cur) {
                arrival[v] = Some(entry.time);
                heap.push(Reverse((entry.time, entry.neighbor)));
            }
        }
    }

    // Backward Dijkstra: maximise departure time under strict ascent.
    departure[t as usize] = Some(window.end() + 1);
    let mut heap: BinaryHeap<(Timestamp, VertexId)> = BinaryHeap::new();
    heap.push((window.end() + 1, t));
    while let Some((dist, u)) = heap.pop() {
        if departure[u as usize] != Some(dist) {
            continue;
        }
        for entry in graph.in_neighbors_in(u, window) {
            if entry.neighbor == s || entry.time >= dist {
                continue;
            }
            let v = entry.neighbor as usize;
            if departure[v].is_none_or(|cur| entry.time > cur) {
                departure[v] = Some(entry.time);
                heap.push((entry.time, entry.neighbor));
            }
        }
    }

    (arrival, departure)
}

/// Builds the `tgTSG` upper-bound graph for the query `(s, t, window)`:
/// keep `e(u, v, τ)` iff `A(u) < τ < D(v)` (Lemma 1 of the paper).
pub fn tg_tsg(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
) -> TemporalGraph {
    let (arrival, departure) = tg_polarity(graph, s, t, window);
    graph.edge_induced(|_, e| {
        matches!(
            (arrival[e.src as usize], departure[e.dst as usize]),
            (Some(a), Some(d)) if a < e.time && e.time < d
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{fig1, figure1_graph, figure1_query};
    use tspg_graph::EdgeSet;

    #[test]
    fn polarity_matches_figure_3() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let (a, d) = tg_polarity(&g, s, t, w);
        assert_eq!(a[fig1::S as usize], Some(1));
        assert_eq!(a[fig1::A as usize], Some(3));
        assert_eq!(a[fig1::B as usize], Some(2));
        assert_eq!(a[fig1::C as usize], Some(3));
        assert_eq!(a[fig1::D as usize], Some(3)); // improved from 4 via b
        assert_eq!(a[fig1::E as usize], Some(5));
        assert_eq!(a[fig1::F as usize], Some(4)); // improved from 5 via c
        assert_eq!(a[fig1::T as usize], None); // +∞ in the paper

        assert_eq!(d[fig1::T as usize], Some(8));
        assert_eq!(d[fig1::B as usize], Some(6));
        assert_eq!(d[fig1::C as usize], Some(7));
        assert_eq!(d[fig1::D as usize], Some(2));
        assert_eq!(d[fig1::E as usize], Some(6));
        assert_eq!(d[fig1::F as usize], Some(5));
        assert_eq!(d[fig1::A as usize], None); // -∞ in the paper
        assert_eq!(d[fig1::S as usize], None); // never relaxed into s
    }

    #[test]
    fn tg_tsg_matches_figure_3c() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let ub = tg_tsg(&g, s, t, w);
        let expected = EdgeSet::from_edges(vec![
            tspg_graph::TemporalEdge::new(fig1::S, fig1::B, 2),
            tspg_graph::TemporalEdge::new(fig1::B, fig1::C, 3),
            tspg_graph::TemporalEdge::new(fig1::C, fig1::F, 4),
            tspg_graph::TemporalEdge::new(fig1::F, fig1::B, 5),
            tspg_graph::TemporalEdge::new(fig1::F, fig1::E, 5),
            tspg_graph::TemporalEdge::new(fig1::E, fig1::C, 6),
            tspg_graph::TemporalEdge::new(fig1::B, fig1::T, 6),
            tspg_graph::TemporalEdge::new(fig1::C, fig1::T, 7),
        ]);
        assert_eq!(EdgeSet::from_graph(&ub), expected);
    }

    #[test]
    fn tg_is_tighter_than_es_on_the_example() {
        // e(b, f, 5) survives esTSG (non-decreasing walks) but not tgTSG
        // (strict ascent: departing f after 5 is possible only at 5).
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let ub = tg_tsg(&g, s, t, w);
        assert!(!ub.has_edge(fig1::B, fig1::F, 5));
    }

    #[test]
    fn unreachable_and_out_of_range_queries() {
        let g = figure1_graph();
        let (_, _, w) = figure1_query();
        assert!(tg_tsg(&g, fig1::T, fig1::S, w).is_empty());
        assert!(tg_tsg(&g, 99, fig1::T, w).is_empty());
        assert!(tg_tsg(&g, fig1::S, 99, w).is_empty());
    }

    #[test]
    fn direct_edge_between_s_and_t_is_kept() {
        let g =
            tspg_graph::TemporalGraph::from_edges(2, vec![tspg_graph::TemporalEdge::new(0, 1, 5)]);
        let ub = tg_tsg(&g, 0, 1, TimeInterval::new(2, 7));
        assert_eq!(ub.num_edges(), 1);
        let ub = tg_tsg(&g, 0, 1, TimeInterval::new(6, 7));
        assert_eq!(ub.num_edges(), 0);
    }
}
