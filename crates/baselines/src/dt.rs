//! `dtTSG`: the projected-graph upper bound.
//!
//! The simplest upper-bound graph for a `tspG` query is the projected graph
//! `G[τ_b, τ_e]`, which drops every edge whose timestamp lies outside the
//! query interval. It ignores both endpoints and both path constraints, so
//! it is by far the loosest bound (upper-bound ratios below 0.1 % in
//! Table II), but it is computable in a single `O(m)` scan.

use tspg_graph::{TemporalGraph, TimeInterval};

/// Builds the `dtTSG` upper-bound graph: the projection of `graph` onto
/// `window`.
pub fn dt_tsg(graph: &TemporalGraph, window: TimeInterval) -> TemporalGraph {
    graph.project(window)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{figure1_graph, figure1_query};

    #[test]
    fn projection_of_running_example() {
        let g = figure1_graph();
        let (_, _, w) = figure1_query();
        let p = dt_tsg(&g, w);
        // Every edge of Fig. 1(a) already lies inside [2, 7].
        assert_eq!(p.num_edges(), g.num_edges());
        let narrow = dt_tsg(&g, TimeInterval::new(5, 6));
        assert!(narrow.num_edges() < g.num_edges());
        assert!(narrow.edges().iter().all(|e| (5..=6).contains(&e.time)));
    }

    #[test]
    fn projection_is_independent_of_endpoints() {
        // dtTSG never looks at s or t, so it keeps edges that cannot be on
        // any s-t path — that is exactly why it is so loose.
        let g = figure1_graph();
        let p = dt_tsg(&g, TimeInterval::new(2, 7));
        assert!(p.has_edge(0, 1, 3)); // e(s, a, 3) is kept although a is a dead end
    }
}
