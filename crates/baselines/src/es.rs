//! `esTSG`: the non-decreasing-walk upper bound of Jin et al.
//!
//! `esTSG` keeps an edge `e(u, v, τ)` only if it lies on some walk from `s`
//! to `t` whose timestamps are **non-decreasing** and inside the query
//! window. Because every strict temporal simple path is in particular a
//! non-decreasing walk, the result is a valid upper-bound graph of the
//! `tspG`; because equal consecutive timestamps are allowed, it is looser
//! than the strict-constraint bounds (`tgTSG` / `QuickUBG`).
//!
//! The computation is two label-correcting traversals (forward from `s`,
//! backward from `t`) in `O(n + m)` time.

use std::collections::VecDeque;
use tspg_graph::{TemporalGraph, TimeInterval, Timestamp, VertexId};

/// Builds the `esTSG` upper-bound graph for the query `(s, t, window)`.
pub fn es_tsg(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
) -> TemporalGraph {
    let n = graph.num_vertices();
    if (s as usize) >= n || (t as usize) >= n {
        return TemporalGraph::empty(n);
    }
    let earliest = non_decreasing_earliest(graph, s, window);
    let latest = non_increasing_latest(graph, t, window);
    graph.edge_induced(|_, e| {
        if !window.contains(e.time) {
            return false;
        }
        match (earliest[e.src as usize], latest[e.dst as usize]) {
            (Some(a), Some(d)) => a <= e.time && e.time <= d,
            _ => false,
        }
    })
}

/// Earliest arrival at every vertex over walks from `s` with non-decreasing
/// timestamps inside `window`; the source gets `window.begin()` ("available
/// from the window start").
fn non_decreasing_earliest(
    graph: &TemporalGraph,
    s: VertexId,
    window: TimeInterval,
) -> Vec<Option<Timestamp>> {
    let n = graph.num_vertices();
    let mut arrival: Vec<Option<Timestamp>> = vec![None; n];
    arrival[s as usize] = Some(window.begin());
    let mut queue = VecDeque::from([s]);
    let mut queued = vec![false; n];
    queued[s as usize] = true;
    while let Some(u) = queue.pop_front() {
        queued[u as usize] = false;
        let reach = arrival[u as usize].expect("queued vertices are labelled");
        for entry in graph.out_neighbors_in(u, window) {
            if entry.time < reach {
                continue; // non-decreasing: equality allowed
            }
            let v = entry.neighbor as usize;
            if arrival[v].is_none_or(|cur| entry.time < cur) {
                arrival[v] = Some(entry.time);
                if !queued[v] {
                    queued[v] = true;
                    queue.push_back(entry.neighbor);
                }
            }
        }
    }
    arrival
}

/// Latest departure from every vertex over walks to `t` with non-decreasing
/// timestamps inside `window`; the target gets `window.end()`.
fn non_increasing_latest(
    graph: &TemporalGraph,
    t: VertexId,
    window: TimeInterval,
) -> Vec<Option<Timestamp>> {
    let n = graph.num_vertices();
    let mut departure: Vec<Option<Timestamp>> = vec![None; n];
    departure[t as usize] = Some(window.end());
    let mut queue = VecDeque::from([t]);
    let mut queued = vec![false; n];
    queued[t as usize] = true;
    while let Some(u) = queue.pop_front() {
        queued[u as usize] = false;
        let depart = departure[u as usize].expect("queued vertices are labelled");
        for entry in graph.in_neighbors_in(u, window) {
            if entry.time > depart {
                continue;
            }
            let v = entry.neighbor as usize;
            if departure[v].is_none_or(|cur| entry.time > cur) {
                departure[v] = Some(entry.time);
                if !queued[v] {
                    queued[v] = true;
                    queue.push_back(entry.neighbor);
                }
            }
        }
    }
    departure
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{fig1, figure1_graph, figure1_query};
    use tspg_graph::EdgeSet;

    #[test]
    fn matches_figure_2b() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let ub = es_tsg(&g, s, t, w);
        // Fig. 2(b): the vertices a and d and their incident edges are pruned,
        // everything among {s, b, c, e, f, t} survives.
        assert!(!ub.has_edge(fig1::S, fig1::A, 3));
        assert!(!ub.has_edge(fig1::S, fig1::D, 4));
        assert!(!ub.has_edge(fig1::A, fig1::D, 5));
        assert!(!ub.has_edge(fig1::D, fig1::T, 2));
        assert!(!ub.has_edge(fig1::B, fig1::D, 3));
        assert!(ub.has_edge(fig1::S, fig1::B, 2));
        assert!(ub.has_edge(fig1::B, fig1::C, 3));
        assert!(ub.has_edge(fig1::C, fig1::F, 4));
        assert!(ub.has_edge(fig1::B, fig1::F, 5));
        assert!(ub.has_edge(fig1::F, fig1::B, 5));
        assert!(ub.has_edge(fig1::F, fig1::E, 5));
        assert!(ub.has_edge(fig1::E, fig1::C, 6));
        assert!(ub.has_edge(fig1::B, fig1::T, 6));
        assert!(ub.has_edge(fig1::C, fig1::T, 7));
        assert_eq!(ub.num_edges(), 9);
    }

    #[test]
    fn non_decreasing_walks_are_allowed() {
        // b -> f @ 5 then f -> e @ 5 is non-decreasing (not strictly
        // ascending), so esTSG keeps edges that the strict bounds drop.
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let ub = es_tsg(&g, s, t, w);
        assert!(ub.has_edge(fig1::B, fig1::F, 5));
    }

    #[test]
    fn is_an_upper_bound_of_the_tspg() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let ub = EdgeSet::from_graph(&es_tsg(&g, s, t, w));
        let expected = EdgeSet::from_edges(tspg_graph::fixtures::figure1_expected_tspg_edges());
        assert!(expected.is_subset_of(&ub));
    }

    #[test]
    fn unreachable_pairs_give_empty_graphs() {
        let g = figure1_graph();
        let (_, _, w) = figure1_query();
        assert!(es_tsg(&g, fig1::T, fig1::S, w).is_empty());
        assert!(es_tsg(&g, fig1::A, fig1::S, w).is_empty());
        assert!(es_tsg(&g, 99, fig1::S, w).is_empty());
        assert!(es_tsg(&g, fig1::S, 99, w).is_empty());
    }

    #[test]
    fn window_is_respected() {
        let g = figure1_graph();
        let ub = es_tsg(&g, fig1::S, fig1::T, TimeInterval::new(2, 6));
        assert!(ub.edges().iter().all(|e| (2..=6).contains(&e.time)));
        assert!(!ub.has_edge(fig1::C, fig1::T, 7));
    }
}
