//! The `experiments` binary: regenerates every table and figure of the
//! paper's evaluation section as plain-text tables.
//!
//! ```text
//! cargo run -p tspg-bench --release --bin experiments -- [SUBCOMMAND] [OPTIONS]
//!
//! SUBCOMMANDS
//!   all        run every experiment (default)
//!   table1     dataset statistics (Table I analogue)
//!   exp1       response time on all datasets            (Fig. 5)
//!   exp2       response time vs theta                   (Figs. 6, 14)
//!   exp3       space consumption                        (Fig. 7)
//!   exp4       per-phase response time of VUG           (Fig. 8)
//!   table2     upper-bound ratios                       (Table II)
//!   exp5       tgTSG vs QuickUBG                        (Fig. 9)
//!   exp5-theta upper-bound generation vs theta          (Figs. 10, 15)
//!   exp6       EEV vs enumeration on G_t                (Fig. 11)
//!   exp7       number of paths vs edges in the tspG     (Fig. 12)
//!   exp8       transit case study                       (Fig. 13)
//!   batch      batch query engine throughput            (Exp-9, beyond the paper)
//!   exp10      serving on skewed repeated traffic       (Exp-10, beyond the paper)
//!   exp11      envelope sharing on overlapping windows  (Exp-11, beyond the paper)
//!   exp12      same-source frontier sharing on fan-outs (Exp-12, beyond the paper)
//!   exp13      closed-loop latency through tspg-server  (Exp-13, beyond the paper)
//!   exp14      arrival profiles on mixed-begin fan-outs (Exp-14, beyond the paper)
//!   exp15      warm-cache serving under a live edge feed (Exp-15, beyond the paper)
//!
//! OPTIONS
//!   --scale tiny|small|medium   dataset scale                (default small)
//!   --queries N                 queries per dataset          (default 50)
//!   --datasets D1,D3,...        restrict the datasets
//!   --seed N                    RNG seed                     (default 0x5eed)
//!   --budget-ms N               per-query baseline budget    (default 2000)
//!   --threads N                 batch/serving workers        (default 2)
//!   --cache-size N              exp10 result-cache entries   (default 4096)
//!   --json PATH                 also write every produced table to PATH as
//!                               a `tspg-bench-tables/1` JSON document (the
//!                               machine-readable bench trajectory)
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;
use std::time::Duration;
use tspg_bench::experiments::*;
use tspg_bench::harness::Table;
use tspg_bench::HarnessConfig;
use tspg_datasets::Scale;
use tspg_enum::Budget;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run with --help for usage");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut command: Option<String> = None;
    let mut cfg = HarnessConfig::default();
    let mut threads: usize = 2;
    let mut cache_size: usize = 4096;
    let mut json_path: Option<String> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_help();
                return Ok(());
            }
            "--scale" => {
                cfg.scale = match next_value(&mut iter, "--scale")?.as_str() {
                    "tiny" => Scale::tiny(),
                    "small" => Scale::small(),
                    "medium" => Scale::medium(),
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--queries" => {
                cfg.queries_per_dataset = next_value(&mut iter, "--queries")?
                    .parse()
                    .map_err(|_| "invalid --queries value".to_string())?;
            }
            "--seed" => {
                cfg.seed = next_value(&mut iter, "--seed")?
                    .parse()
                    .map_err(|_| "invalid --seed value".to_string())?;
            }
            "--budget-ms" => {
                let ms: u64 = next_value(&mut iter, "--budget-ms")?
                    .parse()
                    .map_err(|_| "invalid --budget-ms value".to_string())?;
                cfg.baseline_budget =
                    Budget::timeout(Duration::from_millis(ms)).with_max_steps(50_000_000);
            }
            "--threads" => {
                threads = next_value(&mut iter, "--threads")?
                    .parse()
                    .map_err(|_| "invalid --threads value".to_string())?;
                if threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--cache-size" => {
                cache_size = next_value(&mut iter, "--cache-size")?
                    .parse()
                    .map_err(|_| "invalid --cache-size value".to_string())?;
                if cache_size == 0 {
                    return Err("--cache-size must be at least 1".to_string());
                }
            }
            "--json" => {
                json_path = Some(next_value(&mut iter, "--json")?);
            }
            "--datasets" => {
                cfg.datasets = next_value(&mut iter, "--datasets")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            other if other.starts_with('-') => return Err(format!("unknown option {other:?}")),
            other => {
                if command.is_some() {
                    return Err(format!("unexpected extra argument {other:?}"));
                }
                command = Some(other.to_string());
            }
        }
    }

    let command = command.unwrap_or_else(|| "all".to_string());
    let theta_sweep_datasets = ["D1", "D9"];
    let ubg_sweep_datasets = ["D9", "D10"];
    let eev_datasets = ["D1", "D8"];

    // Every table is both printed and (with --json) collected for the
    // machine-readable trajectory document.
    let mut collected: Vec<Table> = Vec::new();
    let mut print = |tables: Vec<Table>| {
        for t in tables {
            println!("{}", t.render());
            collected.push(t);
        }
    };

    match command.as_str() {
        "table1" => print(vec![table1_datasets(&cfg)]),
        "exp1" => print(vec![exp1_response_time(&cfg)]),
        "exp2" => print(exp2_vary_theta(&cfg, &theta_sweep_datasets)),
        "exp3" => print(vec![exp3_space(&cfg)]),
        "exp4" => print(vec![exp4_phases(&cfg)]),
        "table2" => print(vec![table2_upper_bound_ratio(&cfg)]),
        "exp5" => print(vec![exp5_quick_vs_tg(&cfg)]),
        "exp5-theta" => print(exp5_vary_theta(&cfg, &ubg_sweep_datasets)),
        "exp6" => print(exp6_eev_vs_enumeration(&cfg, &eev_datasets)),
        "exp7" => print(exp7_paths_vs_edges(&cfg, &eev_datasets)),
        "exp8" => {
            let (table, dot) = exp8_case_study(cfg.seed);
            print(vec![table]);
            println!("Graphviz DOT of the case-study tspG:\n{dot}");
        }
        "batch" => print(vec![exp9_batch_throughput(&cfg, threads)]),
        "exp10" | "serve" => print(vec![exp10_serving(&cfg, threads, cache_size)]),
        "exp11" | "envelopes" => print(vec![exp11_envelopes(&cfg, threads)]),
        "exp12" | "frontier" => print(vec![exp12_frontier_sharing(&cfg, threads)]),
        "exp13" | "server" => print(vec![exp13_server_latency(&cfg, threads)]),
        "exp14" | "profiles" => print(vec![exp14_profile_sharing(&cfg, threads)]),
        "exp15" | "ingest" => print(vec![exp15_live_ingestion(&cfg, threads)]),
        "all" => {
            print(vec![table1_datasets(&cfg)]);
            print(vec![exp1_response_time(&cfg)]);
            print(exp2_vary_theta(&cfg, &theta_sweep_datasets));
            print(vec![exp3_space(&cfg)]);
            print(vec![exp4_phases(&cfg)]);
            print(vec![table2_upper_bound_ratio(&cfg)]);
            print(vec![exp5_quick_vs_tg(&cfg)]);
            print(exp5_vary_theta(&cfg, &ubg_sweep_datasets));
            print(exp6_eev_vs_enumeration(&cfg, &eev_datasets));
            print(exp7_paths_vs_edges(&cfg, &eev_datasets));
            let (table, dot) = exp8_case_study(cfg.seed);
            print(vec![table]);
            println!("Graphviz DOT of the case-study tspG:\n{dot}");
            print(vec![exp9_batch_throughput(&cfg, threads)]);
            print(vec![exp10_serving(&cfg, threads, cache_size)]);
            print(vec![exp11_envelopes(&cfg, threads)]);
            print(vec![exp12_frontier_sharing(&cfg, threads)]);
            print(vec![exp13_server_latency(&cfg, threads)]);
            print(vec![exp14_profile_sharing(&cfg, threads)]);
            print(vec![exp15_live_ingestion(&cfg, threads)]);
        }
        other => return Err(format!("unknown subcommand {other:?}")),
    }
    if let Some(path) = json_path {
        std::fs::write(&path, tspg_bench::json::tables_to_json(&collected))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("wrote {} table(s) to {path}", collected.len());
    }
    Ok(())
}

fn next_value(
    iter: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
    flag: &str,
) -> Result<String, String> {
    iter.next().cloned().ok_or_else(|| format!("{flag} expects a value"))
}

fn print_help() {
    println!(
        "experiments — reproduce the paper's tables and figures\n\n\
         usage: experiments [SUBCOMMAND] [--scale tiny|small|medium] [--queries N]\n\
                [--datasets D1,D2,...] [--seed N] [--budget-ms N] [--threads N]\n\
                [--cache-size N] [--json PATH]\n\n\
         subcommands: all (default), table1, exp1, exp2, exp3, exp4, table2,\n\
                      exp5, exp5-theta, exp6, exp7, exp8, batch, exp10, exp11,\n\
                      exp12, exp13, exp14, exp15"
    );
}
