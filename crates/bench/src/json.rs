//! Hand-rolled JSON emission for the bench trajectory.
//!
//! The build environment has no `serde`, so this module serializes the one
//! shape CI needs — a list of [`Table`]s — by hand. The output is the
//! machine-readable face of the experiments binary (`--json PATH`): every
//! run of the suite appends one artifact to the bench trajectory, so
//! speedups and run counts can be compared across commits without parsing
//! aligned-column text.
//!
//! Schema (`tspg-bench-tables/1`):
//!
//! ```json
//! {
//!   "schema": "tspg-bench-tables/1",
//!   "tables": [
//!     {"title": "...", "header": ["col", ...], "rows": [["cell", ...], ...]}
//!   ]
//! }
//! ```
//!
//! Every cell is a JSON string — the renderer's own formatting (`"3.1x"`,
//! `"INF"`, `"true"`) is part of the trajectory, and consumers that want
//! numbers can parse the cells they care about.

use crate::harness::Table;
use std::fmt::Write as _;

/// Escapes one string for inclusion in a JSON document (RFC 8259 §7).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn string_array(items: &[String]) -> String {
    let mut out = String::from("[");
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape(item));
    }
    out.push(']');
    out
}

/// Serializes `tables` as one `tspg-bench-tables/1` document (pretty-printed,
/// `\n`-terminated, so `python3 -m json.tool` round-trips it cleanly).
pub fn tables_to_json(tables: &[Table]) -> String {
    let mut out = String::from("{\n  \"schema\": \"tspg-bench-tables/1\",\n  \"tables\": [");
    for (i, table) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    {\n");
        let _ = writeln!(out, "      \"title\": \"{}\",", escape(table.title()));
        let _ = writeln!(out, "      \"header\": {},", string_array(table.header()));
        out.push_str("      \"rows\": [");
        for (j, row) in table.rows().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("\n        ");
            out.push_str(&string_array(row));
        }
        if table.rows().is_empty() {
            out.push(']');
        } else {
            out.push_str("\n      ]");
        }
        out.push_str("\n    }");
    }
    if tables.is_empty() {
        out.push_str("]\n}\n");
    } else {
        out.push_str("\n  ]\n}\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_the_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("x\ny\tz"), "x\\ny\\tz");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn tables_serialize_round_trippably() {
        let mut t = Table::new("demo \"quoted\"", &["a", "b"]);
        t.push_row(vec!["1.5x".into(), "true".into()]);
        let json = tables_to_json(&[t]);
        assert!(json.contains("\"schema\": \"tspg-bench-tables/1\""), "{json}");
        assert!(json.contains("demo \\\"quoted\\\""), "{json}");
        assert!(json.contains("[\"1.5x\", \"true\"]"), "{json}");
        assert!(json.ends_with("}\n"), "{json}");

        // A structural sanity check with no JSON parser available: balanced
        // braces/brackets outside strings.
        let mut depth = 0i32;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            match c {
                _ if escaped => escaped = false,
                '\\' if in_string => escaped = true,
                '"' => in_string = !in_string,
                '{' | '[' if !in_string => depth += 1,
                '}' | ']' if !in_string => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_string);
    }

    #[test]
    fn empty_inputs_stay_valid() {
        let json = tables_to_json(&[]);
        assert!(json.contains("\"tables\": []"), "{json}");
        let empty = Table::new("empty", &["a"]);
        let json = tables_to_json(&[empty]);
        assert!(json.contains("\"rows\": []"), "{json}");
    }
}
