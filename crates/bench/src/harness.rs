//! Shared experiment infrastructure: dataset preparation, per-query
//! algorithm execution, aggregation, and plain-text table rendering.

use std::fmt::Write as _;
use std::time::Duration;
use tspg_baselines::{run_ep, EpAlgorithm};
use tspg_core::{generate_tspg_with, VugConfig};
use tspg_datasets::{registry, DatasetSpec, Query, Scale, WorkloadConfig, WorkloadGenerator};
use tspg_enum::Budget;
use tspg_graph::TemporalGraph;

/// Global configuration of a harness run.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Scale applied to the dataset registry.
    pub scale: Scale,
    /// Number of queries per dataset (the paper uses 1000; the default here
    /// is laptop-sized).
    pub queries_per_dataset: usize,
    /// Per-query budget applied to the enumeration-based baselines. Hitting
    /// it is reported as `INF`, mirroring the paper's 12-hour cut-off.
    pub baseline_budget: Budget,
    /// Random seed; controls both dataset generation and workloads.
    pub seed: u64,
    /// Restrict the run to these dataset ids (empty = all ten).
    pub datasets: Vec<String>,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            scale: Scale::small(),
            queries_per_dataset: 50,
            baseline_budget: Budget::unlimited()
                .with_max_steps(2_000_000)
                .with_timeout(Duration::from_secs(2)),
            seed: 0x5eed,
            datasets: Vec::new(),
        }
    }
}

impl HarnessConfig {
    /// A configuration small enough for CI smoke tests and Criterion runs.
    pub fn smoke() -> Self {
        Self {
            scale: Scale::tiny(),
            queries_per_dataset: 10,
            baseline_budget: Budget::unlimited()
                .with_max_steps(200_000)
                .with_timeout(Duration::from_millis(250)),
            ..Self::default()
        }
    }

    /// The dataset specs selected by this configuration.
    pub fn selected_specs(&self) -> Vec<DatasetSpec> {
        registry()
            .into_iter()
            .filter(|spec| {
                self.datasets.is_empty()
                    || self.datasets.iter().any(|d| d.eq_ignore_ascii_case(spec.id))
            })
            .collect()
    }

    /// Generates the graph and workload of one dataset.
    pub fn prepare(&self, spec: &DatasetSpec) -> PreparedDataset {
        self.prepare_with_theta(spec, spec.default_theta)
    }

    /// Generates the graph and a workload with an explicit query span θ.
    ///
    /// # Panics
    ///
    /// Panics if the workload cannot be generated at all (invalid θ, or a
    /// dataset too sparse at this scale to admit a single reachable query)
    /// — a misconfigured experiment should fail loudly, not report numbers
    /// over an empty workload.
    pub fn prepare_with_theta(&self, spec: &DatasetSpec, theta: i64) -> PreparedDataset {
        let graph = spec.generate(self.scale, self.seed ^ hash_id(spec.id));
        let mut generator = WorkloadGenerator::new(&graph, self.seed.wrapping_add(theta as u64));
        let queries = generator
            .generate(&WorkloadConfig::new(self.queries_per_dataset, theta))
            .unwrap_or_else(|e| panic!("workload for {} (theta={theta}): {e}", spec.id));
        PreparedDataset { id: spec.id.to_string(), spec: spec.clone(), theta, graph, queries }
    }
}

fn hash_id(id: &str) -> u64 {
    id.bytes().fold(0xcbf29ce484222325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100000001b3))
}

/// A generated dataset plus its query workload.
#[derive(Clone, Debug)]
pub struct PreparedDataset {
    /// Dataset id (`"D1"` … `"D10"`).
    pub id: String,
    /// The registry entry the dataset was generated from.
    pub spec: DatasetSpec,
    /// Query span θ used for the workload.
    pub theta: i64,
    /// The synthetic temporal graph.
    pub graph: TemporalGraph,
    /// The reachability-checked query workload.
    pub queries: Vec<Query>,
}

/// The algorithms compared throughout the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// `EPdtTSG`: enumeration on the projected graph.
    EpDtTsg,
    /// `EPesTSG`: enumeration on the non-decreasing-walk reduction.
    EpEsTsg,
    /// `EPtgTSG`: enumeration on the strict-ascent (Dijkstra) reduction.
    EpTgTsg,
    /// `VUG`: the paper's algorithm (all optimizations on).
    Vug,
    /// Ablation: VUG without the TightUBG phase.
    VugNoTight,
    /// Ablation: VUG without the bidirectional-DFS optimizations.
    VugNoBidirOpt,
}

impl Algorithm {
    /// The four algorithms of the headline comparison (Fig. 5).
    pub const HEADLINE: [Algorithm; 4] =
        [Algorithm::EpDtTsg, Algorithm::EpEsTsg, Algorithm::EpTgTsg, Algorithm::Vug];

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::EpDtTsg => "EPdtTSG",
            Algorithm::EpEsTsg => "EPesTSG",
            Algorithm::EpTgTsg => "EPtgTSG",
            Algorithm::Vug => "VUG",
            Algorithm::VugNoTight => "VUG-noTight",
            Algorithm::VugNoBidirOpt => "VUG-noBidirOpt",
        }
    }
}

/// Measurements of one algorithm on one query.
#[derive(Clone, Copy, Debug)]
pub struct QueryOutcome {
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Number of edges in the produced tspG.
    pub tspg_edges: usize,
    /// Number of edges in the algorithm's (final) upper-bound graph.
    pub upper_bound_edges: usize,
    /// Approximate peak memory of the run in bytes.
    pub approx_bytes: usize,
    /// `true` if the run finished within budget (baselines only; VUG always
    /// completes).
    pub completed: bool,
    /// VUG only: per-phase timings `(quick, tight, eev)`.
    pub phases: Option<(Duration, Duration, Duration)>,
}

/// Aggregate of one algorithm over a whole workload.
#[derive(Clone, Copy, Debug, Default)]
pub struct AlgorithmOutcome {
    /// Number of queries executed.
    pub queries: usize,
    /// Number of queries that hit the budget ("INF" behaviour).
    pub timed_out: usize,
    /// Sum of wall-clock times.
    pub total_elapsed: Duration,
    /// Sum of the VUG phase timings, when applicable.
    pub total_phases: (Duration, Duration, Duration),
    /// Smallest per-query memory footprint observed.
    pub min_bytes: usize,
    /// Largest per-query memory footprint observed.
    pub max_bytes: usize,
    /// Sum of tspG edge counts (for ratio computations).
    pub total_tspg_edges: u64,
    /// Sum of upper-bound edge counts.
    pub total_upper_bound_edges: u64,
}

impl AlgorithmOutcome {
    /// Folds one query outcome into the aggregate.
    pub fn add(&mut self, q: &QueryOutcome) {
        self.queries += 1;
        if !q.completed {
            self.timed_out += 1;
        }
        self.total_elapsed += q.elapsed;
        if let Some((a, b, c)) = q.phases {
            self.total_phases.0 += a;
            self.total_phases.1 += b;
            self.total_phases.2 += c;
        }
        self.min_bytes =
            if self.queries == 1 { q.approx_bytes } else { self.min_bytes.min(q.approx_bytes) };
        self.max_bytes = self.max_bytes.max(q.approx_bytes);
        self.total_tspg_edges += q.tspg_edges as u64;
        self.total_upper_bound_edges += q.upper_bound_edges as u64;
    }

    /// `true` if at least one query hit the budget; such aggregates are
    /// printed as `INF`, mirroring the paper.
    pub fn is_inf(&self) -> bool {
        self.timed_out > 0
    }

    /// Total time rendered the way the paper's plots label it.
    pub fn render_time(&self) -> String {
        if self.is_inf() {
            "INF".to_string()
        } else {
            format_duration(self.total_elapsed)
        }
    }

    /// Average upper-bound ratio `|tspG| / |UBG|` in percent.
    pub fn upper_bound_ratio_percent(&self) -> f64 {
        if self.total_upper_bound_edges == 0 {
            100.0
        } else {
            100.0 * self.total_tspg_edges as f64 / self.total_upper_bound_edges as f64
        }
    }
}

/// Runs `algorithm` on a single query.
pub fn run_query(
    algorithm: Algorithm,
    graph: &TemporalGraph,
    query: &Query,
    baseline_budget: &Budget,
) -> QueryOutcome {
    match algorithm {
        Algorithm::EpDtTsg | Algorithm::EpEsTsg | Algorithm::EpTgTsg => {
            let ep = match algorithm {
                Algorithm::EpDtTsg => EpAlgorithm::DtTsg,
                Algorithm::EpEsTsg => EpAlgorithm::EsTsg,
                _ => EpAlgorithm::TgTsg,
            };
            let out = run_ep(ep, graph, query.source, query.target, query.window, baseline_budget);
            QueryOutcome {
                elapsed: out.total_elapsed(),
                tspg_edges: out.tspg.num_edges(),
                upper_bound_edges: out.upper_bound_edges,
                approx_bytes: out.approx_bytes,
                completed: out.is_exact(),
                phases: None,
            }
        }
        Algorithm::Vug | Algorithm::VugNoTight | Algorithm::VugNoBidirOpt => {
            let config = match algorithm {
                Algorithm::VugNoTight => VugConfig::without_tight_ubg(),
                Algorithm::VugNoBidirOpt => VugConfig::without_bidir_optimizations(),
                _ => VugConfig::full(),
            };
            let out = generate_tspg_with(graph, query.source, query.target, query.window, &config);
            QueryOutcome {
                elapsed: out.report.total_elapsed(),
                tspg_edges: out.report.result_edges,
                upper_bound_edges: out.report.tight_edges,
                approx_bytes: out.report.approx_bytes,
                completed: true,
                phases: Some((
                    out.report.quick_elapsed,
                    out.report.tight_elapsed,
                    out.report.eev_elapsed,
                )),
            }
        }
    }
}

/// Runs `algorithm` over every query of a prepared dataset.
pub fn run_workload(
    algorithm: Algorithm,
    dataset: &PreparedDataset,
    baseline_budget: &Budget,
) -> AlgorithmOutcome {
    let mut agg = AlgorithmOutcome::default();
    for query in &dataset.queries {
        let outcome = run_query(algorithm, &dataset.graph, query, baseline_budget);
        agg.add(&outcome);
    }
    agg
}

/// Renders a `Duration` in the compact style of the paper's plots.
pub fn format_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 100.0 {
        format!("{secs:.0}s")
    } else if secs >= 1.0 {
        format!("{secs:.2}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Renders a byte count with binary units.
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit + 1 < UNITS.len() {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{value:.1}{}", UNITS[unit])
    }
}

/// A minimal fixed-width text table used for every experiment's output.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must have as many cells as the header).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows, each as wide as the header.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (i, cell) in self.header.iter().enumerate() {
            let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(line, "{:<width$}  ", cell, width = widths[i]);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders the table as tab-separated values (no title).
    pub fn render_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_selects_datasets() {
        let mut cfg = HarnessConfig::smoke();
        assert_eq!(cfg.selected_specs().len(), 10);
        cfg.datasets = vec!["d1".into(), "D3".into()];
        let selected = cfg.selected_specs();
        assert_eq!(selected.len(), 2);
        assert_eq!(selected[0].id, "D1");
        assert_eq!(selected[1].id, "D3");
    }

    #[test]
    fn prepare_generates_queries_with_requested_theta() {
        let cfg = HarnessConfig::smoke();
        let spec = cfg.selected_specs().into_iter().next().unwrap();
        let prepared = cfg.prepare_with_theta(&spec, 6);
        assert_eq!(prepared.theta, 6);
        assert!(!prepared.queries.is_empty());
        assert!(prepared.queries.iter().all(|q| q.theta() == 6));
    }

    #[test]
    fn vug_and_baselines_agree_on_a_smoke_workload() {
        let cfg = HarnessConfig::smoke();
        let spec = tspg_datasets::find("D1").unwrap();
        let prepared = cfg.prepare(&spec);
        for q in prepared.queries.iter().take(5) {
            let vug = run_query(Algorithm::Vug, &prepared.graph, q, &Budget::unlimited());
            let ep = run_query(Algorithm::EpTgTsg, &prepared.graph, q, &Budget::unlimited());
            assert!(vug.completed && ep.completed);
            assert_eq!(vug.tspg_edges, ep.tspg_edges, "query {q:?}");
        }
    }

    #[test]
    fn aggregation_tracks_min_max_and_inf() {
        let mut agg = AlgorithmOutcome::default();
        agg.add(&QueryOutcome {
            elapsed: Duration::from_millis(5),
            tspg_edges: 10,
            upper_bound_edges: 20,
            approx_bytes: 1000,
            completed: true,
            phases: None,
        });
        agg.add(&QueryOutcome {
            elapsed: Duration::from_millis(7),
            tspg_edges: 5,
            upper_bound_edges: 10,
            approx_bytes: 4000,
            completed: false,
            phases: None,
        });
        assert_eq!(agg.queries, 2);
        assert_eq!(agg.timed_out, 1);
        assert!(agg.is_inf());
        assert_eq!(agg.render_time(), "INF");
        assert_eq!(agg.min_bytes, 1000);
        assert_eq!(agg.max_bytes, 4000);
        assert!((agg.upper_bound_ratio_percent() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(format_duration(Duration::from_secs(200)), "200s");
        assert_eq!(format_duration(Duration::from_millis(1500)), "1.50s");
        assert_eq!(format_duration(Duration::from_micros(2500)), "2.50ms");
        assert_eq!(format_duration(Duration::from_nanos(800)), "0.8us");
        assert_eq!(format_bytes(512), "512B");
        assert_eq!(format_bytes(2048), "2.0KiB");
        assert!(format_bytes(3 * 1024 * 1024).starts_with("3.0MiB"));
    }

    #[test]
    fn table_rendering() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "hello".into()]);
        t.push_row(vec!["22".into(), "x".into()]);
        let text = t.render();
        assert!(text.contains("## demo"));
        assert!(text.contains("hello"));
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.render_tsv().lines().count(), 3);
        assert_eq!(t.title(), "demo");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn algorithm_names() {
        assert_eq!(Algorithm::HEADLINE.len(), 4);
        assert_eq!(Algorithm::Vug.name(), "VUG");
        assert_eq!(Algorithm::EpDtTsg.name(), "EPdtTSG");
        assert_eq!(Algorithm::VugNoTight.name(), "VUG-noTight");
    }
}
