//! # tspg-bench
//!
//! Experiment harness reproducing every table and figure of the paper's
//! evaluation section (Section VI) on the synthetic dataset registry.
//!
//! The crate has two faces:
//!
//! * a **library** (`harness`, `experiments`) used both by the
//!   `experiments` binary and by the Criterion benchmarks under `benches/`;
//! * the **`experiments` binary**, which prints one plain-text table per
//!   paper artifact (Fig. 5 → `exp1`, Fig. 6 → `exp2`, …, Table II →
//!   `table2`) so that `EXPERIMENTS.md` can be regenerated from scratch.
//!
//! Run `cargo run -p tspg-bench --release --bin experiments -- --help` for
//! the command-line interface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod json;

pub use harness::{
    Algorithm, AlgorithmOutcome, HarnessConfig, PreparedDataset, QueryOutcome, Table,
};
