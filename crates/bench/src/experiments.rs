//! One function per paper artifact (table / figure), each returning
//! plain-text [`Table`]s that the `experiments` binary prints and that
//! `EXPERIMENTS.md` records.

use crate::harness::{
    format_bytes, format_duration, run_workload, Algorithm, AlgorithmOutcome, HarnessConfig, Table,
};
use std::time::Instant;
use tspg_baselines::EpAlgorithm;
use tspg_core::{
    generate_tspg, quick_upper_bound_graph, tight_upper_bound_graph, BatchStats, CacheConfig,
    PlannerConfig, QueryEngine, QuerySpec, VugResult,
};
use tspg_datasets::{
    generate_edge_stream, generate_fanout_workload, generate_overlapping_workload,
    generate_repeated_workload, generate_transit, EdgeStreamConfig, FanoutWorkloadConfig,
    GraphGenerator, OverlappingWorkloadConfig, RepeatedWorkloadConfig,
};
use tspg_enum::{count_paths, naive_tspg};
use tspg_graph::{GraphStats, TemporalGraph, TimeInterval};

/// Table I analogue: statistics of the generated datasets at the configured
/// scale, next to the full-size statistics of the real datasets they mirror.
pub fn table1_datasets(cfg: &HarnessConfig) -> Table {
    let mut table = Table::new(
        "Table I — datasets (synthetic analogues at the configured scale)",
        &["id", "source", "|V|", "|E|", "|T|", "d", "theta", "|V| full", "|E| full"],
    );
    for spec in cfg.selected_specs() {
        let prepared = cfg.prepare(&spec);
        let stats = GraphStats::compute(&prepared.graph);
        table.push_row(vec![
            spec.id.to_string(),
            spec.source_name.to_string(),
            stats.num_vertices.to_string(),
            stats.num_edges.to_string(),
            stats.num_timestamps.to_string(),
            stats.max_degree.to_string(),
            spec.default_theta.to_string(),
            spec.full_vertices.to_string(),
            spec.full_edges.to_string(),
        ]);
    }
    table
}

/// Exp-1 / Fig. 5: total response time of the four algorithms on every
/// dataset under the default θ.
pub fn exp1_response_time(cfg: &HarnessConfig) -> Table {
    let mut table = Table::new(
        "Exp-1 (Fig. 5) — total response time per dataset",
        &["dataset", "queries", "EPdtTSG", "EPesTSG", "EPtgTSG", "VUG", "VUG speedup vs best EP"],
    );
    for spec in cfg.selected_specs() {
        let prepared = cfg.prepare(&spec);
        let outcomes: Vec<AlgorithmOutcome> = Algorithm::HEADLINE
            .iter()
            .map(|&alg| run_workload(alg, &prepared, &cfg.baseline_budget))
            .collect();
        let vug = outcomes[3];
        let best_ep = outcomes[..3].iter().filter(|o| !o.is_inf()).map(|o| o.total_elapsed).min();
        let speedup = match best_ep {
            Some(best) if vug.total_elapsed.as_secs_f64() > 0.0 => {
                format!("{:.1}x", best.as_secs_f64() / vug.total_elapsed.as_secs_f64())
            }
            _ => ">INF".to_string(),
        };
        table.push_row(vec![
            prepared.id.clone(),
            prepared.queries.len().to_string(),
            outcomes[0].render_time(),
            outcomes[1].render_time(),
            outcomes[2].render_time(),
            outcomes[3].render_time(),
            speedup,
        ]);
    }
    table
}

/// Exp-2 / Figs. 6 & 14: response time while varying the query span θ.
pub fn exp2_vary_theta(cfg: &HarnessConfig, dataset_ids: &[&str]) -> Vec<Table> {
    let mut tables = Vec::new();
    for id in dataset_ids {
        let Some(spec) = tspg_datasets::find(id) else { continue };
        if !cfg.datasets.is_empty() && !cfg.datasets.iter().any(|d| d.eq_ignore_ascii_case(id)) {
            continue;
        }
        let mut table = Table::new(
            format!("Exp-2 (Fig. 6) — response time vs theta on {id}"),
            &["theta", "EPdtTSG", "EPesTSG", "EPtgTSG", "VUG"],
        );
        for delta in [-4i64, -2, 0, 2, 4] {
            let theta = (spec.default_theta + delta).max(2);
            let prepared = cfg.prepare_with_theta(&spec, theta);
            let row: Vec<String> = Algorithm::HEADLINE
                .iter()
                .map(|&alg| run_workload(alg, &prepared, &cfg.baseline_budget).render_time())
                .collect();
            let mut cells = vec![theta.to_string()];
            cells.extend(row);
            table.push_row(cells);
        }
        tables.push(table);
    }
    tables
}

/// Exp-3 / Fig. 7: maximum and minimum per-query space consumption.
pub fn exp3_space(cfg: &HarnessConfig) -> Table {
    let mut table = Table::new(
        "Exp-3 (Fig. 7) — per-query space consumption (min / max over the workload)",
        &["dataset", "EPdtTSG", "EPesTSG", "EPtgTSG", "VUG"],
    );
    for spec in cfg.selected_specs() {
        let prepared = cfg.prepare(&spec);
        let cells: Vec<String> = Algorithm::HEADLINE
            .iter()
            .map(|&alg| {
                let agg = run_workload(alg, &prepared, &cfg.baseline_budget);
                format!("{} / {}", format_bytes(agg.min_bytes), format_bytes(agg.max_bytes))
            })
            .collect();
        let mut row = vec![prepared.id.clone()];
        row.extend(cells);
        table.push_row(row);
    }
    table
}

/// Exp-4 / Fig. 8: response time of each VUG phase.
pub fn exp4_phases(cfg: &HarnessConfig) -> Table {
    let mut table = Table::new(
        "Exp-4 (Fig. 8) — response time of each phase of VUG",
        &["dataset", "QuickUBG", "TightUBG", "EEV", "total"],
    );
    for spec in cfg.selected_specs() {
        let prepared = cfg.prepare(&spec);
        let agg = run_workload(Algorithm::Vug, &prepared, &cfg.baseline_budget);
        let (quick, tight, eev) = agg.total_phases;
        table.push_row(vec![
            prepared.id.clone(),
            format_duration(quick),
            format_duration(tight),
            format_duration(eev),
            format_duration(agg.total_elapsed),
        ]);
    }
    table
}

/// Table II: average upper-bound ratio (percentage of the tspG inside each
/// upper-bound graph) for the five constructions.
pub fn table2_upper_bound_ratio(cfg: &HarnessConfig) -> Table {
    let mut table = Table::new(
        "Table II — average upper-bound ratio (%)",
        &["dataset", "dtTSG", "esTSG", "tgTSG", "QuickUBG", "TightUBG"],
    );
    for spec in cfg.selected_specs() {
        let prepared = cfg.prepare(&spec);
        let mut totals = [0u64; 5];
        let mut tspg_edges = 0u64;
        for q in &prepared.queries {
            let vug = generate_tspg(&prepared.graph, q.source, q.target, q.window);
            tspg_edges += vug.report.result_edges as u64;
            for (i, ep) in EpAlgorithm::ALL.iter().enumerate() {
                let ub = ep.upper_bound(&prepared.graph, q.source, q.target, q.window);
                totals[i] += ub.num_edges() as u64;
            }
            totals[3] += vug.report.quick_edges as u64;
            totals[4] += vug.report.tight_edges as u64;
        }
        let ratio = |bound: u64| -> String {
            if bound == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", 100.0 * tspg_edges as f64 / bound as f64)
            }
        };
        table.push_row(vec![
            prepared.id.clone(),
            ratio(totals[0]),
            ratio(totals[1]),
            ratio(totals[2]),
            ratio(totals[3]),
            ratio(totals[4]),
        ]);
    }
    table
}

/// Exp-5 / Fig. 9: response time of the Dijkstra-based `tgTSG` versus
/// `QuickUBG` (identical reductions, different machinery).
pub fn exp5_quick_vs_tg(cfg: &HarnessConfig) -> Table {
    let mut table = Table::new(
        "Exp-5 (Fig. 9) — upper-bound graph construction: tgTSG vs QuickUBG",
        &["dataset", "tgTSG", "QuickUBG", "speedup", "edges identical"],
    );
    for spec in cfg.selected_specs() {
        let prepared = cfg.prepare(&spec);
        let mut tg_time = std::time::Duration::ZERO;
        let mut quick_time = std::time::Duration::ZERO;
        let mut identical = true;
        for q in &prepared.queries {
            let started = Instant::now();
            let tg = tspg_baselines::tg_tsg(&prepared.graph, q.source, q.target, q.window);
            tg_time += started.elapsed();
            let started = Instant::now();
            let quick = quick_upper_bound_graph(&prepared.graph, q.source, q.target, q.window);
            quick_time += started.elapsed();
            identical &= tg.edges() == quick.edges();
        }
        let speedup = if quick_time.as_secs_f64() > 0.0 {
            format!("{:.1}x", tg_time.as_secs_f64() / quick_time.as_secs_f64())
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            prepared.id.clone(),
            format_duration(tg_time),
            format_duration(quick_time),
            speedup,
            identical.to_string(),
        ]);
    }
    table
}

/// Exp-5 / Figs. 10 & 15: upper-bound generation time and ratio while
/// varying θ on selected datasets.
pub fn exp5_vary_theta(cfg: &HarnessConfig, dataset_ids: &[&str]) -> Vec<Table> {
    let mut tables = Vec::new();
    for id in dataset_ids {
        let Some(spec) = tspg_datasets::find(id) else { continue };
        let mut table = Table::new(
            format!("Exp-5 (Fig. 10) — upper-bound generation vs theta on {id}"),
            &["theta", "QuickUBG time", "TightUBG time", "QuickUBG ratio %", "TightUBG ratio %"],
        );
        for delta in [-4i64, -2, 0, 2, 4] {
            let theta = (spec.default_theta + delta).max(2);
            let prepared = cfg.prepare_with_theta(&spec, theta);
            let mut quick_time = std::time::Duration::ZERO;
            let mut tight_time = std::time::Duration::ZERO;
            let mut quick_edges = 0u64;
            let mut tight_edges = 0u64;
            let mut tspg_edges = 0u64;
            for q in &prepared.queries {
                let started = Instant::now();
                let gq = quick_upper_bound_graph(&prepared.graph, q.source, q.target, q.window);
                quick_time += started.elapsed();
                let started = Instant::now();
                let gt = tight_upper_bound_graph(&gq, q.source, q.target);
                tight_time += started.elapsed();
                quick_edges += gq.num_edges() as u64;
                tight_edges += gt.num_edges() as u64;
                tspg_edges += generate_tspg(&prepared.graph, q.source, q.target, q.window)
                    .report
                    .result_edges as u64;
            }
            let pct = |bound: u64| {
                if bound == 0 {
                    "-".into()
                } else {
                    format!("{:.1}", 100.0 * tspg_edges as f64 / bound as f64)
                }
            };
            table.push_row(vec![
                theta.to_string(),
                format_duration(quick_time),
                format_duration(tight_time),
                pct(quick_edges),
                pct(tight_edges),
            ]);
        }
        tables.push(table);
    }
    tables
}

/// Exp-6 / Fig. 11: EEV versus exhaustive enumeration, both applied to the
/// tight upper-bound graph, while varying θ.
pub fn exp6_eev_vs_enumeration(cfg: &HarnessConfig, dataset_ids: &[&str]) -> Vec<Table> {
    let mut tables = Vec::new();
    for id in dataset_ids {
        let Some(spec) = tspg_datasets::find(id) else { continue };
        let mut table = Table::new(
            format!("Exp-6 (Fig. 11) — EEV vs enumeration on G_t, dataset {id}"),
            &["theta", "Enumeration", "EEV", "speedup"],
        );
        for delta in [-2i64, 0, 2] {
            let theta = (spec.default_theta + delta).max(2);
            let prepared = cfg.prepare_with_theta(&spec, theta);
            let mut enum_time = std::time::Duration::ZERO;
            let mut eev_time = std::time::Duration::ZERO;
            let mut enum_inf = false;
            for q in &prepared.queries {
                let gq = quick_upper_bound_graph(&prepared.graph, q.source, q.target, q.window);
                let gt = tight_upper_bound_graph(&gq, q.source, q.target);
                let started = Instant::now();
                let naive = naive_tspg(&gt, q.source, q.target, q.window, &cfg.baseline_budget);
                enum_time += started.elapsed();
                enum_inf |= !naive.is_exact();
                let started = Instant::now();
                let _ = tspg_core::escaped_edges_verification(
                    &gt,
                    q.source,
                    q.target,
                    q.window,
                    tspg_core::BidirOptions::default(),
                );
                eev_time += started.elapsed();
            }
            let enum_cell = if enum_inf { "INF".to_string() } else { format_duration(enum_time) };
            let speedup = if enum_inf || eev_time.is_zero() {
                ">INF".to_string()
            } else {
                format!("{:.1}x", enum_time.as_secs_f64() / eev_time.as_secs_f64())
            };
            table.push_row(vec![theta.to_string(), enum_cell, format_duration(eev_time), speedup]);
        }
        tables.push(table);
    }
    tables
}

/// Exp-7 / Fig. 12: number of edges in the tspG versus the number of
/// temporal simple paths it contains, varying θ.
pub fn exp7_paths_vs_edges(cfg: &HarnessConfig, dataset_ids: &[&str]) -> Vec<Table> {
    let mut tables = Vec::new();
    for id in dataset_ids {
        let Some(spec) = tspg_datasets::find(id) else { continue };
        let mut table = Table::new(
            format!("Exp-7 (Fig. 12) — #paths vs #edges in the tspG, dataset {id}"),
            &[
                "theta",
                "total tspG edges",
                "total tspG vertices",
                "total simple paths",
                "paths/edges",
            ],
        );
        for delta in [-2i64, 0, 2] {
            let theta = (spec.default_theta + delta).max(2);
            let prepared = cfg.prepare_with_theta(&spec, theta);
            let mut edges = 0u64;
            let mut vertices = 0u64;
            let mut paths = 0u64;
            for q in &prepared.queries {
                let vug = generate_tspg(&prepared.graph, q.source, q.target, q.window);
                edges += vug.report.result_edges as u64;
                vertices += vug.report.result_vertices as u64;
                // Counting is exponential; cap it with the baseline budget so
                // the reported number is a (usually exact) lower bound.
                let tspg_graph = vug.tspg.to_graph(prepared.graph.num_vertices());
                paths +=
                    count_paths(&tspg_graph, q.source, q.target, q.window, &cfg.baseline_budget)
                        .count;
            }
            let ratio = if edges == 0 {
                "-".to_string()
            } else {
                format!("{:.1}", paths as f64 / edges as f64)
            };
            table.push_row(vec![
                theta.to_string(),
                edges.to_string(),
                vertices.to_string(),
                paths.to_string(),
                ratio,
            ]);
        }
        tables.push(table);
    }
    tables
}

/// Exp-9 (beyond the paper): throughput of the batch query engine.
///
/// For every selected dataset the same workload is answered three ways —
/// per-query one-shot `generate_tspg` calls (allocating all working state
/// afresh each time), the engine's sequential batch path (scratch reuse,
/// one worker), and the engine's parallel batch path (`threads` scoped
/// workers) — and the table reports wall-clock time and queries/second for
/// each, plus whether all three produced byte-identical result sets.
pub fn exp9_batch_throughput(cfg: &HarnessConfig, threads: usize) -> Table {
    let threads = threads.max(1);
    let mut table = Table::new(
        format!("Exp-9 — batch query engine throughput (parallel path: {threads} threads)"),
        &[
            "dataset",
            "queries",
            "one-shot",
            "batch x1",
            &format!("batch x{threads}"),
            "one-shot q/s",
            "batch x1 q/s",
            &format!("batch x{threads} q/s"),
            "identical",
        ],
    );
    for spec in cfg.selected_specs() {
        let prepared = cfg.prepare(&spec);
        // `Query` and the engine's `QuerySpec` are the same workspace type,
        // so the workload slice is passed through as-is.
        let queries: &[QuerySpec] = &prepared.queries;

        let started = Instant::now();
        let one_shot: Vec<VugResult> = queries
            .iter()
            .map(|q| generate_tspg(&prepared.graph, q.source, q.target, q.window))
            .collect();
        let one_shot_time = started.elapsed();

        // The cache is disabled so that the second and third runs measure
        // the raw execution paths, not cache hits (Exp-10 measures those).
        let engine = QueryEngine::new(prepared.graph.clone()).without_cache();
        let started = Instant::now();
        let batch_seq = engine.run_batch(queries, 1);
        let seq_time = started.elapsed();
        let started = Instant::now();
        let batch_par = engine.run_batch(queries, threads);
        let par_time = started.elapsed();

        let identical = one_shot
            .iter()
            .zip(batch_seq.iter())
            .zip(batch_par.iter())
            .all(|((a, b), c)| a.tspg == b.tspg && b.tspg == c.tspg);
        let qps = |d: std::time::Duration| -> String {
            if d.as_secs_f64() > 0.0 {
                format!("{:.0}", queries.len() as f64 / d.as_secs_f64())
            } else {
                "-".to_string()
            }
        };
        table.push_row(vec![
            prepared.id.clone(),
            queries.len().to_string(),
            format_duration(one_shot_time),
            format_duration(seq_time),
            format_duration(par_time),
            qps(one_shot_time),
            qps(seq_time),
            qps(par_time),
            identical.to_string(),
        ]);
    }
    table
}

/// Exp-10 (beyond the paper): serving throughput under skewed, repeated
/// traffic — the workload shape the planner and the result cache exist for.
///
/// For every selected dataset a Zipf-skewed repeated-query workload
/// (exact repeats plus narrowed-window refinements of a small catalog of
/// hot queries) is answered two ways:
///
/// * **PR 2 sequential** — the engine's raw per-query path, no planning,
///   no cache: one pipeline execution per query, in order.
/// * **planned + cached** — `run_batch_with_stats` through an engine with
///   an LRU result cache, fed the workload in batches so later batches hit
///   results cached by earlier ones.
///
/// The table reports wall-clock and the plan counters (full pipeline runs,
/// dedup, window-shared answers, cache hits with hit rate) plus an
/// `identical` column cross-checking that every planned/cached answer is
/// byte-identical to the sequential one.
///
/// # Panics
///
/// Panics if any planned/cached answer differs from the sequential one, or
/// if planning + caching fails to answer the batch with fewer full
/// pipeline executions than queries — both are acceptance criteria, and CI
/// runs this experiment on every push.
pub fn exp10_serving(cfg: &HarnessConfig, threads: usize, cache_entries: usize) -> Table {
    let threads = threads.max(1);
    let mut table = Table::new(
        format!(
            "Exp-10 — serving throughput on skewed repeated traffic \
             ({threads} threads, cache {cache_entries} entries)"
        ),
        &[
            "dataset",
            "queries",
            "distinct",
            "PR2 seq",
            "planned+cached",
            "speedup",
            "full runs",
            "dedup",
            "shared",
            "cache hits",
            "hit rate",
            "identical",
        ],
    );
    for spec in cfg.selected_specs() {
        let prepared = cfg.prepare(&spec);
        // A serving trace: 8x repetition over a catalog of hot queries.
        let workload_cfg = RepeatedWorkloadConfig::new(
            cfg.queries_per_dataset * 8,
            cfg.queries_per_dataset.max(1),
            spec.default_theta,
        );
        let queries = match generate_repeated_workload(&prepared.graph, &workload_cfg, cfg.seed) {
            Ok(queries) => queries,
            Err(e) => {
                eprintln!("exp10: skipping {} — workload generation failed: {e}", spec.id);
                continue;
            }
        };

        // PR 2 sequential baseline: raw pipeline per query, no plan/cache.
        let baseline_engine = QueryEngine::new(prepared.graph.clone()).without_cache();
        let mut scratch = tspg_core::QueryScratch::new();
        let started = Instant::now();
        let baseline: Vec<VugResult> =
            queries.iter().map(|&q| baseline_engine.run(q, &mut scratch)).collect();
        let baseline_time = started.elapsed();

        // Planned + cached serving loop: the workload arrives in batches,
        // so later batches can hit results cached by earlier ones.
        let engine = QueryEngine::new(prepared.graph.clone())
            .with_cache(CacheConfig::with_max_entries(cache_entries.max(1)));
        let mut stats = BatchStats::default();
        let mut answers: Vec<VugResult> = Vec::with_capacity(queries.len());
        let batch_size = queries.len().div_ceil(4).max(1);
        let started = Instant::now();
        for batch in queries.chunks(batch_size) {
            let (results, batch_stats) = engine.run_batch_with_stats(batch, threads);
            stats.merge(&batch_stats);
            answers.extend(results);
        }
        let served_time = started.elapsed();

        let identical = baseline.iter().zip(answers.iter()).all(|(a, b)| a.tspg == b.tspg);
        assert!(identical, "{}: planned/cached answers diverged from PR 2 sequential", spec.id);
        assert!(
            stats.pipeline_runs() < queries.len(),
            "{}: {} full pipeline runs for {} queries — planning saved nothing",
            spec.id,
            stats.pipeline_runs(),
            queries.len()
        );
        let cache = engine.cache_stats().expect("exp10 engine always has a cache");
        let speedup = if served_time.as_secs_f64() > 0.0 {
            format!("{:.1}x", baseline_time.as_secs_f64() / served_time.as_secs_f64())
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            prepared.id.clone(),
            queries.len().to_string(),
            workload_cfg.distinct.to_string(),
            format_duration(baseline_time),
            format_duration(served_time),
            speedup,
            stats.pipeline_runs().to_string(),
            stats.dedup_answered.to_string(),
            // Containment and envelope sharing both count here: queries
            // answered from some covering tspG rather than the full graph.
            (stats.shared_answered + stats.envelope_answered).to_string(),
            stats.cache_hits.to_string(),
            format!("{:.1}%", 100.0 * cache.hit_rate()),
            identical.to_string(),
        ]);
    }
    table
}

/// Exp-11 (beyond the paper): envelope sharing on overlapping-window
/// traffic — sliding same-`(s, t)` windows that overlap without nesting,
/// the shape containment-only planning cannot collapse.
///
/// The registry's synthetic datasets are deliberately *dense* miniatures
/// (tens of vertices, thousands of edges — `Scale::density_boost`
/// concentrates the per-window branching factor of the full-size graphs),
/// which is the wrong regime for cross-window sharing: on them every
/// window's tspG covers most of the graph, so re-running the pipeline on a
/// covering tspG costs nearly as much as on the graph itself. Envelope
/// units pay off in the *serving* regime — large sparse graphs with long
/// timestamp domains, where a query window touches a sliver of the edge
/// set and its tspG is a handful of edges. Like the Exp-8 case study, this
/// experiment therefore generates its own graphs: a uniform and a
/// hub-skewed serving graph, sized off the configured scale (`min_edges`
/// edges, average degree ~6, window span ~8% of the timestamp domain).
///
/// The workload (chains of third-span-stride sliding windows; see
/// `tspg_datasets::OverlappingWorkloadConfig`) is answered three ways, all
/// with the result cache off so the planner's own saving is what gets
/// measured:
///
/// * **PR 2 sequential** — the raw per-query path: one full-graph pipeline
///   execution per query.
/// * **containment-only** — `run_batch_with_stats` with envelope synthesis
///   disabled (the PR 3 planner): overlapping windows never nest, so this
///   plans one full-graph unit per distinct window.
/// * **envelope** — the default planner: each overlap chain collapses into
///   synthesized envelope units (cost guard `k = 2`, four windows per
///   envelope) whose full-graph runs answer every member from their tspGs,
///   with the members individually stealable across the worker threads.
///
/// The table reports wall-clock for the three arms, the envelope arm's
/// plan counters, and an `identical` column cross-checking that all three
/// produce byte-identical answers in batch order.
///
/// # Panics
///
/// Panics if any envelope or containment-only answer differs from the
/// sequential path, or if envelope planning fails to answer the batch with
/// fewer full-graph pipeline runs than containment-only planning — CI runs
/// this experiment on every push and greps the identity column.
pub fn exp11_envelopes(cfg: &HarnessConfig, threads: usize) -> Table {
    let threads = threads.max(1);
    let mut table = Table::new(
        format!("Exp-11 — envelope sharing on overlapping windows ({threads} threads, cache off)"),
        &[
            "graph",
            "|V|",
            "|E|",
            "queries",
            "chains",
            "PR2 seq",
            "containment",
            "envelope",
            "env vs containment",
            "full runs",
            "env units",
            "env answered",
            "identical",
        ],
    );
    // Serving-graph shape, scaled by the harness's edge budget.
    let edges = cfg.scale.min_edges.max(300);
    let vertices = (edges / 6).max(24);
    let timestamps = (edges / 20).max(30);
    let theta = (timestamps as i64 / 12).max(2);
    let shapes = [
        ("uniform", GraphGenerator::uniform(vertices, edges, timestamps)),
        ("hub", GraphGenerator::hub(vertices, edges, timestamps, 1.2)),
    ];
    for (name, generator) in shapes {
        let graph = generator.generate(cfg.seed ^ 0x11);
        // Chains of 6 sliding windows per catalog entry; a third-span
        // stride keeps consecutive windows overlapping (never nesting) and
        // lets the default cost guard (k = 2) absorb four windows per
        // envelope.
        let chains = cfg.queries_per_dataset.max(1);
        let workload_cfg = OverlappingWorkloadConfig {
            stride: (theta / 3).max(1),
            ..OverlappingWorkloadConfig::new(chains * 6, chains, theta)
        };
        let queries = match generate_overlapping_workload(&graph, &workload_cfg, cfg.seed) {
            Ok(queries) => queries,
            Err(e) => {
                eprintln!("exp11: skipping {name} graph — workload generation failed: {e}");
                continue;
            }
        };

        // PR 2 sequential baseline: raw pipeline per query.
        let baseline_engine = QueryEngine::new(graph.clone()).without_cache();
        let mut scratch = tspg_core::QueryScratch::new();
        let started = Instant::now();
        let baseline: Vec<VugResult> =
            queries.iter().map(|&q| baseline_engine.run(q, &mut scratch)).collect();
        let baseline_time = started.elapsed();

        // Containment-only planning (PR 3): no envelope synthesis.
        let containment_engine = QueryEngine::new(graph.clone())
            .without_cache()
            .with_planner(PlannerConfig::containment_only());
        let started = Instant::now();
        let (containment, containment_stats) =
            containment_engine.run_batch_with_stats(&queries, threads);
        let containment_time = started.elapsed();

        // Envelope planning (this PR): overlap chains collapse.
        let envelope_engine = QueryEngine::new(graph.clone()).without_cache();
        let started = Instant::now();
        let (envelope, stats) = envelope_engine.run_batch_with_stats(&queries, threads);
        let envelope_time = started.elapsed();

        let identical = baseline
            .iter()
            .zip(containment.iter())
            .zip(envelope.iter())
            .all(|((a, b), c)| a.tspg == b.tspg && a.tspg == c.tspg);
        assert!(identical, "{name}: envelope/containment answers diverged from sequential");
        assert!(
            stats.pipeline_runs() < containment_stats.pipeline_runs(),
            "{name}: envelope planning ran {} full pipelines vs containment-only's {} — \
             envelopes saved nothing",
            stats.pipeline_runs(),
            containment_stats.pipeline_runs()
        );
        let speedup = if envelope_time.as_secs_f64() > 0.0 {
            format!("{:.1}x", containment_time.as_secs_f64() / envelope_time.as_secs_f64())
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            name.to_string(),
            graph.num_vertices().to_string(),
            graph.num_edges().to_string(),
            queries.len().to_string(),
            chains.to_string(),
            format_duration(baseline_time),
            format_duration(containment_time),
            format_duration(envelope_time),
            speedup,
            stats.pipeline_runs().to_string(),
            stats.envelope_units.to_string(),
            stats.envelope_answered.to_string(),
            identical.to_string(),
        ]);
    }
    table
}

/// Exp-12 (beyond the paper): same-source frontier sharing on fan-out
/// traffic — bursts of queries expanding one hot source against many
/// targets over one window, the shape *none* of the earlier sharing axes
/// can collapse (different targets never dedup, contain, or envelope).
///
/// Like Exp-11 this runs in the serving regime (its own uniform and
/// hub-skewed sparse graphs; the registry's dense miniatures are the wrong
/// shape) and measures three arms, result cache off so the planner's own
/// saving is what gets measured:
///
/// * **PR 2 sequential** — one full pipeline per query: per query a
///   forward BFS, a backward BFS and an `O(m)` edge scan over the full
///   graph.
/// * **envelope-only** — the default planner with profile sharing
///   disabled: fan-out bursts plan one unit per target, so this arm runs
///   the same full-graph passes as the sequential one (plus cross-window
///   sharing where windows happen to nest).
/// * **frontier-shared** — the default planner: each burst's units share
///   one target-agnostic forward pass over the burst's hull window (an
///   [`tspg_core::ArrivalProfile`] since PR 8), and every member answers
///   from a candidate subgraph scanned off the clamped frontier instead of
///   re-filtering all `m` edges.
///
/// The table reports wall-clock for the three arms, the frontier arm's
/// group counters, and an `identical` column cross-checking that all three
/// arms produce byte-identical answers in batch order.
///
/// # Panics
///
/// Panics if any answer diverges between the arms, or if the frontier arm
/// failed to form any frontier group on a fan-out workload — CI runs this
/// experiment on every push and greps the identity column.
pub fn exp12_frontier_sharing(cfg: &HarnessConfig, threads: usize) -> Table {
    let threads = threads.max(1);
    let mut table = Table::new(
        format!("Exp-12 — same-source frontier sharing on fan-out bursts ({threads} threads, cache off)"),
        &[
            "graph",
            "|V|",
            "|E|",
            "queries",
            "bursts",
            "PR2 seq",
            "envelope-only",
            "frontier",
            "frontier vs envelope-only",
            "groups",
            "frontier answered",
            "identical",
        ],
    );
    // Serving-graph shape, scaled by the harness's edge budget. Narrow
    // windows over a long timestamp domain keep each query's neighbourhood
    // a sliver of the edge set — the regime where skipping the full-graph
    // scan pays.
    let edges = cfg.scale.min_edges.max(300);
    let vertices = (edges / 6).max(24);
    let timestamps = (edges / 10).max(40);
    let theta = (timestamps as i64 / 16).max(2);
    let shapes = [
        ("uniform", GraphGenerator::uniform(vertices, edges, timestamps)),
        ("hub", GraphGenerator::hub(vertices, edges, timestamps, 1.2)),
    ];
    for (name, generator) in shapes {
        let graph = generator.generate(cfg.seed ^ 0x12);
        // Bursts of ~8 same-source queries; round-robin emission means the
        // batch interleaves bursts the way concurrent clients would.
        let bursts = cfg.queries_per_dataset.max(1);
        let workload_cfg = FanoutWorkloadConfig::new(bursts * 8, bursts, theta);
        let queries = match generate_fanout_workload(&graph, &workload_cfg, cfg.seed) {
            Ok(queries) => queries,
            Err(e) => {
                eprintln!("exp12: skipping {name} graph — workload generation failed: {e}");
                continue;
            }
        };

        // PR 2 sequential baseline: raw pipeline per query.
        let baseline_engine = QueryEngine::new(graph.clone()).without_cache();
        let mut scratch = tspg_core::QueryScratch::new();
        let started = Instant::now();
        let baseline: Vec<VugResult> =
            queries.iter().map(|&q| baseline_engine.run(q, &mut scratch)).collect();
        let baseline_time = started.elapsed();

        // Envelope-only planning (PR 4): no frontier groups.
        let envelope_engine = QueryEngine::new(graph.clone())
            .without_cache()
            .with_planner(PlannerConfig::default().without_profile_sharing());
        let started = Instant::now();
        let (envelope, envelope_stats) = envelope_engine.run_batch_with_stats(&queries, threads);
        let envelope_time = started.elapsed();

        // Frontier-shared planning (this PR).
        let frontier_engine = QueryEngine::new(graph.clone()).without_cache();
        let started = Instant::now();
        let (frontier, stats) = frontier_engine.run_batch_with_stats(&queries, threads);
        let frontier_time = started.elapsed();

        let identical = baseline
            .iter()
            .zip(envelope.iter())
            .zip(frontier.iter())
            .all(|((a, b), c)| a.tspg == b.tspg && a.tspg == c.tspg);
        assert!(identical, "{name}: frontier/envelope answers diverged from sequential");
        assert!(
            stats.profile_groups >= 1,
            "{name}: a fan-out workload must form profile groups: {stats:?}"
        );
        assert_eq!(
            stats.pipeline_runs(),
            envelope_stats.pipeline_runs(),
            "{name}: frontier sharing cuts inside runs, never changes how many there are"
        );
        let speedup = if frontier_time.as_secs_f64() > 0.0 {
            format!("{:.1}x", envelope_time.as_secs_f64() / frontier_time.as_secs_f64())
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            name.to_string(),
            graph.num_vertices().to_string(),
            graph.num_edges().to_string(),
            queries.len().to_string(),
            bursts.to_string(),
            format_duration(baseline_time),
            format_duration(envelope_time),
            format_duration(frontier_time),
            speedup,
            stats.profile_groups.to_string(),
            stats.profile_answered.to_string(),
            identical.to_string(),
        ]);
    }
    table
}

/// Exp-14 (beyond the paper): per-source arrival profiles on *mixed-begin*
/// fan-out traffic — bursts expanding one hot source against many targets
/// whose window begins are jittered, the shape PR 5's begin-anchored
/// frontier sharing cannot collapse (a frontier is only reusable at the
/// exact begin it was computed for; a profile clamps to any begin inside
/// its hull).
///
/// Runs in the serving regime (same graph shapes as Exp-12), result cache
/// off so the planner's own saving is what gets measured, four arms:
///
/// * **PR 2 sequential** — one full pipeline per query.
/// * **no-sharing** — the default planner with profile sharing disabled.
///   On mixed-begin bursts this is also what PR 5's frontier grouping
///   degenerates to (no two members share a begin), so the column doubles
///   as the PR 5 baseline.
/// * **profile (cold)** — the default planner: each burst's units share
///   one [`tspg_core::ArrivalProfile`] over the hull window, clamped per
///   member begin; the profile cache starts empty so every group pays one
///   profile computation.
/// * **profile (warm)** — the same batch replayed on the same engine: the
///   profiles are resident in the engine's profile cache, so groups skip
///   even the one forward pass.
///
/// The table reports wall-clock for the four arms, a cold-vs-no-sharing
/// speedup, the profile group counters, the warm pass's cache hits, and an
/// `identical` column cross-checking that all four arms produce
/// byte-identical answers in batch order.
///
/// # Panics
///
/// Panics if any answer diverges between the arms, if the profile arm
/// failed to form any group on a mixed-begin fan-out workload, or if the
/// warm pass reports zero profile-cache hits — CI runs this experiment on
/// every push and greps the identity column.
pub fn exp14_profile_sharing(cfg: &HarnessConfig, threads: usize) -> Table {
    let threads = threads.max(1);
    let mut table = Table::new(
        format!("Exp-14 — arrival profiles on mixed-begin fan-outs ({threads} threads, cache off)"),
        &[
            "graph",
            "|V|",
            "|E|",
            "queries",
            "bursts",
            "PR2 seq",
            "no-sharing",
            "profile cold",
            "profile warm",
            "cold vs no-sharing",
            "groups",
            "profile answered",
            "warm cache hits",
            "identical",
        ],
    );
    // Same serving-graph shape as Exp-12; the jitter spreads each burst's
    // begins over half a window width, so the hull stays within the
    // planner's span-factor guard while no two members need share a begin.
    let edges = cfg.scale.min_edges.max(300);
    let vertices = (edges / 6).max(24);
    let timestamps = (edges / 10).max(40);
    let theta = (timestamps as i64 / 16).max(2);
    let jitter = (theta / 2).max(1);
    let shapes = [
        ("uniform", GraphGenerator::uniform(vertices, edges, timestamps)),
        ("hub", GraphGenerator::hub(vertices, edges, timestamps, 1.2)),
    ];
    for (name, generator) in shapes {
        let graph = generator.generate(cfg.seed ^ 0x14);
        let bursts = cfg.queries_per_dataset.max(1);
        let workload_cfg =
            FanoutWorkloadConfig::new(bursts * 8, bursts, theta).with_begin_jitter(jitter);
        let queries = match generate_fanout_workload(&graph, &workload_cfg, cfg.seed) {
            Ok(queries) => queries,
            Err(e) => {
                eprintln!("exp14: skipping {name} graph — workload generation failed: {e}");
                continue;
            }
        };

        // PR 2 sequential baseline: raw pipeline per query.
        let baseline_engine = QueryEngine::new(graph.clone()).without_cache();
        let mut scratch = tspg_core::QueryScratch::new();
        let started = Instant::now();
        let baseline: Vec<VugResult> =
            queries.iter().map(|&q| baseline_engine.run(q, &mut scratch)).collect();
        let baseline_time = started.elapsed();

        // No profile sharing: the PR 5 regime on mixed begins.
        let nosharing_engine = QueryEngine::new(graph.clone())
            .without_cache()
            .with_planner(PlannerConfig::default().without_profile_sharing());
        let started = Instant::now();
        let (nosharing, nosharing_stats) = nosharing_engine.run_batch_with_stats(&queries, threads);
        let nosharing_time = started.elapsed();

        // Profile-shared planning (this PR), cold then warm on one engine.
        let profile_engine = QueryEngine::new(graph.clone()).without_cache();
        let started = Instant::now();
        let (cold, stats) = profile_engine.run_batch_with_stats(&queries, threads);
        let cold_time = started.elapsed();
        let started = Instant::now();
        let (warm, warm_stats) = profile_engine.run_batch_with_stats(&queries, threads);
        let warm_time = started.elapsed();
        let cache = profile_engine
            .profile_cache_stats()
            .expect("exp14 runs with the default profile cache enabled");

        let identical = baseline
            .iter()
            .zip(nosharing.iter())
            .zip(cold.iter())
            .zip(warm.iter())
            .all(|(((a, b), c), d)| a.tspg == b.tspg && a.tspg == c.tspg && a.tspg == d.tspg);
        assert!(identical, "{name}: profile/no-sharing answers diverged from sequential");
        assert!(
            stats.profile_groups >= 1,
            "{name}: a mixed-begin fan-out workload must form profile groups: {stats:?}"
        );
        assert_eq!(
            nosharing_stats.profile_groups, 0,
            "{name}: the no-sharing arm must plan zero profile groups"
        );
        assert_eq!(
            stats.pipeline_runs(),
            nosharing_stats.pipeline_runs(),
            "{name}: profile sharing cuts inside runs, never changes how many there are"
        );
        assert!(
            warm_stats.profile_groups >= 1 && cache.hits > 0,
            "{name}: a warm replay must serve its groups from the profile cache: \
             {warm_stats:?} {cache:?}"
        );
        let speedup = if cold_time.as_secs_f64() > 0.0 {
            format!("{:.1}x", nosharing_time.as_secs_f64() / cold_time.as_secs_f64())
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            name.to_string(),
            graph.num_vertices().to_string(),
            graph.num_edges().to_string(),
            queries.len().to_string(),
            bursts.to_string(),
            format_duration(baseline_time),
            format_duration(nosharing_time),
            format_duration(cold_time),
            format_duration(warm_time),
            speedup,
            stats.profile_groups.to_string(),
            stats.profile_answered.to_string(),
            cache.hits.to_string(),
            identical.to_string(),
        ]);
    }
    table
}

/// Exp-15 (beyond the paper): warm-cache serving under a live edge feed.
///
/// The serving experiments above all hold the graph fixed; a live
/// deployment does not. This experiment drives the epoch-versioned
/// invalidation machinery end to end: a fan-out serving workload runs warm
/// on a caching engine while a streamed edge feed
/// ([`tspg_datasets::generate_edge_stream`]) lands batch after batch via
/// [`QueryEngine::ingest`]. Every ingestion bumps the graph epoch and
/// flushes the result cache, so the next pass re-answers every query
/// against the mutated graph; a replay of the same pass then shows the hit
/// rate recovering from the flush.
///
/// The no-stale proof obligation is checked inline at every epoch: each
/// served answer is compared byte-for-byte against a cache-less engine
/// built from scratch over the current edge set. The `identical` column
/// records that cross-check (and the post-ingest vs replay agreement) for
/// CI to grep.
///
/// # Panics
///
/// Panics if a served answer diverges from the fresh-engine answer at any
/// epoch (a stale read), if an ingestion fails to advance the epoch by
/// exactly one, or if a replay reports no new result-cache hits (the hit
/// rate never recovered) — CI runs this experiment on every push and greps
/// the identity column.
pub fn exp15_live_ingestion(cfg: &HarnessConfig, threads: usize) -> Table {
    let threads = threads.max(1);
    let mut table = Table::new(
        format!("Exp-15 — warm-cache serving under a live edge feed ({threads} threads)"),
        &[
            "graph",
            "|V|",
            "|E| start",
            "|E| end",
            "queries",
            "epochs",
            "ingested",
            "cold",
            "post-ingest",
            "replay",
            "recovered hits",
            "identical",
        ],
    );
    // Same serving-graph shapes as Exp-12/Exp-14.
    let edges = cfg.scale.min_edges.max(300);
    let vertices = (edges / 6).max(24);
    let timestamps = (edges / 10).max(40);
    let theta = (timestamps as i64 / 16).max(2);
    let shapes = [
        ("uniform", GraphGenerator::uniform(vertices, edges, timestamps)),
        ("hub", GraphGenerator::hub(vertices, edges, timestamps, 1.2)),
    ];
    for (name, generator) in shapes {
        let graph = generator.generate(cfg.seed ^ 0x15);
        let bursts = cfg.queries_per_dataset.max(1);
        let workload_cfg = FanoutWorkloadConfig::new(bursts * 4, bursts, theta);
        let queries = match generate_fanout_workload(&graph, &workload_cfg, cfg.seed) {
            Ok(queries) => queries,
            Err(e) => {
                eprintln!("exp15: skipping {name} graph — workload generation failed: {e}");
                continue;
            }
        };
        // The feed lands inside the graph's existing time domain, so the
        // new edges intersect live query windows and actually change
        // answers rather than appending dead weight past every window.
        let t_min = graph.edges().iter().map(|e| e.time).min().unwrap_or(0);
        let t_max = graph.edges().iter().map(|e| e.time).max().unwrap_or(0);
        let epochs = 3usize;
        let per_batch = (edges / 40).max(8);
        let step = ((t_max - t_min) / (epochs as i64 + 1)).max(1);
        let stream_cfg = EdgeStreamConfig::new(epochs, per_batch, t_min).with_time_step(step);
        let stream = match generate_edge_stream(&graph, &stream_cfg, cfg.seed ^ 0x51) {
            Ok(stream) => stream,
            Err(e) => {
                eprintln!("exp15: skipping {name} graph — edge stream generation failed: {e}");
                continue;
            }
        };

        // One live engine for the whole feed, default caches on.
        let mut engine = QueryEngine::new(graph.clone());
        let started = Instant::now();
        let _ = engine.run_batch_with_stats(&queries, threads);
        let cold_time = started.elapsed();

        let mut union = graph.edges().to_vec();
        let mut post_total = std::time::Duration::ZERO;
        let mut replay_total = std::time::Duration::ZERO;
        let mut recovered = 0u64;
        let mut ingested = 0usize;
        let mut final_edges = graph.num_edges();
        let mut identical = true;
        let mut scratch = tspg_core::QueryScratch::new();
        for (i, batch) in stream.iter().enumerate() {
            let before = engine.epoch();
            let epoch = engine.ingest(batch);
            assert_eq!(epoch, before.next(), "{name}: epoch {i}: ingestion must advance by one");
            ingested += batch.len();
            union.extend_from_slice(batch);
            let cache =
                || engine.cache_stats().expect("exp15 runs with the default result cache enabled");
            let hits_before = cache().hits;

            let started = Instant::now();
            let (post, _) = engine.run_batch_with_stats(&queries, threads);
            post_total += started.elapsed();

            // The no-stale obligation: a fresh cache-less engine over the
            // current edge set must agree byte-for-byte on every query.
            let fresh =
                QueryEngine::new(TemporalGraph::from_edges(graph.num_vertices(), union.clone()))
                    .without_cache();
            let fresh_ok = queries
                .iter()
                .zip(post.iter())
                .all(|(&q, served)| fresh.run(q, &mut scratch).tspg == served.tspg);
            assert!(fresh_ok, "{name}: epoch {i}: a served answer went stale after ingestion");
            final_edges = fresh.graph().num_edges();

            let started = Instant::now();
            let (replay, _) = engine.run_batch_with_stats(&queries, threads);
            replay_total += started.elapsed();
            let replay_ok = replay.iter().zip(post.iter()).all(|(a, b)| a.tspg == b.tspg);
            assert!(replay_ok, "{name}: epoch {i}: warm replay diverged from the post-ingest run");
            identical &= fresh_ok && replay_ok;

            let hits_after = cache().hits;
            assert!(
                hits_after > hits_before,
                "{name}: epoch {i}: the hit rate must recover after the epoch flush"
            );
            recovered += hits_after - hits_before;
        }
        table.push_row(vec![
            name.to_string(),
            graph.num_vertices().to_string(),
            graph.num_edges().to_string(),
            final_edges.to_string(),
            queries.len().to_string(),
            epochs.to_string(),
            ingested.to_string(),
            format_duration(cold_time),
            format_duration(post_total),
            format_duration(replay_total),
            recovered.to_string(),
            identical.to_string(),
        ]);
    }
    table
}

/// Sorted-latency percentile (nearest-rank on the closed interval).
fn percentile(sorted: &[std::time::Duration], p: f64) -> std::time::Duration {
    if sorted.is_empty() {
        return std::time::Duration::ZERO;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Exp-13 (beyond the paper): closed-loop serving latency through the
/// resident `tspg-server` vs the one-shot path, at several arrival rates.
///
/// A skewed repeated workload (the Exp-10 shape) over a serving graph is
/// answered two ways:
///
/// * **one-shot** — the cost of answering each query in a fresh process:
///   one raw pipeline execution per query on an engine with no cache and
///   no batching (per-query latency measured around each run);
/// * **server** — the same queries pushed through a resident
///   [`tspg_server::Server`] over its unix socket by several concurrent
///   closed-loop clients, each pacing requests with a think time (the
///   arrival-rate knob: zero think time is an all-out burst, longer think
///   times approximate sparser Poisson-like traffic). Admission
///   micro-batching makes strangers' concurrent duplicates share
///   dedup/cache/frontier work, at the price of up to one admission window
///   of added latency.
///
/// The table reports p50/p95/p99 request latency per arm and the server's
/// batch/sharing counters. Every server answer is checked byte-identical
/// against a sequential reference engine before any row is emitted.
///
/// # Panics
///
/// Panics if any server answer differs from the sequential reference, if a
/// client sees a protocol error, or if the server fails to micro-batch an
/// all-out burst (fewer batches than requests) — CI runs this experiment
/// on every push and greps the identity column.
pub fn exp13_server_latency(cfg: &HarnessConfig, threads: usize) -> Table {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;
    use std::time::Duration;
    use tspg_server::{protocol, Server, ServerConfig};

    let threads = threads.max(1);
    let mut table = Table::new(
        format!("Exp-13 — closed-loop serving latency through tspg-server ({threads} threads)"),
        &[
            "arm",
            "clients",
            "think",
            "queries",
            "p50",
            "p95",
            "p99",
            "batches",
            "cache hits",
            "dedup",
            "identical",
        ],
    );

    // Serving-graph shape, scaled by the harness's edge budget (Exp-11's
    // regime: sparse graph, long timestamp domain, sliver-sized windows).
    let edges = cfg.scale.min_edges.max(300);
    let vertices = (edges / 6).max(24);
    let timestamps = (edges / 20).max(30);
    let theta = (timestamps as i64 / 12).max(2);
    let graph = GraphGenerator::uniform(vertices, edges, timestamps).generate(cfg.seed ^ 0x13);
    let workload_cfg = RepeatedWorkloadConfig::new(
        (cfg.queries_per_dataset * 4).max(8),
        cfg.queries_per_dataset.max(1),
        theta,
    );
    let queries = generate_repeated_workload(&graph, &workload_cfg, cfg.seed)
        .expect("exp13 workload generation");

    // Sequential reference: the ground truth every arm is compared against.
    let reference_engine = QueryEngine::new(graph.clone()).without_cache();
    let mut scratch = tspg_core::QueryScratch::new();
    let mut reference: Vec<VugResult> = Vec::with_capacity(queries.len());
    let mut one_shot: Vec<Duration> = Vec::with_capacity(queries.len());
    for &q in &queries {
        let started = Instant::now();
        let result = reference_engine.run(q, &mut scratch);
        one_shot.push(started.elapsed());
        reference.push(result);
    }
    one_shot.sort_unstable();
    table.push_row(vec![
        "one-shot".to_string(),
        "1".to_string(),
        "-".to_string(),
        queries.len().to_string(),
        format_duration(percentile(&one_shot, 50.0)),
        format_duration(percentile(&one_shot, 95.0)),
        format_duration(percentile(&one_shot, 99.0)),
        "-".to_string(),
        "-".to_string(),
        "-".to_string(),
        "true".to_string(),
    ]);

    // Server arms: one per arrival rate (client think time).
    let clients = 4usize.min(queries.len().max(1));
    for (label, think) in [
        ("0", Duration::ZERO),
        ("500us", Duration::from_micros(500)),
        ("2ms", Duration::from_millis(2)),
    ] {
        let socket = std::env::temp_dir().join(format!(
            "tspg_exp13_{}_{label}_{:x}.sock",
            std::process::id(),
            cfg.seed
        ));
        let engine = QueryEngine::new(graph.clone());
        let config = ServerConfig {
            admit_max: 8,
            admit_window: Duration::from_millis(1),
            threads,
            ..ServerConfig::default()
        };
        let handle = Server::bind(engine, &socket, config).expect("exp13 server bind");

        // Closed-loop clients: request, wait for the answer, think, repeat.
        // Client c owns queries c, c + clients, c + 2*clients, ...
        let mut latencies: Vec<Duration> = Vec::with_capacity(queries.len());
        std::thread::scope(|scope| {
            let mut workers = Vec::new();
            for c in 0..clients {
                let socket = socket.clone();
                let queries = &queries;
                let reference = &reference;
                workers.push(scope.spawn(move || {
                    let stream = UnixStream::connect(&socket).expect("exp13 client connect");
                    let mut reader =
                        BufReader::new(stream.try_clone().expect("exp13 client clone"));
                    let mut writer = stream;
                    let mut latencies = Vec::new();
                    for i in (c..queries.len()).step_by(clients) {
                        let line = protocol::format_query(i as u64, &queries[i]);
                        let started = Instant::now();
                        writer
                            .write_all(line.as_bytes())
                            .and_then(|()| writer.write_all(b"\n"))
                            .and_then(|()| writer.flush())
                            .expect("exp13 client write");
                        let mut reply = String::new();
                        reader.read_line(&mut reply).expect("exp13 client read");
                        latencies.push(started.elapsed());
                        let response =
                            protocol::parse_response(reply.trim_end()).expect("exp13 client parse");
                        let protocol::Response::Result(payload) = response else {
                            panic!("exp13: unexpected reply {response:?}");
                        };
                        assert_eq!(payload.id, i as u64, "closed loop: replies match requests");
                        assert_eq!(
                            payload.edges,
                            reference[i].tspg.edges(),
                            "exp13: server answer for query {i} diverged from sequential"
                        );
                        if !think.is_zero() {
                            std::thread::sleep(think);
                        }
                    }
                    latencies
                }));
            }
            for worker in workers {
                latencies.extend(worker.join().expect("exp13 client thread"));
            }
        });

        handle.shutdown();
        let report = handle.join();
        assert_eq!(report.responses, queries.len() as u64);
        // At sparse arrival rates a batch may legitimately hold a single
        // request, so only the all-out burst pins the micro-batching win.
        assert!(
            !think.is_zero() || report.batches < queries.len() as u64 || queries.len() <= 1,
            "exp13: {} batches for {} burst requests — admission never micro-batched",
            report.batches,
            queries.len()
        );
        latencies.sort_unstable();
        table.push_row(vec![
            "server".to_string(),
            clients.to_string(),
            label.to_string(),
            queries.len().to_string(),
            format_duration(percentile(&latencies, 50.0)),
            format_duration(percentile(&latencies, 95.0)),
            format_duration(percentile(&latencies, 99.0)),
            report.batches.to_string(),
            report.totals.cache_hits.to_string(),
            report.totals.dedup_answered.to_string(),
            // Asserted per request above; recorded for the CI grep.
            "true".to_string(),
        ]);
    }
    table
}

/// Exp-8 / Fig. 13: the transit case study. Generates a synthetic bus
/// schedule (the SFMTA substitute), picks a transfer-rich query, and renders
/// the resulting tspG both as a table and as Graphviz DOT.
pub fn exp8_case_study(seed: u64) -> (Table, String) {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let (graph, names) = generate_transit(&mut rng, 12, 10, 12, 2, 0.45, 240);

    // Pick the query with the richest tspG among a handful of hub pairs, to
    // mirror the Silver Ave → 30th St example of the paper.
    let hubs: Vec<_> = graph
        .non_isolated_vertices()
        .into_iter()
        .filter(|&v| names[v as usize].starts_with("Hub"))
        .collect();
    let mut best = None;
    for (i, &a) in hubs.iter().enumerate() {
        for &b in hubs.iter().skip(i + 1) {
            for begin in [30, 90, 150] {
                let window = TimeInterval::new(begin, begin + 10);
                let result = generate_tspg(&graph, a, b, window);
                let edges = result.tspg.num_edges();
                if best.as_ref().is_none_or(|(_, _, _, e)| edges > *e) && edges > 0 {
                    best = Some((a, b, window, edges));
                }
            }
        }
    }
    let (s, t, window, _) = best.expect("the schedule always has at least one connected hub pair");
    let result = generate_tspg(&graph, s, t, window);

    let mut table = Table::new(
        format!(
            "Exp-8 (Fig. 13) — transit case study: {} -> {} within {window}",
            names[s as usize], names[t as usize]
        ),
        &["from", "to", "departure"],
    );
    for e in result.tspg.edges() {
        table.push_row(vec![
            names[e.src as usize].clone(),
            names[e.dst as usize].clone(),
            e.time.to_string(),
        ]);
    }
    let tspg_graph = result.tspg.to_graph(graph.num_vertices());
    let dot = tspg_graph::io::to_dot(&tspg_graph, Some(&|v| names[v as usize].clone()));
    (table, dot)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_cfg() -> HarnessConfig {
        HarnessConfig { datasets: vec!["D1".into()], ..HarnessConfig::smoke() }
    }

    #[test]
    fn table1_lists_selected_datasets() {
        let t = table1_datasets(&smoke_cfg());
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("email-Eu-core"));
    }

    #[test]
    fn exp1_produces_one_row_per_dataset() {
        let t = exp1_response_time(&smoke_cfg());
        assert_eq!(t.num_rows(), 1);
        assert!(t.render().contains("D1"));
    }

    #[test]
    fn exp2_and_exp5_theta_sweeps_have_five_points() {
        let tables = exp2_vary_theta(&smoke_cfg(), &["D1"]);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].num_rows(), 5);
        let tables = exp5_vary_theta(&smoke_cfg(), &["D1"]);
        assert_eq!(tables[0].num_rows(), 5);
    }

    #[test]
    fn exp3_exp4_table2_run_on_smoke_config() {
        let cfg = smoke_cfg();
        assert_eq!(exp3_space(&cfg).num_rows(), 1);
        assert_eq!(exp4_phases(&cfg).num_rows(), 1);
        let t2 = table2_upper_bound_ratio(&cfg);
        assert_eq!(t2.num_rows(), 1);
    }

    #[test]
    fn exp5_reports_identical_reductions() {
        let t = exp5_quick_vs_tg(&smoke_cfg());
        assert!(t.render().contains("true"));
        assert!(!t.render().contains("false"));
    }

    #[test]
    fn exp6_and_exp7_produce_sweeps() {
        let cfg = smoke_cfg();
        let t = exp6_eev_vs_enumeration(&cfg, &["D1"]);
        assert_eq!(t[0].num_rows(), 3);
        let t = exp7_paths_vs_edges(&cfg, &["D1"]);
        assert_eq!(t[0].num_rows(), 3);
    }

    #[test]
    fn exp9_reports_identical_results_across_execution_modes() {
        let t = exp9_batch_throughput(&smoke_cfg(), 2);
        assert_eq!(t.num_rows(), 1);
        let text = t.render();
        assert!(text.contains("true"), "{text}");
        assert!(!text.contains("false"), "{text}");
    }

    #[test]
    fn exp10_saves_pipeline_executions_and_stays_identical() {
        let t = exp10_serving(&smoke_cfg(), 2, 256);
        assert_eq!(t.num_rows(), 1);
        let text = t.render();
        assert!(text.contains("true"), "{text}");
        assert!(!text.contains("false"), "{text}");
    }

    #[test]
    fn exp11_envelope_sharing_beats_containment_and_stays_identical() {
        // Exp-11 generates its own serving graphs (one uniform, one
        // hub-skewed row) rather than using the dataset registry.
        let t = exp11_envelopes(&smoke_cfg(), 2);
        assert_eq!(t.num_rows(), 2);
        let text = t.render();
        assert!(text.contains("true"), "{text}");
        assert!(!text.contains("false"), "{text}");
    }

    #[test]
    fn exp12_frontier_sharing_forms_groups_and_stays_identical() {
        let t = exp12_frontier_sharing(&smoke_cfg(), 2);
        assert_eq!(t.num_rows(), 2);
        let text = t.render();
        assert!(text.contains("true"), "{text}");
        assert!(!text.contains("false"), "{text}");
    }

    #[test]
    fn exp14_profile_sharing_forms_groups_and_stays_identical() {
        let t = exp14_profile_sharing(&smoke_cfg(), 2);
        assert_eq!(t.num_rows(), 2);
        let text = t.render();
        assert!(text.contains("true"), "{text}");
        assert!(!text.contains("false"), "{text}");
    }

    #[test]
    fn exp15_live_ingestion_recovers_hits_and_never_serves_stale() {
        let t = exp15_live_ingestion(&smoke_cfg(), 2);
        assert_eq!(t.num_rows(), 2);
        let text = t.render();
        assert!(text.contains("true"), "{text}");
        assert!(!text.contains("false"), "{text}");
    }

    #[test]
    fn exp8_case_study_produces_a_tspg_and_dot() {
        let (table, dot) = exp8_case_study(7);
        assert!(table.num_rows() > 0);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("Hub"));
    }
}
