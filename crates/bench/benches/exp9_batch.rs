//! Criterion benchmark behind Exp-9: per-query one-shot `generate_tspg`
//! (all working state allocated afresh every call) versus the batch query
//! engine's scratch-reusing sequential path on identical workloads.
//!
//! Scratch reuse must never regress latency: the `engine-batch` series
//! (cache disabled, so every iteration re-executes the pipeline) is
//! expected to match or beat `one-shot` on every dataset. The
//! `engine-cached` series runs the same batch through a cache-enabled
//! engine — after the first iteration every query is a cache hit, so it
//! bounds the steady-state serving cost of a fully warm cache.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tspg_bench::harness::HarnessConfig;
use tspg_core::{generate_tspg, QueryEngine, QuerySpec};

fn bench_batch_engine(c: &mut Criterion) {
    let cfg = HarnessConfig::smoke();
    let mut group = c.benchmark_group("exp9_batch");
    group.sample_size(10);
    for id in ["D1", "D7"] {
        let spec = tspg_datasets::find(id).unwrap();
        let prepared = cfg.prepare(&spec);
        let queries: Vec<QuerySpec> = prepared.queries.iter().take(10).copied().collect();
        group.bench_with_input(BenchmarkId::new("one-shot", id), &queries, |b, queries| {
            b.iter(|| {
                for q in queries {
                    black_box(generate_tspg(&prepared.graph, q.source, q.target, q.window));
                }
            })
        });
        let engine = QueryEngine::new(prepared.graph.clone()).without_cache();
        group.bench_with_input(BenchmarkId::new("engine-batch", id), &queries, |b, queries| {
            b.iter(|| black_box(engine.run_batch(queries, 1)))
        });
        let cached = QueryEngine::new(prepared.graph.clone());
        group.bench_with_input(BenchmarkId::new("engine-cached", id), &queries, |b, queries| {
            b.iter(|| black_box(cached.run_batch(queries, 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch_engine);
criterion_main!(benches);
