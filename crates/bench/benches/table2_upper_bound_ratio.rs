//! Criterion benchmark behind Table II: the cost of building each
//! upper-bound graph (dtTSG, esTSG, tgTSG, QuickUBG, TightUBG) on one query
//! batch. (The ratios themselves are reported by the `experiments` binary;
//! this bench tracks the construction costs side by side.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tspg_baselines::EpAlgorithm;
use tspg_bench::harness::HarnessConfig;
use tspg_core::{quick_upper_bound_graph, tight_upper_bound_graph};

fn bench_upper_bounds(c: &mut Criterion) {
    let cfg = HarnessConfig::smoke();
    let spec = tspg_datasets::find("D2").unwrap();
    let prepared = cfg.prepare(&spec);
    let queries: Vec<_> = prepared.queries.iter().take(10).copied().collect();

    let mut group = c.benchmark_group("table2_upper_bounds");
    group.sample_size(10);
    for ep in EpAlgorithm::ALL {
        group.bench_with_input(
            BenchmarkId::new(ep.upper_bound_name(), "D2"),
            &queries,
            |b, queries| {
                b.iter(|| {
                    for q in queries {
                        black_box(ep.upper_bound(&prepared.graph, q.source, q.target, q.window));
                    }
                })
            },
        );
    }
    group.bench_with_input(BenchmarkId::new("QuickUBG", "D2"), &queries, |b, queries| {
        b.iter(|| {
            for q in queries {
                black_box(quick_upper_bound_graph(&prepared.graph, q.source, q.target, q.window));
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("TightUBG", "D2"), &queries, |b, queries| {
        b.iter(|| {
            for q in queries {
                let gq = quick_upper_bound_graph(&prepared.graph, q.source, q.target, q.window);
                black_box(tight_upper_bound_graph(&gq, q.source, q.target));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_upper_bounds);
criterion_main!(benches);
