//! Criterion benchmark behind Exp-4 / Fig. 8: cost of each VUG phase, plus
//! the ablation configurations (no TightUBG, no bidirectional-DFS
//! optimizations) called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tspg_bench::harness::HarnessConfig;
use tspg_core::{
    generate_tspg_with, quick_upper_bound_graph, tight_upper_bound_graph, TcvTables, VugConfig,
};

fn bench_phases(c: &mut Criterion) {
    let cfg = HarnessConfig::smoke();
    let spec = tspg_datasets::find("D1").unwrap();
    let prepared = cfg.prepare(&spec);
    let queries: Vec<_> = prepared.queries.iter().take(5).copied().collect();

    let mut group = c.benchmark_group("exp4_phases");
    group.sample_size(10);

    group.bench_function("quick_ubg", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(quick_upper_bound_graph(&prepared.graph, q.source, q.target, q.window));
            }
        })
    });

    let gqs: Vec<_> = queries
        .iter()
        .map(|q| (q, quick_upper_bound_graph(&prepared.graph, q.source, q.target, q.window)))
        .collect();
    group.bench_function("tcv_tables", |b| {
        b.iter(|| {
            for (q, gq) in &gqs {
                black_box(TcvTables::compute(gq, q.source, q.target));
            }
        })
    });
    group.bench_function("tight_ubg", |b| {
        b.iter(|| {
            for (q, gq) in &gqs {
                black_box(tight_upper_bound_graph(gq, q.source, q.target));
            }
        })
    });

    for (label, config) in [
        ("vug_full", VugConfig::full()),
        ("vug_no_tight", VugConfig::without_tight_ubg()),
        ("vug_no_bidir_opts", VugConfig::without_bidir_optimizations()),
    ] {
        group.bench_with_input(BenchmarkId::new("end_to_end", label), &config, |b, config| {
            b.iter(|| {
                for q in &queries {
                    black_box(generate_tspg_with(
                        &prepared.graph,
                        q.source,
                        q.target,
                        q.window,
                        config,
                    ));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
