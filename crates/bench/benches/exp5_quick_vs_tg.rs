//! Criterion benchmark behind Exp-5 / Fig. 9: the Dijkstra-based `tgTSG`
//! reduction versus the BFS-like `QuickUBG` on identical queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tspg_bench::harness::HarnessConfig;
use tspg_core::quick_upper_bound_graph;

fn bench_quick_vs_tg(c: &mut Criterion) {
    let cfg = HarnessConfig::smoke();
    let mut group = c.benchmark_group("exp5_quick_vs_tg");
    group.sample_size(10);
    for id in ["D1", "D7"] {
        let spec = tspg_datasets::find(id).unwrap();
        let prepared = cfg.prepare(&spec);
        let queries: Vec<_> = prepared.queries.iter().take(10).copied().collect();
        group.bench_with_input(BenchmarkId::new("tgTSG", id), &queries, |b, queries| {
            b.iter(|| {
                for q in queries {
                    black_box(tspg_baselines::tg_tsg(
                        &prepared.graph,
                        q.source,
                        q.target,
                        q.window,
                    ));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("QuickUBG", id), &queries, |b, queries| {
            b.iter(|| {
                for q in queries {
                    black_box(quick_upper_bound_graph(
                        &prepared.graph,
                        q.source,
                        q.target,
                        q.window,
                    ));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_quick_vs_tg);
criterion_main!(benches);
