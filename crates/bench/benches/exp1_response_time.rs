//! Criterion benchmark behind Exp-1 / Fig. 5: per-query response time of the
//! three enumeration baselines and VUG on a representative dataset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tspg_bench::harness::{run_query, Algorithm, HarnessConfig};
use tspg_enum::Budget;

fn bench_exp1(c: &mut Criterion) {
    let cfg = HarnessConfig::smoke();
    let budget = Budget::steps(200_000);
    let mut group = c.benchmark_group("exp1_response_time");
    group.sample_size(10);
    for spec in [tspg_datasets::find("D1").unwrap(), tspg_datasets::find("D8").unwrap()] {
        let prepared = cfg.prepare(&spec);
        let queries: Vec<_> = prepared.queries.iter().take(5).copied().collect();
        for algorithm in Algorithm::HEADLINE {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), &prepared.id),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        for q in queries {
                            black_box(run_query(algorithm, &prepared.graph, q, &budget));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exp1);
criterion_main!(benches);
