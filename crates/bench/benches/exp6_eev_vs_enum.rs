//! Criterion benchmark behind Exp-6 / Fig. 11: Escaped Edges Verification
//! versus exhaustive enumeration, both applied to the tight upper-bound
//! graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tspg_bench::harness::HarnessConfig;
use tspg_core::{
    escaped_edges_verification, quick_upper_bound_graph, tight_upper_bound_graph, BidirOptions,
};
use tspg_enum::{naive_tspg, Budget};

fn bench_eev_vs_enum(c: &mut Criterion) {
    let cfg = HarnessConfig::smoke();
    let spec = tspg_datasets::find("D1").unwrap();
    let prepared = cfg.prepare(&spec);
    let budget = Budget::steps(500_000);

    // Pre-build the tight upper-bound graphs so the benchmark isolates the
    // final phase only, exactly as Exp-6 does.
    let inputs: Vec<_> = prepared
        .queries
        .iter()
        .take(10)
        .map(|q| {
            let gq = quick_upper_bound_graph(&prepared.graph, q.source, q.target, q.window);
            (*q, tight_upper_bound_graph(&gq, q.source, q.target))
        })
        .collect();

    let mut group = c.benchmark_group("exp6_eev_vs_enum");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("enumeration", "D1"), &inputs, |b, inputs| {
        b.iter(|| {
            for (q, gt) in inputs {
                black_box(naive_tspg(gt, q.source, q.target, q.window, &budget));
            }
        })
    });
    group.bench_with_input(BenchmarkId::new("EEV", "D1"), &inputs, |b, inputs| {
        b.iter(|| {
            for (q, gt) in inputs {
                black_box(escaped_edges_verification(
                    gt,
                    q.source,
                    q.target,
                    q.window,
                    BidirOptions::default(),
                ));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_eev_vs_enum);
criterion_main!(benches);
