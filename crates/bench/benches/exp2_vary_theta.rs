//! Criterion benchmark behind Exp-2 / Fig. 6: VUG response time as the query
//! span θ grows (the baselines blow up exponentially; VUG grows modestly).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tspg_bench::harness::{run_query, Algorithm, HarnessConfig};
use tspg_enum::Budget;

fn bench_exp2(c: &mut Criterion) {
    let cfg = HarnessConfig::smoke();
    let spec = tspg_datasets::find("D1").unwrap();
    let budget = Budget::steps(200_000);
    let mut group = c.benchmark_group("exp2_vary_theta");
    group.sample_size(10);
    for theta in [6i64, 10, 14] {
        let prepared = cfg.prepare_with_theta(&spec, theta);
        let queries: Vec<_> = prepared.queries.iter().take(5).copied().collect();
        for algorithm in [Algorithm::Vug, Algorithm::EpTgTsg] {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), theta),
                &queries,
                |b, queries| {
                    b.iter(|| {
                        for q in queries {
                            black_box(run_query(algorithm, &prepared.graph, q, &budget));
                        }
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_exp2);
criterion_main!(benches);
