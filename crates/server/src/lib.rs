//! # tspg-server
//!
//! A **resident serving frontend** for the batch query engine: one loaded
//! graph, one long-lived [`QueryEngine`], many concurrent clients over a
//! unix domain socket speaking the line-oriented [`protocol`].
//!
//! Every engine win since the planner landed — result-cache hits, dedup,
//! contained-window and envelope sharing, frontier groups — only pays off
//! *inside a batch* or across batches of a long-lived process. One-shot
//! CLI invocations get none of it. The server closes that gap with
//! **admission micro-batching**:
//!
//! * per-connection **reader threads** parse request lines and enqueue
//!   them — tagged `(client, request_id)` — on a shared admission queue;
//! * a single **dispatcher thread** flushes the queue to
//!   [`QueryEngine::run_batch_with_stats`] as soon as
//!   [`ServerConfig::admit_max`] requests accumulate **or** the oldest
//!   pending request has waited [`ServerConfig::admit_window`], whichever
//!   comes first — so strangers' queries land in one batch and share
//!   dedup/containment/envelope/frontier work;
//! * answers stream back per request on the client's connection, tagged
//!   with the request id (a client may pipeline up to
//!   [`ServerConfig::quota`] requests; beyond that it gets tagged
//!   `error … quota exceeded` replies instead of queue slots).
//!
//! The `stats` verb snapshots everything as `key=value` lines: the
//! server's own admission counters, the engine's accumulated
//! [`BatchStats`] (via [`BatchStats::key_values`]) and the result cache's
//! [`tspg_core::CacheStats`]. The `shutdown` verb drains the queue,
//! answers everything pending, unlinks the socket and exits cleanly.
//!
//! Batching changes *who computes* an answer, never the answer: every
//! response is byte-identical to a one-shot [`tspg_core::generate_tspg`]
//! call, which `tests/server_admission.rs` pins across a client grid and
//! CI's `server-smoke` job re-checks end to end on every push.
//!
//! ```no_run
//! use tspg_core::QueryEngine;
//! use tspg_graph::fixtures::figure1_graph;
//! use tspg_server::{Server, ServerConfig};
//!
//! let engine = QueryEngine::new(figure1_graph());
//! let handle = Server::bind(engine, "/tmp/tspg.sock", ServerConfig::default()).unwrap();
//! // ... clients connect and speak the protocol ...
//! handle.shutdown();
//! let report = handle.join();
//! assert_eq!(report.totals.queries, 0);
//! ```

#![forbid(unsafe_code)]

pub mod protocol;

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tspg_core::{BatchStats, QueryEngine, QuerySpec};
use tspg_graph::TemporalEdge;

/// Admission and fairness knobs of a [`Server`].
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Flush the admission queue to the engine once this many requests are
    /// pending (the size trigger of the micro-batch).
    pub admit_max: usize,
    /// Flush once the *oldest* pending request has waited this long (the
    /// latency trigger). Admission adds at most this much to a request's
    /// latency; in exchange concurrent strangers share batch work.
    pub admit_window: Duration,
    /// Per-client cap on pipelined (sent but unanswered) requests. A
    /// request beyond the cap is answered with a tagged `error` line
    /// instead of a queue slot, so one greedy client cannot starve the
    /// admission queue.
    pub quota: usize,
    /// Worker threads handed to [`QueryEngine::run_batch_with_stats`] per
    /// flush.
    pub threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        let threads =
            std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
        Self { admit_max: 32, admit_window: Duration::from_millis(2), quota: 1024, threads }
    }
}

/// Final accounting of a server's lifetime, returned by
/// [`ServerHandle::join`].
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerReport {
    /// Accumulated engine counters over every flushed batch.
    pub totals: BatchStats,
    /// Batches flushed to the engine.
    pub batches: u64,
    /// Request lines received (all verbs).
    pub requests: u64,
    /// `result` lines successfully written back.
    pub responses: u64,
    /// Computed answers dropped because their client had disconnected.
    pub dropped: u64,
    /// Query requests rejected with a quota error.
    pub quota_rejections: u64,
    /// Request lines that failed to parse.
    pub malformed: u64,
}

/// One request parked in the admission queue.
///
/// Queries and ingests share one FIFO queue so a client that pipelines
/// `query … ingest … query …` observes its own mutations in order; the
/// dispatcher drains the queue in *homogeneous runs* (see
/// [`collect_batch`]), which is what makes "a batch never straddles an
/// epoch" true: every query of a batch runs against the graph exactly as
/// it stood when the batch was collected.
enum Pending {
    Query(PendingQuery),
    Ingest(PendingIngest),
}

impl Pending {
    fn enqueued(&self) -> Instant {
        match self {
            Pending::Query(p) => p.enqueued,
            Pending::Ingest(p) => p.enqueued,
        }
    }
}

/// One query awaiting admission.
struct PendingQuery {
    client: Arc<ClientSlot>,
    id: u64,
    query: QuerySpec,
    enqueued: Instant,
}

/// One edge batch awaiting application at the next batch boundary.
struct PendingIngest {
    client: Arc<ClientSlot>,
    edges: Vec<TemporalEdge>,
    enqueued: Instant,
}

/// Per-connection state shared between its reader thread and the
/// dispatcher.
struct ClientSlot {
    /// Write half (a dup of the connection's fd); all response writers
    /// serialize on this lock.
    writer: Mutex<UnixStream>,
    /// Requests enqueued but not yet answered (the quota gauge).
    in_flight: AtomicUsize,
    /// Set once the connection is known dead — pending answers for a gone
    /// client are dropped instead of written.
    gone: AtomicBool,
}

impl ClientSlot {
    /// Writes one protocol line; on failure the client is marked gone so
    /// the dispatcher stops composing answers for it.
    fn write_line(&self, line: &str) -> bool {
        let Ok(mut writer) = self.writer.lock() else {
            return false;
        };
        let ok = writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_ok();
        if !ok {
            self.gone.store(true, Ordering::Release);
        }
        ok
    }

    /// Tears the connection down (both halves), unblocking the reader.
    fn hang_up(&self) {
        if let Ok(writer) = self.writer.lock() {
            let _ = writer.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Monotonic counters of the serving loop, all exposed by the `stats`
/// verb.
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    responses: AtomicU64,
    dropped: AtomicU64,
    quota_rejections: AtomicU64,
    malformed: AtomicU64,
    batches: AtomicU64,
    size_flushes: AtomicU64,
    timer_flushes: AtomicU64,
    empty_wakeups: AtomicU64,
    clients_accepted: AtomicU64,
    clients_gone: AtomicU64,
    ingest_batches: AtomicU64,
    ingest_edges: AtomicU64,
}

/// State shared by the acceptor, the readers and the dispatcher.
struct Shared {
    /// The live engine. Query batches and stats snapshots take the read
    /// half; only the dispatcher's ingest application takes the write
    /// half, so queries never observe a graph mid-mutation. Never acquired
    /// while holding the admission lock ([`collect_batch`] returns first).
    engine: RwLock<QueryEngine>,
    config: ServerConfig,
    path: PathBuf,
    admission: Mutex<VecDeque<Pending>>,
    admit_cv: Condvar,
    shutdown: AtomicBool,
    totals: Mutex<BatchStats>,
    counters: Counters,
    clients: Mutex<Vec<Arc<ClientSlot>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl Shared {
    /// Flips the shutdown flag and wakes every thread that could be
    /// parked: the dispatcher (condvar) and the acceptor (a wake-up
    /// connection to our own socket).
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Notify while holding the admission lock: without it the
        // dispatcher could check the flag, then park — missing this
        // notification — and sleep out a whole admission window before
        // draining.
        {
            let _queue = self.admission.lock().unwrap_or_else(PoisonError::into_inner);
            self.admit_cv.notify_all();
        }
        let _ = UnixStream::connect(&self.path);
    }

    /// The `stats` verb's reply: every counter as a `key=value` line,
    /// terminated by a bare `end` line.
    fn stats_text(&self) -> String {
        let mut out = String::new();
        let mut push = |key: &str, value: u64| {
            out.push_str(key);
            out.push('=');
            out.push_str(&value.to_string());
            out.push('\n');
        };
        push("admit_max", self.config.admit_max as u64);
        push("admit_window_us", self.config.admit_window.as_micros().min(u64::MAX as u128) as u64);
        push("quota", self.config.quota as u64);
        push("threads", self.config.threads as u64);
        // relaxed: serving counters are monotone statistics; a snapshot
        // slightly out of step across keys is acceptable by design.
        let c = &self.counters;
        push("requests", c.requests.load(Ordering::Relaxed));
        push("responses", c.responses.load(Ordering::Relaxed));
        push("dropped", c.dropped.load(Ordering::Relaxed));
        push("quota_rejections", c.quota_rejections.load(Ordering::Relaxed));
        push("malformed", c.malformed.load(Ordering::Relaxed));
        push("batches", c.batches.load(Ordering::Relaxed));
        push("size_flushes", c.size_flushes.load(Ordering::Relaxed));
        push("timer_flushes", c.timer_flushes.load(Ordering::Relaxed));
        push("empty_wakeups", c.empty_wakeups.load(Ordering::Relaxed));
        push("clients_accepted", c.clients_accepted.load(Ordering::Relaxed));
        push("clients_gone", c.clients_gone.load(Ordering::Relaxed));
        push("ingest_batches", c.ingest_batches.load(Ordering::Relaxed));
        push("ingest_edges", c.ingest_edges.load(Ordering::Relaxed));
        let totals = *self.totals.lock().unwrap_or_else(PoisonError::into_inner);
        for (key, value) in totals.key_values() {
            push(key, value);
        }
        let engine = self.engine.read().unwrap_or_else(PoisonError::into_inner);
        push("epoch", engine.epoch().value());
        if let Some(cache) = engine.cache_stats() {
            for (key, value) in cache.key_values() {
                push(key, value);
            }
        }
        if let Some(profiles) = engine.profile_cache_stats() {
            for (key, value) in profiles.key_values() {
                push(key, value);
            }
        }
        drop(engine);
        out.push_str("end");
        out
    }

    fn report(&self) -> ServerReport {
        // relaxed: final-report counter reads; see `stats_text`.
        ServerReport {
            totals: *self.totals.lock().unwrap_or_else(PoisonError::into_inner),
            batches: self.counters.batches.load(Ordering::Relaxed),
            requests: self.counters.requests.load(Ordering::Relaxed),
            responses: self.counters.responses.load(Ordering::Relaxed),
            dropped: self.counters.dropped.load(Ordering::Relaxed),
            quota_rejections: self.counters.quota_rejections.load(Ordering::Relaxed),
            malformed: self.counters.malformed.load(Ordering::Relaxed),
        }
    }
}

/// The resident server: binds the socket and owns the serving threads.
///
/// [`Server::bind`] returns a [`ServerHandle`]; the server runs until a
/// client sends the `shutdown` verb or the embedder calls
/// [`ServerHandle::shutdown`], after which [`ServerHandle::join`] reaps
/// every thread, unlinks the socket and returns the final
/// [`ServerReport`].
pub struct Server;

impl Server {
    /// Binds `path` and starts serving `engine` with the given admission
    /// configuration.
    ///
    /// A stale socket file at `path` (e.g. from a killed process) is
    /// unlinked first if nothing is listening on it. Fails if another
    /// listener is alive on the path or the path cannot be bound.
    pub fn bind(
        engine: QueryEngine,
        path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let path = path.as_ref().to_path_buf();
        let listener = match UnixListener::bind(&path) {
            Ok(listener) => listener,
            Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
                if UnixStream::connect(&path).is_ok() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::AddrInUse,
                        format!("another server is listening on {}", path.display()),
                    ));
                }
                std::fs::remove_file(&path)?;
                UnixListener::bind(&path)?
            }
            Err(e) => return Err(e),
        };
        let config = ServerConfig {
            admit_max: config.admit_max.max(1),
            admit_window: config.admit_window.max(Duration::from_micros(50)),
            quota: config.quota.max(1),
            threads: config.threads.max(1),
        };
        let shared = Arc::new(Shared {
            engine: RwLock::new(engine),
            config,
            path: path.clone(),
            admission: Mutex::new(VecDeque::new()),
            admit_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            totals: Mutex::new(BatchStats::default()),
            counters: Counters::default(),
            clients: Mutex::new(Vec::new()),
            readers: Mutex::new(Vec::new()),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tspg-acceptor".into())
                .spawn(move || acceptor_loop(&shared, &listener))?
        };
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tspg-dispatcher".into())
                .spawn(move || dispatcher_loop(&shared))?
        };
        Ok(ServerHandle { shared, acceptor: Some(acceptor), dispatcher: Some(dispatcher) })
    }
}

/// Handle of a running [`Server`]: shutdown trigger, stats snapshot and
/// the join/teardown path.
pub struct ServerHandle {
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    dispatcher: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The socket path the server is listening on.
    pub fn socket_path(&self) -> &Path {
        &self.shared.path
    }

    /// Requests a graceful shutdown (equivalent to a client sending the
    /// `shutdown` verb): the admission queue is drained and answered, then
    /// every thread exits. Idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// `true` once shutdown has been requested (verb or
    /// [`ServerHandle::shutdown`]).
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// The `stats` verb's text, snapshotted without a protocol round trip
    /// (for embedders and tests).
    pub fn stats_text(&self) -> String {
        self.shared.stats_text()
    }

    /// Blocks until the server has shut down, reaps every thread, unlinks
    /// the socket and returns the final accounting.
    ///
    /// Without a prior [`ServerHandle::shutdown`] (or a client `shutdown`
    /// verb) this blocks indefinitely — that is exactly what the
    /// `tspg-server` binary does after binding.
    pub fn join(mut self) -> ServerReport {
        // The dispatcher exits once shutdown is flagged and the queue is
        // drained; only then are client connections torn down, so every
        // accepted request gets its answer first.
        if let Some(dispatcher) = self.dispatcher.take() {
            let _ = dispatcher.join();
        }
        {
            let clients = self.shared.clients.lock().unwrap_or_else(PoisonError::into_inner);
            for client in clients.iter() {
                client.hang_up();
            }
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let readers: Vec<_> =
            self.shared.readers.lock().unwrap_or_else(PoisonError::into_inner).drain(..).collect();
        for reader in readers {
            // tspg-lint: allow(lock-order) — resolution artifact: this is `JoinHandle::join`, not `Server::join`, and the `readers` guard above is a temporary released at the collect's `;`
            let _ = reader.join();
        }
        let _ = std::fs::remove_file(&self.shared.path);
        self.shared.report()
    }
}

/// Accept loop: one reader thread per connection until shutdown.
fn acceptor_loop(shared: &Arc<Shared>, listener: &UnixListener) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let Ok(writer) = stream.try_clone() else { continue };
        // relaxed: serving counters are statistics only (see `stats_text`).
        shared.counters.clients_accepted.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(ClientSlot {
            writer: Mutex::new(writer),
            in_flight: AtomicUsize::new(0),
            gone: AtomicBool::new(false),
        });
        shared.clients.lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&slot));
        let reader_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("tspg-reader".into())
            .spawn(move || reader_loop(&reader_shared, &slot, stream));
        if let Ok(handle) = spawned {
            shared.readers.lock().unwrap_or_else(PoisonError::into_inner).push(handle);
        }
    }
}

/// Per-connection loop: parse request lines, enforce the quota, enqueue
/// queries, answer control verbs inline.
fn reader_loop(shared: &Arc<Shared>, slot: &Arc<ClientSlot>, stream: UnixStream) {
    let reader = BufReader::new(stream);
    // Only a real disconnect (EOF / read error) marks the slot gone. A
    // reader that stops because its client sent the `shutdown` verb must
    // NOT: that connection is alive and still owed its drained answers.
    let mut disconnected = true;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        // relaxed: serving counters are statistics only (see `stats_text`).
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        match protocol::parse_request(line) {
            Ok(protocol::Request::Query { id, query }) => {
                if slot.in_flight.load(Ordering::Acquire) >= shared.config.quota {
                    shared.counters.quota_rejections.fetch_add(1, Ordering::Relaxed);
                    slot.write_line(&protocol::format_error(
                        Some(id),
                        &format!("quota exceeded ({} requests in flight)", shared.config.quota),
                    ));
                    continue;
                }
                slot.in_flight.fetch_add(1, Ordering::AcqRel);
                let pending = Pending::Query(PendingQuery {
                    client: Arc::clone(slot),
                    id,
                    query,
                    enqueued: Instant::now(),
                });
                let mut queue = shared.admission.lock().unwrap_or_else(PoisonError::into_inner);
                queue.push_back(pending);
                // Notify while still holding the admission lock (see
                // `begin_shutdown`): dropping the guard first would let
                // the dispatcher check its predicate and park between our
                // push and this wakeup, losing the notification.
                shared.admit_cv.notify_all();
            }
            Ok(protocol::Request::Ingest { edges }) => {
                // Ingests ride the same FIFO queue and the same quota as
                // queries: a pipelined mutation is "in flight" until its
                // acknowledgement is written, and a greedy feeder must not
                // starve the admission queue either.
                if slot.in_flight.load(Ordering::Acquire) >= shared.config.quota {
                    shared.counters.quota_rejections.fetch_add(1, Ordering::Relaxed);
                    slot.write_line(&protocol::format_error(
                        None,
                        &format!("quota exceeded ({} requests in flight)", shared.config.quota),
                    ));
                    continue;
                }
                slot.in_flight.fetch_add(1, Ordering::AcqRel);
                let pending = Pending::Ingest(PendingIngest {
                    client: Arc::clone(slot),
                    edges,
                    enqueued: Instant::now(),
                });
                let mut queue = shared.admission.lock().unwrap_or_else(PoisonError::into_inner);
                queue.push_back(pending);
                // Notify under the admission lock; see the Query arm.
                shared.admit_cv.notify_all();
            }
            Ok(protocol::Request::Stats) => {
                slot.write_line(&shared.stats_text());
            }
            Ok(protocol::Request::Ping) => {
                slot.write_line("pong");
            }
            Ok(protocol::Request::Shutdown) => {
                slot.write_line("bye");
                shared.begin_shutdown();
                disconnected = false;
                break;
            }
            Err((id, message)) => {
                // A malformed line is the client's bug, not a server
                // failure: reply (tagged when the id survived parsing) and
                // keep serving the connection.
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                slot.write_line(&protocol::format_error(id, &message));
            }
        }
    }
    if disconnected {
        slot.gone.store(true, Ordering::Release);
        shared.counters.clients_gone.fetch_add(1, Ordering::Relaxed);
    }
}

/// One homogeneous run drained from the admission queue: either a query
/// batch for the engine or a run of edge-batch mutations to apply at this
/// batch boundary.
enum Collected {
    Queries(Vec<PendingQuery>),
    Ingests(Vec<PendingIngest>),
}

/// Dispatcher loop: wait for a flush trigger, drain a homogeneous run,
/// run queries through the engine (read lock) or apply mutations (write
/// lock), stream the answers back.
fn dispatcher_loop(shared: &Arc<Shared>) {
    loop {
        let batch = match collect_batch(shared) {
            Collected::Ingests(batch) => {
                apply_ingests(shared, batch);
                continue;
            }
            Collected::Queries(batch) => batch,
        };
        if batch.is_empty() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            continue;
        }
        let queries: Vec<QuerySpec> = batch.iter().map(|p| p.query).collect();
        // Hold the read lock across the whole batch: the graph every query
        // of this batch sees is the one collect_batch's boundary admitted.
        let engine = shared.engine.read().unwrap_or_else(PoisonError::into_inner);
        let (results, stats) = engine.run_batch_with_stats(&queries, shared.config.threads);
        drop(engine);
        shared.totals.lock().unwrap_or_else(PoisonError::into_inner).merge(&stats);
        // relaxed: serving counters are statistics only (see `stats_text`).
        shared.counters.batches.fetch_add(1, Ordering::Relaxed);
        for (pending, result) in batch.iter().zip(results) {
            pending.client.in_flight.fetch_sub(1, Ordering::AcqRel);
            // A client that disconnected mid-batch gets its remaining
            // answers dropped; the batch (and every other client's
            // answers) is unaffected.
            if pending.client.gone.load(Ordering::Acquire) {
                shared.counters.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if pending.client.write_line(&protocol::format_result(pending.id, &result)) {
                shared.counters.responses.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.counters.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Applies a run of pending edge batches under the engine write lock, then
/// writes the acknowledgements with the lock released (a slow client write
/// must not stall queries behind the mutation).
fn apply_ingests(shared: &Arc<Shared>, batch: Vec<PendingIngest>) {
    let mut acks: Vec<(Arc<ClientSlot>, u64, u64)> = Vec::with_capacity(batch.len());
    {
        let mut engine = shared.engine.write().unwrap_or_else(PoisonError::into_inner);
        for pending in batch {
            let epoch = engine.ingest(&pending.edges);
            // relaxed: serving counters are statistics only (see
            // `stats_text`).
            shared.counters.ingest_batches.fetch_add(1, Ordering::Relaxed);
            shared.counters.ingest_edges.fetch_add(pending.edges.len() as u64, Ordering::Relaxed);
            acks.push((pending.client, epoch.value(), pending.edges.len() as u64));
        }
    }
    for (client, epoch, edges) in acks {
        client.in_flight.fetch_sub(1, Ordering::AcqRel);
        if client.gone.load(Ordering::Acquire)
            || !client.write_line(&protocol::format_ingested(epoch, edges))
        {
            // relaxed: serving counters are statistics only (see
            // `stats_text`).
            shared.counters.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Blocks until a flush trigger fires, then drains one homogeneous run
/// from the queue front: consecutive ingests are returned immediately
/// (each mutation run is its own batch boundary), consecutive queries once
/// the size or timer trigger fires — or at once when an ingest is queued
/// behind them, since the mutation cannot apply until the queries ahead of
/// it have run. May return an empty query batch — the idle timer firing
/// with nothing pending, or a shutdown wake-up — which the dispatcher
/// treats as a no-op.
///
/// During shutdown the queue still drains in homogeneous runs (not one
/// final mixed batch): queries accepted before a pending mutation must run
/// against the pre-mutation graph.
fn collect_batch(shared: &Arc<Shared>) -> Collected {
    let config = &shared.config;
    // relaxed: flush-trigger tallies are statistics only (see `stats_text`).
    let mut queue = shared.admission.lock().unwrap_or_else(PoisonError::into_inner);
    loop {
        let shutting_down = shared.shutdown.load(Ordering::SeqCst);
        if matches!(queue.front(), Some(Pending::Ingest(_))) {
            let mut batch = Vec::new();
            while matches!(queue.front(), Some(Pending::Ingest(_))) {
                if let Some(Pending::Ingest(ingest)) = queue.pop_front() {
                    batch.push(ingest);
                }
            }
            return Collected::Ingests(batch);
        }
        // The front run is all queries (possibly the whole queue).
        let run = queue.iter().take_while(|p| matches!(p, Pending::Query(_))).count();
        let boundary_behind = run < queue.len();
        if shutting_down {
            // Drain the whole front run so every accepted request is
            // answered before the socket goes away (the loop comes back
            // for whatever sits behind the boundary).
            let batch = drain_queries(&mut queue, run);
            return Collected::Queries(batch);
        }
        match queue.front() {
            Some(front) => {
                let age = front.enqueued().elapsed();
                if run >= config.admit_max || boundary_behind || age >= config.admit_window {
                    if run >= config.admit_max || boundary_behind {
                        // An ingest waiting behind the run counts as a size
                        // flush: the boundary, not the timer, forced it.
                        shared.counters.size_flushes.fetch_add(1, Ordering::Relaxed);
                    } else {
                        shared.counters.timer_flushes.fetch_add(1, Ordering::Relaxed);
                    }
                    let take = run.min(config.admit_max);
                    return Collected::Queries(drain_queries(&mut queue, take));
                }
                let remaining = config.admit_window - age;
                let (guard, _) = shared
                    .admit_cv
                    .wait_timeout(queue, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
            None => {
                // Idle tick: the flush timer keeps firing with zero
                // pending requests; each wake-up is a counted no-op.
                let (guard, timeout) = shared
                    .admit_cv
                    .wait_timeout(queue, config.admit_window)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
                if timeout.timed_out() && queue.is_empty() {
                    shared.counters.empty_wakeups.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Drains up to `take` consecutive queries from the queue front, stopping
/// at the first non-query entry (the caller has already verified the front
/// run is at least `take` queries long, so this drains exactly `take`).
fn drain_queries(queue: &mut VecDeque<Pending>, take: usize) -> Vec<PendingQuery> {
    let mut batch = Vec::with_capacity(take);
    while batch.len() < take && matches!(queue.front(), Some(Pending::Query(_))) {
        if let Some(Pending::Query(query)) = queue.pop_front() {
            batch.push(query);
        }
    }
    batch
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{figure1_graph, figure1_query};
    use tspg_graph::TimeInterval;

    fn temp_socket(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("tspg_{tag}_{}_{unique}.sock", std::process::id()))
    }

    fn connect(path: &Path) -> (BufReader<UnixStream>, UnixStream) {
        let stream = UnixStream::connect(path).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        (reader, stream)
    }

    fn send(stream: &mut UnixStream, line: &str) {
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        stream.flush().unwrap();
    }

    fn read_line(reader: &mut BufReader<UnixStream>) -> String {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn bind_query_stats_shutdown_round_trip() {
        let path = temp_socket("lib_roundtrip");
        let engine = QueryEngine::new(figure1_graph());
        let config = ServerConfig {
            admit_max: 4,
            admit_window: Duration::from_millis(1),
            ..ServerConfig::default()
        };
        let handle = Server::bind(engine, &path, config).unwrap();
        let (s, t, w) = figure1_query();

        let (mut reader, mut stream) = connect(&path);
        send(&mut stream, "ping");
        assert_eq!(read_line(&mut reader), "pong");
        send(&mut stream, &protocol::format_query(9, &QuerySpec::new(s, t, w)));
        let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
        let protocol::Response::Result(payload) = reply else { panic!("want result: {reply:?}") };
        assert_eq!(payload.id, 9);
        assert_eq!(payload.edges.len(), 4, "Fig. 1(c) has four edges");

        let stats = handle.stats_text();
        assert!(stats.contains("queries=1"), "{stats}");
        assert!(stats.contains("cache_hits=0"), "{stats}");
        assert!(stats.ends_with("end"), "{stats}");

        send(&mut stream, "shutdown");
        assert_eq!(read_line(&mut reader), "bye");
        let report = handle.join();
        assert_eq!(report.totals.queries, 1);
        assert_eq!(report.responses, 1);
        assert!(!path.exists(), "socket must be unlinked on shutdown");
    }

    #[test]
    fn degenerate_and_unreachable_queries_are_answered_empty() {
        let path = temp_socket("lib_degenerate");
        let handle =
            Server::bind(QueryEngine::new(figure1_graph()), &path, ServerConfig::default())
                .unwrap();
        let (s, t, w) = figure1_query();
        let (mut reader, mut stream) = connect(&path);
        for (id, q) in [(0, QuerySpec::new(s, s, w)), (1, QuerySpec::new(t, s, w))].into_iter() {
            send(&mut stream, &protocol::format_query(id, &q));
            let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
            let protocol::Response::Result(payload) = reply else { panic!("{reply:?}") };
            assert_eq!(payload.id, id);
            assert!(payload.edges.is_empty());
        }
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn stale_socket_file_is_reclaimed_and_live_one_is_refused() {
        let path = temp_socket("lib_stale");
        // A stale file nothing listens on: bind reclaims it.
        drop(UnixListener::bind(&path).unwrap());
        assert!(path.exists());
        let handle =
            Server::bind(QueryEngine::new(figure1_graph()), &path, ServerConfig::default())
                .unwrap();
        // A second server on the same live path must be refused.
        let Err(err) =
            Server::bind(QueryEngine::new(figure1_graph()), &path, ServerConfig::default())
        else {
            panic!("second bind on a live socket must fail");
        };
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        handle.shutdown();
        handle.join();
    }

    #[test]
    fn ingest_applies_at_a_batch_boundary_and_bumps_the_epoch() {
        let path = temp_socket("lib_ingest");
        let config = ServerConfig {
            admit_max: 4,
            admit_window: Duration::from_millis(1),
            ..ServerConfig::default()
        };
        let handle = Server::bind(QueryEngine::new(figure1_graph()), &path, config).unwrap();
        let (s, t, w) = figure1_query();
        let (mut reader, mut stream) = connect(&path);

        send(&mut stream, &protocol::format_query(0, &QuerySpec::new(s, t, w)));
        let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
        let protocol::Response::Result(before) = reply else { panic!("{reply:?}") };

        // A direct s→t edge inside the window always joins the tspG, so the
        // re-queried answer is guaranteed to change.
        let delta = [tspg_graph::TemporalEdge::new(s, t, 5)];
        send(&mut stream, &protocol::format_ingest(&delta));
        let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
        assert_eq!(reply, protocol::Response::Ingested { epoch: 1, edges: 1 });

        send(&mut stream, &protocol::format_query(1, &QuerySpec::new(s, t, w)));
        let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
        let protocol::Response::Result(after) = reply else { panic!("{reply:?}") };
        assert_ne!(before.edges, after.edges, "the ingested edge must change the answer");
        assert!(after.edges.contains(&delta[0]));

        let stats = handle.stats_text();
        assert!(stats.contains("epoch=1"), "{stats}");
        assert!(stats.contains("ingest_batches=1"), "{stats}");
        assert!(stats.contains("ingest_edges=1"), "{stats}");

        send(&mut stream, "shutdown");
        assert_eq!(read_line(&mut reader), "bye");
        handle.join();
    }

    #[test]
    fn answers_for_one_client_arrive_in_request_order() {
        let path = temp_socket("lib_order");
        let config = ServerConfig {
            admit_max: 3,
            admit_window: Duration::from_millis(1),
            ..ServerConfig::default()
        };
        let handle = Server::bind(QueryEngine::new(figure1_graph()), &path, config).unwrap();
        let (s, t, _) = figure1_query();
        let (mut reader, mut stream) = connect(&path);
        // A pipelined burst spanning several admission batches.
        for id in 0..10u64 {
            let begin = 2 + (id as i64 % 3);
            let q = QuerySpec::new(s, t, TimeInterval::new(begin, begin + 4));
            send(&mut stream, &protocol::format_query(id, &q));
        }
        for want in 0..10u64 {
            let reply = protocol::parse_response(&read_line(&mut reader)).unwrap();
            let protocol::Response::Result(payload) = reply else { panic!("{reply:?}") };
            assert_eq!(payload.id, want, "FIFO admission must preserve per-client order");
        }
        handle.shutdown();
        let report = handle.join();
        assert_eq!(report.totals.queries, 10);
        assert!(report.batches >= 2, "a 10-burst through admit_max=3 spans batches");
    }
}
