//! `tspg-server` — resident serving frontend over a unix domain socket.
//!
//! ```text
//! tspg-server <edge-list> --socket PATH [--admit-max N] [--admit-window-ms T]
//!             [--quota N] [--threads N] [--cache-size N] [--no-cache]
//!             [--profile-cache-size N]
//! ```
//!
//! Loads the edge list once, builds one [`QueryEngine`] and serves the
//! line-oriented protocol (see [`tspg_server::protocol`]) until a client
//! sends the `shutdown` verb. On shutdown the admission queue is drained,
//! every pending answer is written, the socket is unlinked and the process
//! exits 0 with a final stats dump on stderr.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::process::ExitCode;
use std::time::Duration;
use tspg_core::{CacheConfig, ProfileCacheConfig, QueryEngine};
use tspg_graph::io;
use tspg_server::{Server, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:\n  tspg-server <edge-list> --socket PATH [--admit-max N] \
                     [--admit-window-ms T]\n              [--quota N] [--threads N] \
                     [--cache-size N] [--no-cache] [--profile-cache-size N]";

fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h" || a == "help") {
        println!("{USAGE}");
        return Ok(());
    }
    let (positional, flags) = parse_flags(args)?;
    let graph_path = positional.first().ok_or("missing edge-list path")?;
    if let Some(extra) = positional.get(1) {
        return Err(format!("unexpected positional argument {extra:?}"));
    }
    let socket = flags.get("socket").ok_or("missing required flag --socket")?;

    let mut config = ServerConfig::default();
    if let Some(v) = flags.get("admit-max") {
        config.admit_max = parse_number(v, "admission batch size")?;
        if config.admit_max == 0 {
            return Err("--admit-max must be at least 1".to_string());
        }
    }
    if let Some(v) = flags.get("admit-window-ms") {
        let ms: u64 = parse_number(v, "admission window")?;
        config.admit_window = Duration::from_millis(ms);
    }
    if let Some(v) = flags.get("quota") {
        config.quota = parse_number(v, "per-client quota")?;
        if config.quota == 0 {
            return Err("--quota must be at least 1".to_string());
        }
    }
    if let Some(v) = flags.get("threads") {
        config.threads = parse_number(v, "thread count")?;
        if config.threads == 0 {
            return Err("--threads must be at least 1".to_string());
        }
    }
    let cache_entries: Option<usize> = match flags.get("cache-size") {
        Some(v) => Some(parse_number(v, "cache size")?),
        None => None,
    };
    let no_cache = flags.contains_key("no-cache") || cache_entries == Some(0);
    // 0 disables cross-batch profile residency (within-batch sharing stays).
    let profile_cache_entries: Option<usize> = match flags.get("profile-cache-size") {
        Some(v) => Some(parse_number(v, "profile cache size")?),
        None => None,
    };

    let graph = io::read_edge_list_file(graph_path)
        .map_err(|e| format!("cannot read {graph_path}: {e}"))?;
    eprintln!(
        "tspg-server: loaded {graph_path} ({} vertices, {} edges)",
        graph.num_vertices(),
        graph.num_edges()
    );
    let mut engine = QueryEngine::new(graph);
    engine = match (no_cache, cache_entries) {
        (true, _) => engine.without_cache(),
        (false, Some(entries)) => engine.with_cache(CacheConfig::with_max_entries(entries)),
        (false, None) => engine,
    };
    engine = match profile_cache_entries {
        Some(0) => engine.without_profile_cache(),
        Some(entries) => engine.with_profile_cache(ProfileCacheConfig::with_max_entries(entries)),
        None => engine,
    };

    let handle =
        Server::bind(engine, socket, config).map_err(|e| format!("cannot bind {socket}: {e}"))?;
    eprintln!(
        "tspg-server: listening on {socket} (admit_max={}, admit_window={:?}, quota={}, \
         threads={})",
        config.admit_max, config.admit_window, config.quota, config.threads
    );
    // Blocks until a client sends the `shutdown` verb.
    let report = handle.join();
    eprintln!(
        "tspg-server: shut down after {} requests / {} responses ({} batches, {} queries, \
         {} dropped, {} quota rejections, {} malformed)",
        report.requests,
        report.responses,
        report.batches,
        report.totals.queries,
        report.dropped,
        report.quota_rejections,
        report.malformed,
    );
    Ok(())
}

/// Splits positional arguments from `--flag value` pairs (same convention
/// as the `tspg` CLI).
fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = match name {
                "no-cache" => "true".to_string(),
                _ => iter.next().cloned().ok_or_else(|| format!("--{name} expects a value"))?,
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

fn parse_number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("invalid {what}: {value:?}"))
}
