//! The line-oriented wire protocol shared by `tspg-server` and the
//! `tspg client` subcommand.
//!
//! Every message is one `\n`-terminated line of UTF-8 text; there is no
//! framing beyond that, so the protocol works over any reliable byte
//! stream (the server speaks it over a unix domain socket). Grammar:
//!
//! ```text
//! request  := "query" SP id SP source SP target SP begin SP end
//!           | "stats" | "ping" | "shutdown"
//! response := "result" SP id SP "edges=" E SP "vertices=" V SP "ns=" NS
//!                      {SP src "," dst "," time}
//!           | "error" SP (id | "-") SP message
//!           | "pong" | "bye"
//! ```
//!
//! `id` is a client-chosen `u64` request tag; responses echo it so a client
//! may pipeline any number of requests (up to the server's per-client
//! quota) and match answers as they stream back. A `result` line carries
//! the full tspG as `src,dst,time` triples in the engine's canonical edge
//! order — byte-identity against a local [`tspg_core::QueryEngine`] run is
//! checked by comparing the triples, nothing weaker. The `stats` verb is
//! answered with `key=value` lines terminated by a bare `end` line (not
//! modelled here; see the crate docs for the key glossary).

use std::fmt::Write as _;
use tspg_core::{QuerySpec, VugResult};
use tspg_graph::TemporalEdge;

/// A parsed client request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `query <id> <source> <target> <begin> <end>` — enqueue one query
    /// for the next admission batch.
    Query {
        /// Client-chosen request tag echoed on the response line.
        id: u64,
        /// The query quadruple, in canonical form.
        query: QuerySpec,
    },
    /// `stats` — dump the server's counters as `key=value` lines.
    Stats,
    /// `ping` — liveness probe, answered with `pong`.
    Ping,
    /// `shutdown` — graceful shutdown: drain the admission queue, answer
    /// everything pending, unlink the socket, exit 0.
    Shutdown,
}

/// Parses one request line.
///
/// On failure returns the request id when one could still be extracted
/// (so the error reply can be tagged and the client can match it to the
/// request it pipelined) plus a human-readable message.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, String)> {
    let mut fields = line.split_whitespace();
    let verb = fields.next().ok_or_else(|| (None, "empty request".to_string()))?;
    match verb {
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "query" => {
            let id: u64 = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| (None, "query needs a numeric request id".to_string()))?;
            let mut field = |what: &str| -> Result<i64, (Option<u64>, String)> {
                let raw = fields.next().ok_or_else(|| (Some(id), format!("missing {what}")))?;
                raw.parse().map_err(|_| (Some(id), format!("invalid {what} {raw:?}")))
            };
            let source = field("source vertex")?;
            let target = field("target vertex")?;
            let begin = field("window begin")?;
            let end = field("window end")?;
            if let Some(extra) = fields.next() {
                return Err((Some(id), format!("too many fields (unexpected {extra:?})")));
            }
            let (source, target) = match (u32::try_from(source), u32::try_from(target)) {
                (Ok(s), Ok(t)) => (s, t),
                _ => return Err((Some(id), "vertex ids must be non-negative u32".to_string())),
            };
            let query = QuerySpec::try_new(source, target, begin, end)
                .ok_or_else(|| (Some(id), format!("invalid interval [{begin}, {end}]")))?;
            Ok(Request::Query { id, query })
        }
        other => Err((None, format!("unknown verb {other:?}"))),
    }
}

/// Formats one `query` request line (the client side of
/// [`parse_request`]).
pub fn format_query(id: u64, query: &QuerySpec) -> String {
    format!(
        "query {id} {} {} {} {}",
        query.source,
        query.target,
        query.window.begin(),
        query.window.end()
    )
}

/// A parsed server response line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A query's answer: the tspG shipped as edge triples.
    Result(ResultPayload),
    /// An error reply, tagged with the request id when the offending line
    /// carried a parseable one.
    Error {
        /// The request the error answers, if identifiable.
        id: Option<u64>,
        /// Human-readable description.
        message: String,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `shutdown`: the server is draining and about to exit.
    Bye,
}

/// The payload of a `result` line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultPayload {
    /// Echo of the request id.
    pub id: u64,
    /// Vertices of the tspG (shipped because the edge triples alone do not
    /// reveal it for the empty graph).
    pub vertices: usize,
    /// Pipeline time of the run that produced this answer, in nanoseconds.
    /// Answers copied from a duplicate, the cache or a covering unit carry
    /// the producing run's time, mirroring `tspg batch` output.
    pub ns: u64,
    /// The tspG's edges in the engine's canonical order.
    pub edges: Vec<TemporalEdge>,
}

/// Formats one `result` response line from an engine answer.
pub fn format_result(id: u64, result: &VugResult) -> String {
    let mut line = format!(
        "result {id} edges={} vertices={} ns={}",
        result.tspg.num_edges(),
        result.report.result_vertices,
        u64::try_from(result.report.total_elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
    for e in result.tspg.edges() {
        let _ = write!(line, " {},{},{}", e.src, e.dst, e.time);
    }
    line
}

/// Formats an `error` response line; `id = None` renders the `-` tag.
pub fn format_error(id: Option<u64>, message: &str) -> String {
    match id {
        Some(id) => format!("error {id} {message}"),
        None => format!("error - {message}"),
    }
}

/// Parses one response line (the client side of [`format_result`] and
/// friends).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let mut fields = line.split_whitespace();
    match fields.next().ok_or_else(|| "empty response".to_string())? {
        "pong" => Ok(Response::Pong),
        "bye" => Ok(Response::Bye),
        "error" => {
            let tag = fields.next().ok_or_else(|| "error line without id tag".to_string())?;
            let id = if tag == "-" {
                None
            } else {
                Some(tag.parse().map_err(|_| format!("bad error id tag {tag:?}"))?)
            };
            let rest: Vec<&str> = fields.collect();
            Ok(Response::Error { id, message: rest.join(" ") })
        }
        "result" => {
            let id: u64 = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| "result line without request id".to_string())?;
            let mut kv = |key: &str| -> Result<u64, String> {
                let raw = fields.next().ok_or_else(|| format!("result missing {key}="))?;
                raw.strip_prefix(key)
                    .and_then(|r| r.strip_prefix('='))
                    .and_then(|r| r.parse().ok())
                    .ok_or_else(|| format!("bad result field {raw:?} (expected {key}=N)"))
            };
            let num_edges = kv("edges")?;
            let vertices = kv("vertices")? as usize;
            let ns = kv("ns")?;
            let mut edges = Vec::with_capacity(num_edges as usize);
            for triple in fields.by_ref() {
                let mut parts = triple.split(',');
                let mut part = |what: &str| -> Result<i64, String> {
                    parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| format!("bad edge triple {triple:?} ({what})"))
                };
                let src = part("src")?;
                let dst = part("dst")?;
                let time = part("time")?;
                if parts.next().is_some() {
                    return Err(format!("bad edge triple {triple:?} (too many fields)"));
                }
                let (Ok(src), Ok(dst)) = (u32::try_from(src), u32::try_from(dst)) else {
                    return Err(format!("bad edge triple {triple:?} (vertex out of range)"));
                };
                edges.push(TemporalEdge::new(src, dst, time));
            }
            if edges.len() as u64 != num_edges {
                return Err(format!(
                    "result {id} announced edges={num_edges} but carried {}",
                    edges.len()
                ));
            }
            Ok(Response::Result(ResultPayload { id, vertices, ns, edges }))
        }
        other => Err(format!("unknown response verb {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_core::generate_tspg;
    use tspg_graph::fixtures::{figure1_graph, figure1_query};

    #[test]
    fn request_round_trip() {
        let q = QuerySpec::new(3, 9, tspg_graph::TimeInterval::new(2, 7));
        let line = format_query(17, &q);
        assert_eq!(line, "query 17 3 9 2 7");
        assert_eq!(parse_request(&line), Ok(Request::Query { id: 17, query: q }));
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert_eq!(parse_request("ping"), Ok(Request::Ping));
        assert_eq!(parse_request("shutdown"), Ok(Request::Shutdown));
    }

    #[test]
    fn degenerate_queries_parse_canonically() {
        // `s == t` canonicalizes at construction, exactly like query files.
        let parsed = parse_request("query 1 4 4 2 9").unwrap();
        let Request::Query { query, .. } = parsed else { panic!("not a query") };
        assert!(query.is_degenerate());
    }

    #[test]
    fn malformed_requests_carry_the_id_when_parseable() {
        assert_eq!(parse_request("").unwrap_err().0, None);
        assert_eq!(parse_request("frobnicate 1 2").unwrap_err().0, None);
        assert_eq!(parse_request("query nope 1 2 3 4").unwrap_err().0, None);
        assert_eq!(parse_request("query 7 1 2 3").unwrap_err().0, Some(7));
        assert_eq!(parse_request("query 7 1 2 3 bogus").unwrap_err().0, Some(7));
        assert_eq!(parse_request("query 7 1 2 3 4 5").unwrap_err().0, Some(7));
        assert_eq!(parse_request("query 7 1 2 9 3").unwrap_err().0, Some(7));
        assert_eq!(parse_request("query 7 -1 2 3 4").unwrap_err().0, Some(7));
    }

    #[test]
    fn result_round_trip_preserves_the_tspg_bit_for_bit() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let result = generate_tspg(&g, s, t, w);
        let line = format_result(42, &result);
        let Response::Result(payload) = parse_response(&line).unwrap() else {
            panic!("not a result");
        };
        assert_eq!(payload.id, 42);
        assert_eq!(payload.edges, result.tspg.edges());
        assert_eq!(payload.vertices, result.report.result_vertices);

        // Empty results ship no triples but still announce their counts.
        let empty = generate_tspg(&g, t, s, w);
        let Response::Result(payload) = parse_response(&format_result(0, &empty)).unwrap() else {
            panic!("not a result");
        };
        assert!(payload.edges.is_empty());
    }

    #[test]
    fn error_and_control_responses_parse() {
        assert_eq!(
            parse_response(&format_error(Some(3), "quota exceeded")).unwrap(),
            Response::Error { id: Some(3), message: "quota exceeded".to_string() }
        );
        assert_eq!(
            parse_response(&format_error(None, "unknown verb")).unwrap(),
            Response::Error { id: None, message: "unknown verb".to_string() }
        );
        assert_eq!(parse_response("pong").unwrap(), Response::Pong);
        assert_eq!(parse_response("bye").unwrap(), Response::Bye);
        assert!(parse_response("result 1 edges=2 vertices=1 ns=5 0,1,2").is_err());
        assert!(parse_response("result 1 edges=1 vertices=1 ns=5 0,1").is_err());
        assert!(parse_response("nonsense").is_err());
    }
}
