//! The line-oriented wire protocol shared by `tspg-server` and the
//! `tspg client` subcommand.
//!
//! Every message is one `\n`-terminated line of UTF-8 text; there is no
//! framing beyond that, so the protocol works over any reliable byte
//! stream (the server speaks it over a unix domain socket). Grammar:
//!
//! ```text
//! request  := "query" SP id SP source SP target SP begin SP end
//!           | "ingest" SP src SP dst SP time {SP src SP dst SP time}
//!           | "stats" | "ping" | "shutdown"
//! response := "result" SP id SP "edges=" E SP "vertices=" V SP "ns=" NS
//!                      {SP src "," dst "," time}
//!           | "ingested" SP "epoch=" E SP "edges=" N
//!           | "error" SP (id | "-") SP message
//!           | "pong" | "bye"
//! ```
//!
//! `id` is a client-chosen `u64` request tag; responses echo it so a client
//! may pipeline any number of requests (up to the server's per-client
//! quota) and match answers as they stream back. A `result` line carries
//! the full tspG as `src,dst,time` triples in the engine's canonical edge
//! order — byte-identity against a local [`tspg_core::QueryEngine`] run is
//! checked by comparing the triples, nothing weaker. An `ingest` line
//! carries one or more whitespace-separated edge triples to append to the
//! live graph; the dispatcher applies it between query batches (a batch
//! never straddles an epoch) and acknowledges with the post-ingest graph
//! epoch and the number of submitted triples. The `stats` verb is answered
//! with `key=value` lines terminated by a bare `end` line (not modelled
//! here; see the crate docs for the key glossary).

use std::fmt::Write as _;
use tspg_core::{QuerySpec, VugResult};
use tspg_graph::TemporalEdge;

/// A parsed client request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `query <id> <source> <target> <begin> <end>` — enqueue one query
    /// for the next admission batch.
    Query {
        /// Client-chosen request tag echoed on the response line.
        id: u64,
        /// The query quadruple, in canonical form.
        query: QuerySpec,
    },
    /// `ingest <src> <dst> <time> ...` — append a timestamped edge batch
    /// to the live graph at the next batch boundary.
    Ingest {
        /// The submitted edge batch, in submission order (the graph
        /// normalizes on append; order does not matter).
        edges: Vec<TemporalEdge>,
    },
    /// `stats` — dump the server's counters as `key=value` lines.
    Stats,
    /// `ping` — liveness probe, answered with `pong`.
    Ping,
    /// `shutdown` — graceful shutdown: drain the admission queue, answer
    /// everything pending, unlink the socket, exit 0.
    Shutdown,
}

/// Parses one request line.
///
/// On failure returns the request id when one could still be extracted
/// (so the error reply can be tagged and the client can match it to the
/// request it pipelined) plus a human-readable message.
pub fn parse_request(line: &str) -> Result<Request, (Option<u64>, String)> {
    let mut fields = line.split_whitespace();
    let verb = fields.next().ok_or_else(|| (None, "empty request".to_string()))?;
    match verb {
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        "ingest" => {
            let raw: Vec<&str> = fields.collect();
            if raw.is_empty() {
                return Err((None, "ingest needs at least one src dst time triple".to_string()));
            }
            if !raw.len().is_multiple_of(3) {
                return Err((
                    None,
                    format!("ingest carries {} fields, not a multiple of 3", raw.len()),
                ));
            }
            let mut edges = Vec::with_capacity(raw.len() / 3);
            for triple in raw.chunks_exact(3) {
                let part = |what: &str, raw: &str| -> Result<i64, (Option<u64>, String)> {
                    raw.parse().map_err(|_| (None, format!("invalid {what} {raw:?}")))
                };
                let src = part("source vertex", triple[0])?;
                let dst = part("target vertex", triple[1])?;
                let time = part("timestamp", triple[2])?;
                let (Ok(src), Ok(dst)) = (u32::try_from(src), u32::try_from(dst)) else {
                    return Err((None, "vertex ids must be non-negative u32".to_string()));
                };
                edges.push(TemporalEdge::new(src, dst, time));
            }
            Ok(Request::Ingest { edges })
        }
        "query" => {
            let id: u64 = match fields.next() {
                Some(raw) => raw.parse().map_err(|_| {
                    // Echo the raw token: the reply can't be tagged, so the
                    // message itself is the client's only correlation handle.
                    (None, format!("invalid request id {raw:?} (must be a u64)"))
                })?,
                None => return Err((None, "query needs a numeric request id".to_string())),
            };
            let mut field = |what: &str| -> Result<i64, (Option<u64>, String)> {
                let raw = fields.next().ok_or_else(|| (Some(id), format!("missing {what}")))?;
                raw.parse().map_err(|_| (Some(id), format!("invalid {what} {raw:?}")))
            };
            let source = field("source vertex")?;
            let target = field("target vertex")?;
            let begin = field("window begin")?;
            let end = field("window end")?;
            if let Some(extra) = fields.next() {
                return Err((Some(id), format!("too many fields (unexpected {extra:?})")));
            }
            let (source, target) = match (u32::try_from(source), u32::try_from(target)) {
                (Ok(s), Ok(t)) => (s, t),
                _ => return Err((Some(id), "vertex ids must be non-negative u32".to_string())),
            };
            let query = QuerySpec::try_new(source, target, begin, end)
                .ok_or_else(|| (Some(id), format!("invalid interval [{begin}, {end}]")))?;
            Ok(Request::Query { id, query })
        }
        other => Err((None, format!("unknown verb {other:?}"))),
    }
}

/// Formats one `query` request line (the client side of
/// [`parse_request`]).
pub fn format_query(id: u64, query: &QuerySpec) -> String {
    format!(
        "query {id} {} {} {} {}",
        query.source,
        query.target,
        query.window.begin(),
        query.window.end()
    )
}

/// Formats one `ingest` request line (the client side of
/// [`parse_request`]).
pub fn format_ingest(edges: &[TemporalEdge]) -> String {
    let mut line = "ingest".to_string();
    for e in edges {
        let _ = write!(line, " {} {} {}", e.src, e.dst, e.time);
    }
    line
}

/// A parsed server response line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// A query's answer: the tspG shipped as edge triples.
    Result(ResultPayload),
    /// Acknowledgement of an `ingest`: the batch was applied at a batch
    /// boundary and the graph now sits at `epoch`.
    Ingested {
        /// The graph epoch after applying the batch.
        epoch: u64,
        /// Number of edge triples the request submitted (duplicates
        /// included; the graph de-duplicates on append).
        edges: u64,
    },
    /// An error reply, tagged with the request id when the offending line
    /// carried a parseable one.
    Error {
        /// The request the error answers, if identifiable.
        id: Option<u64>,
        /// Human-readable description.
        message: String,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `shutdown`: the server is draining and about to exit.
    Bye,
}

/// The payload of a `result` line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResultPayload {
    /// Echo of the request id.
    pub id: u64,
    /// Vertices of the tspG (shipped because the edge triples alone do not
    /// reveal it for the empty graph).
    pub vertices: usize,
    /// Pipeline time of the run that produced this answer, in nanoseconds.
    /// Answers copied from a duplicate, the cache or a covering unit carry
    /// the producing run's time, mirroring `tspg batch` output.
    pub ns: u64,
    /// The tspG's edges in the engine's canonical order.
    pub edges: Vec<TemporalEdge>,
}

/// Formats one `result` response line from an engine answer.
pub fn format_result(id: u64, result: &VugResult) -> String {
    let mut line = format!(
        "result {id} edges={} vertices={} ns={}",
        result.tspg.num_edges(),
        result.report.result_vertices,
        u64::try_from(result.report.total_elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
    for e in result.tspg.edges() {
        let _ = write!(line, " {},{},{}", e.src, e.dst, e.time);
    }
    line
}

/// Formats one `ingested` acknowledgement line.
pub fn format_ingested(epoch: u64, edges: u64) -> String {
    format!("ingested epoch={epoch} edges={edges}")
}

/// Formats an `error` response line; `id = None` renders the `-` tag.
pub fn format_error(id: Option<u64>, message: &str) -> String {
    match id {
        Some(id) => format!("error {id} {message}"),
        None => format!("error - {message}"),
    }
}

/// Parses one response line (the client side of [`format_result`] and
/// friends).
pub fn parse_response(line: &str) -> Result<Response, String> {
    let mut fields = line.split_whitespace();
    match fields.next().ok_or_else(|| "empty response".to_string())? {
        "pong" => Ok(Response::Pong),
        "bye" => Ok(Response::Bye),
        "ingested" => {
            let mut kv = |key: &str| -> Result<u64, String> {
                let raw = fields.next().ok_or_else(|| format!("ingested missing {key}="))?;
                raw.strip_prefix(key)
                    .and_then(|r| r.strip_prefix('='))
                    .and_then(|r| r.parse().ok())
                    .ok_or_else(|| format!("bad ingested field {raw:?} (expected {key}=N)"))
            };
            let epoch = kv("epoch")?;
            let edges = kv("edges")?;
            if let Some(extra) = fields.next() {
                return Err(format!("ingested line has trailing field {extra:?}"));
            }
            Ok(Response::Ingested { epoch, edges })
        }
        "error" => {
            let tag = fields.next().ok_or_else(|| "error line without id tag".to_string())?;
            let id = if tag == "-" {
                None
            } else {
                Some(tag.parse().map_err(|_| format!("bad error id tag {tag:?}"))?)
            };
            let rest: Vec<&str> = fields.collect();
            Ok(Response::Error { id, message: rest.join(" ") })
        }
        "result" => {
            let id: u64 = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| "result line without request id".to_string())?;
            let mut kv = |key: &str| -> Result<u64, String> {
                let raw = fields.next().ok_or_else(|| format!("result missing {key}="))?;
                raw.strip_prefix(key)
                    .and_then(|r| r.strip_prefix('='))
                    .and_then(|r| r.parse().ok())
                    .ok_or_else(|| format!("bad result field {raw:?} (expected {key}=N)"))
            };
            let num_edges = kv("edges")?;
            let vertices = kv("vertices")? as usize;
            let ns = kv("ns")?;
            let mut edges = Vec::with_capacity(num_edges as usize);
            for triple in fields.by_ref() {
                let mut parts = triple.split(',');
                let mut part = |what: &str| -> Result<i64, String> {
                    parts
                        .next()
                        .and_then(|p| p.parse().ok())
                        .ok_or_else(|| format!("bad edge triple {triple:?} ({what})"))
                };
                let src = part("src")?;
                let dst = part("dst")?;
                let time = part("time")?;
                if parts.next().is_some() {
                    return Err(format!("bad edge triple {triple:?} (too many fields)"));
                }
                let (Ok(src), Ok(dst)) = (u32::try_from(src), u32::try_from(dst)) else {
                    return Err(format!("bad edge triple {triple:?} (vertex out of range)"));
                };
                edges.push(TemporalEdge::new(src, dst, time));
            }
            if edges.len() as u64 != num_edges {
                return Err(format!(
                    "result {id} announced edges={num_edges} but carried {}",
                    edges.len()
                ));
            }
            Ok(Response::Result(ResultPayload { id, vertices, ns, edges }))
        }
        other => Err(format!("unknown response verb {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_core::generate_tspg;
    use tspg_graph::fixtures::{figure1_graph, figure1_query};

    #[test]
    fn request_round_trip() {
        let q = QuerySpec::new(3, 9, tspg_graph::TimeInterval::new(2, 7));
        let line = format_query(17, &q);
        assert_eq!(line, "query 17 3 9 2 7");
        assert_eq!(parse_request(&line), Ok(Request::Query { id: 17, query: q }));
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert_eq!(parse_request("ping"), Ok(Request::Ping));
        assert_eq!(parse_request("shutdown"), Ok(Request::Shutdown));
    }

    #[test]
    fn degenerate_queries_parse_canonically() {
        // `s == t` canonicalizes at construction, exactly like query files.
        let parsed = parse_request("query 1 4 4 2 9").unwrap();
        let Request::Query { query, .. } = parsed else { panic!("not a query") };
        assert!(query.is_degenerate());
    }

    #[test]
    fn malformed_requests_carry_the_id_when_parseable() {
        assert_eq!(parse_request("").unwrap_err().0, None);
        assert_eq!(parse_request("frobnicate 1 2").unwrap_err().0, None);
        assert_eq!(parse_request("query nope 1 2 3 4").unwrap_err().0, None);
        assert_eq!(parse_request("query 7 1 2 3").unwrap_err().0, Some(7));
        assert_eq!(parse_request("query 7 1 2 3 bogus").unwrap_err().0, Some(7));
        assert_eq!(parse_request("query 7 1 2 3 4 5").unwrap_err().0, Some(7));
        assert_eq!(parse_request("query 7 1 2 9 3").unwrap_err().0, Some(7));
        assert_eq!(parse_request("query 7 -1 2 3 4").unwrap_err().0, Some(7));
    }

    #[test]
    fn unparseable_request_id_is_echoed_in_the_message() {
        // The error reply can't be tagged (there is no valid id), so the
        // raw token in the message is the client's only correlation handle.
        let (id, message) = parse_request("query nope 1 2 3 4").unwrap_err();
        assert_eq!(id, None);
        assert!(message.contains("\"nope\""), "raw token must be echoed: {message:?}");
        let (_, message) = parse_request("query 18446744073709551616 1 2 3 4").unwrap_err();
        assert!(message.contains("18446744073709551616"), "overflowing id echoed: {message:?}");
    }

    #[test]
    fn ingest_request_round_trip() {
        let edges = vec![
            TemporalEdge::new(0, 7, 5),
            TemporalEdge::new(3, 2, 1),
            TemporalEdge::new(0, 7, 5),
        ];
        let line = format_ingest(&edges);
        assert_eq!(line, "ingest 0 7 5 3 2 1 0 7 5");
        assert_eq!(parse_request(&line), Ok(Request::Ingest { edges }));
    }

    #[test]
    fn malformed_ingest_requests_are_rejected() {
        assert_eq!(parse_request("ingest").unwrap_err().0, None);
        assert!(parse_request("ingest 1 2").unwrap_err().1.contains("multiple of 3"));
        assert!(parse_request("ingest 1 2 3 4").unwrap_err().1.contains("multiple of 3"));
        assert!(parse_request("ingest 1 nope 3").unwrap_err().1.contains("\"nope\""));
        assert!(parse_request("ingest -1 2 3").unwrap_err().1.contains("non-negative"));
        assert!(parse_request("ingest 1 2 x").unwrap_err().1.contains("timestamp"));
    }

    #[test]
    fn ingested_response_round_trip() {
        let line = format_ingested(3, 12);
        assert_eq!(line, "ingested epoch=3 edges=12");
        assert_eq!(parse_response(&line).unwrap(), Response::Ingested { epoch: 3, edges: 12 });
        assert!(parse_response("ingested epoch=3").is_err());
        assert!(parse_response("ingested epoch=3 edges=1 junk").is_err());
        assert!(parse_response("ingested edges=1 epoch=3").is_err());
    }

    #[test]
    fn result_round_trip_preserves_the_tspg_bit_for_bit() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let result = generate_tspg(&g, s, t, w);
        let line = format_result(42, &result);
        let Response::Result(payload) = parse_response(&line).unwrap() else {
            panic!("not a result");
        };
        assert_eq!(payload.id, 42);
        assert_eq!(payload.edges, result.tspg.edges());
        assert_eq!(payload.vertices, result.report.result_vertices);

        // Empty results ship no triples but still announce their counts.
        let empty = generate_tspg(&g, t, s, w);
        let Response::Result(payload) = parse_response(&format_result(0, &empty)).unwrap() else {
            panic!("not a result");
        };
        assert!(payload.edges.is_empty());
    }

    #[test]
    fn error_and_control_responses_parse() {
        assert_eq!(
            parse_response(&format_error(Some(3), "quota exceeded")).unwrap(),
            Response::Error { id: Some(3), message: "quota exceeded".to_string() }
        );
        assert_eq!(
            parse_response(&format_error(None, "unknown verb")).unwrap(),
            Response::Error { id: None, message: "unknown verb".to_string() }
        );
        assert_eq!(parse_response("pong").unwrap(), Response::Pong);
        assert_eq!(parse_response("bye").unwrap(), Response::Bye);
        assert!(parse_response("result 1 edges=2 vertices=1 ns=5 0,1,2").is_err());
        assert!(parse_response("result 1 edges=1 vertices=1 ns=5 0,1").is_err());
        assert!(parse_response("nonsense").is_err());
    }
}
