//! Strict temporal reachability helpers.
//!
//! These are intentionally small, self-contained routines (a label-correcting
//! BFS) used by the workload generator to guarantee that generated queries
//! are temporally satisfiable, mirroring the paper's workload protocol
//! ("queries … where `s` can temporally reach `t` within `[τ_b, τ_e]`").
//! The core crate has its own, more heavily instrumented implementation
//! (Algorithm 3); keeping this copy here avoids a dependency cycle.

use std::collections::VecDeque;
use tspg_graph::{TemporalGraph, TimeInterval, Timestamp, VertexId};

/// Earliest strict-temporal arrival time from `s` to every vertex within
/// `window`, or `None` if the vertex is unreachable.
///
/// The source itself gets `Some(window.begin() - 1)`, i.e. "already there
/// before the window opens", which matches the sentinel `A(s) = τ_b − 1`
/// used by the paper.
pub fn earliest_arrival(
    graph: &TemporalGraph,
    s: VertexId,
    window: TimeInterval,
) -> Vec<Option<Timestamp>> {
    let n = graph.num_vertices();
    let mut arrival: Vec<Option<Timestamp>> = vec![None; n];
    if (s as usize) >= n {
        return arrival;
    }
    arrival[s as usize] = Some(window.begin() - 1);
    let mut queue = VecDeque::new();
    let mut in_queue = vec![false; n];
    queue.push_back(s);
    in_queue[s as usize] = true;
    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let reach_u = arrival[u as usize].expect("queued vertices have arrival times");
        for entry in graph.out_neighbors_in(u, window) {
            if entry.time <= reach_u {
                continue;
            }
            let v = entry.neighbor as usize;
            if arrival[v].is_none_or(|cur| entry.time < cur) {
                arrival[v] = Some(entry.time);
                if !in_queue[v] {
                    in_queue[v] = true;
                    queue.push_back(entry.neighbor);
                }
            }
        }
    }
    arrival
}

/// Latest strict-temporal departure time from every vertex towards `t`
/// within `window`, or `None` if `t` cannot be reached from the vertex.
///
/// The target itself gets `Some(window.end() + 1)` (sentinel `D(t) = τ_e + 1`).
pub fn latest_departure(
    graph: &TemporalGraph,
    t: VertexId,
    window: TimeInterval,
) -> Vec<Option<Timestamp>> {
    let n = graph.num_vertices();
    let mut departure: Vec<Option<Timestamp>> = vec![None; n];
    if (t as usize) >= n {
        return departure;
    }
    departure[t as usize] = Some(window.end() + 1);
    let mut queue = VecDeque::new();
    let mut in_queue = vec![false; n];
    queue.push_back(t);
    in_queue[t as usize] = true;
    while let Some(u) = queue.pop_front() {
        in_queue[u as usize] = false;
        let depart_u = departure[u as usize].expect("queued vertices have departure times");
        for entry in graph.in_neighbors_in(u, window) {
            if entry.time >= depart_u {
                continue;
            }
            let v = entry.neighbor as usize;
            if departure[v].is_none_or(|cur| entry.time > cur) {
                departure[v] = Some(entry.time);
                if !in_queue[v] {
                    in_queue[v] = true;
                    queue.push_back(entry.neighbor);
                }
            }
        }
    }
    departure
}

/// `true` if there is a strict temporal path from `s` to `t` within `window`.
pub fn is_reachable(graph: &TemporalGraph, s: VertexId, t: VertexId, window: TimeInterval) -> bool {
    if s == t {
        return (s as usize) < graph.num_vertices();
    }
    earliest_arrival(graph, s, window).get(t as usize).copied().flatten().is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{fig1, figure1_graph};

    #[test]
    fn earliest_arrival_matches_figure3a() {
        let g = figure1_graph();
        let w = TimeInterval::new(2, 7);
        let a = earliest_arrival(&g, fig1::S, w);
        assert_eq!(a[fig1::S as usize], Some(1));
        assert_eq!(a[fig1::A as usize], Some(3));
        assert_eq!(a[fig1::B as usize], Some(2));
        assert_eq!(a[fig1::C as usize], Some(3));
        assert_eq!(a[fig1::D as usize], Some(3));
        assert_eq!(a[fig1::E as usize], Some(5));
        assert_eq!(a[fig1::F as usize], Some(4));
        // Fig. 3(a) lists A(t) = +∞ because the paper's BFS never relaxes
        // into t; this helper does reach t (arrival 6) — only the workload
        // generator uses it, where reaching t is exactly what we test.
        assert_eq!(a[fig1::T as usize], Some(6));
    }

    #[test]
    fn latest_departure_matches_figure3b() {
        let g = figure1_graph();
        let w = TimeInterval::new(2, 7);
        let d = latest_departure(&g, fig1::T, w);
        assert_eq!(d[fig1::T as usize], Some(8));
        assert_eq!(d[fig1::B as usize], Some(6));
        assert_eq!(d[fig1::C as usize], Some(7));
        assert_eq!(d[fig1::D as usize], Some(2));
        assert_eq!(d[fig1::E as usize], Some(6));
        assert_eq!(d[fig1::F as usize], Some(5));
        assert_eq!(d[fig1::A as usize], None); // -∞ in the paper
        assert_eq!(d[fig1::S as usize], Some(2));
    }

    #[test]
    fn reachability() {
        let g = figure1_graph();
        let w = TimeInterval::new(2, 7);
        assert!(is_reachable(&g, fig1::S, fig1::T, w));
        assert!(!is_reachable(&g, fig1::T, fig1::S, w));
        assert!(!is_reachable(&g, fig1::A, fig1::T, w)); // a -> d @5 then d -> t @2 is not ascending
        assert!(is_reachable(&g, fig1::S, fig1::S, w));
        assert!(!is_reachable(&g, 99, fig1::S, w));
        assert!(!is_reachable(&g, fig1::S, 99, w));
    }

    #[test]
    fn window_restricts_reachability() {
        let g = figure1_graph();
        assert!(is_reachable(&g, fig1::S, fig1::T, TimeInterval::new(2, 6)));
        assert!(!is_reachable(&g, fig1::S, fig1::T, TimeInterval::new(3, 5)));
        assert!(is_reachable(&g, fig1::D, fig1::T, TimeInterval::new(2, 2)));
    }
}
