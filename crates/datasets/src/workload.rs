//! Query workload generation and the plain-text query-file format.
//!
//! The paper's protocol (Section VI-A): for each dataset generate 1000 random
//! queries `(s, t, [τ_b, τ_e])` with a fixed span θ such that `s` can
//! temporally reach `t` within the interval, and report aggregate costs over
//! the whole batch.
//!
//! For the batch query engine this module additionally provides
//! [`generate_workload_batches`] (reproducible multi-batch workloads, one
//! derived seed per batch), [`generate_repeated_workload`] (Zipf-skewed
//! serving traffic with exact repeats and narrowed-window refinements, the
//! workload shape the engine's result cache and window sharing exploit),
//! [`generate_overlapping_workload`] (sliding-window chains whose members
//! overlap without nesting — the shape the planner's envelope units
//! collapse) and a textual query-file format shared with the CLI `batch`
//! subcommand: one `source target begin end` quadruple per line, `#`/`%`
//! comments (whole-line or trailing) and CRLF endings accepted — see
//! [`parse_queries`] / [`format_queries`].
//!
//! All generators validate their configuration and graph up front and
//! return a [`WorkloadError`] instead of panicking deep inside the RNG.

use crate::reach::earliest_arrival;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use tspg_graph::io::strip_line_comment;
use tspg_graph::{TemporalEdge, TemporalGraph, TimeInterval, VertexId};

pub use tspg_graph::Query;

/// Why a workload could not be generated.
///
/// The generators used to panic on these conditions deep inside the RNG
/// (`random_range(0..0)` on a zero θ or an edgeless graph) or silently
/// return an empty workload; callers now get a diagnosable error instead,
/// and the CLI `workload` subcommand surfaces it verbatim.
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadError {
    /// The requested query span θ is not positive.
    InvalidTheta(i64),
    /// The catalog size (`distinct` / `chains`) is zero.
    InvalidCatalog,
    /// A probability parameter is outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The window stride does not keep consecutive chain windows
    /// overlapping (`1 ≤ stride < θ` required).
    InvalidStride {
        /// The rejected stride.
        stride: i64,
        /// The configured span θ.
        theta: i64,
    },
    /// The graph has no edges; no window can be anchored.
    EmptyGraph,
    /// The per-query sampling budget was exhausted before a single
    /// reachable `(s, t)` pair was found.
    NoReachableTargets {
        /// Queries requested.
        requested: usize,
        /// Attempts spent per query before giving up.
        attempts: usize,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidTheta(theta) => {
                write!(f, "query span theta must be at least 1, got {theta}")
            }
            Self::InvalidCatalog => write!(f, "the distinct-query catalog must not be empty"),
            Self::InvalidProbability { name, value } => {
                write!(f, "{name} must be a probability in [0, 1], got {value}")
            }
            Self::InvalidStride { stride, theta } => write!(
                f,
                "stride {stride} does not keep consecutive windows of span {theta} overlapping \
                 (need 1 <= stride < theta)"
            ),
            Self::EmptyGraph => write!(f, "the graph has no edges to anchor query windows on"),
            Self::NoReachableTargets { requested, attempts } => write!(
                f,
                "no temporally reachable (s, t) pair found for any of {requested} queries \
                 within {attempts} attempts each (graph too sparse for the requested theta?)"
            ),
        }
    }
}

impl std::error::Error for WorkloadError {}

/// Parameters of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of queries to produce.
    pub num_queries: usize,
    /// Query span θ (`τ_e − τ_b + 1`); must be ≥ 1.
    pub theta: i64,
    /// Maximum number of sampling attempts per emitted query before giving
    /// up on the whole workload (prevents infinite loops on graphs with no
    /// temporal connectivity).
    pub max_attempts_per_query: usize,
}

impl WorkloadConfig {
    /// A workload of `num_queries` queries with span `theta`.
    pub fn new(num_queries: usize, theta: i64) -> Self {
        Self { num_queries, theta, max_attempts_per_query: 200 }
    }

    fn validate(&self, graph: &TemporalGraph) -> Result<(), WorkloadError> {
        if self.theta < 1 {
            return Err(WorkloadError::InvalidTheta(self.theta));
        }
        if self.num_queries > 0 && graph.is_empty() {
            return Err(WorkloadError::EmptyGraph);
        }
        Ok(())
    }
}

/// Generates reachability-checked query workloads over a temporal graph.
#[derive(Debug)]
pub struct WorkloadGenerator<'g> {
    graph: &'g TemporalGraph,
    rng: StdRng,
}

impl<'g> WorkloadGenerator<'g> {
    /// Creates a generator over `graph`, deterministic in `seed`.
    pub fn new(graph: &'g TemporalGraph, seed: u64) -> Self {
        Self { graph, rng: StdRng::seed_from_u64(seed) }
    }

    /// Generates up to `config.num_queries` queries.
    ///
    /// Errors on an invalid configuration (θ < 1), an edgeless graph, or
    /// when not even one reachable query could be sampled. Fewer queries
    /// than requested (but at least one) are returned if the graph is so
    /// sparse that the per-query attempt budget runs out mid-workload.
    pub fn generate(&mut self, config: &WorkloadConfig) -> Result<Vec<Query>, WorkloadError> {
        config.validate(self.graph)?;
        let mut queries = Vec::with_capacity(config.num_queries);
        if config.num_queries == 0 {
            return Ok(queries);
        }
        let edges = self.graph.edges();
        'outer: for _ in 0..config.num_queries {
            for _ in 0..config.max_attempts_per_query {
                // Anchor the interval on a random edge so that the window is
                // never placed in a dead region of the timestamp domain.
                let anchor = edges[self.rng.random_range(0..edges.len())];
                let offset = self.rng.random_range(0..config.theta);
                let begin = anchor.time.saturating_sub(offset);
                let window = TimeInterval::new(begin, begin.saturating_add(config.theta - 1));
                let source = anchor.src;
                if let Some(query) = self.pick_target(source, window) {
                    queries.push(query);
                    continue 'outer;
                }
            }
            break;
        }
        if queries.is_empty() {
            return Err(WorkloadError::NoReachableTargets {
                requested: config.num_queries,
                attempts: config.max_attempts_per_query,
            });
        }
        Ok(queries)
    }

    /// Picks a random vertex that `source` temporally reaches within
    /// `window` (other than `source` itself and other than trivial
    /// one-hop-only targets being over-represented: any reachable vertex is
    /// acceptable, chosen uniformly).
    fn pick_target(&mut self, source: VertexId, window: TimeInterval) -> Option<Query> {
        let arrivals = earliest_arrival(self.graph, source, window);
        let reachable: Vec<VertexId> = arrivals
            .iter()
            .enumerate()
            .filter_map(|(v, a)| (a.is_some() && v != source as usize).then_some(v as VertexId))
            .collect();
        if reachable.is_empty() {
            return None;
        }
        let target = reachable[self.rng.random_range(0..reachable.len())];
        Some(Query::new(source, target, window))
    }
}

/// Parameters of a skewed, repeated-query workload (serving traffic).
///
/// Real query-serving traffic is nothing like the paper's uniform random
/// protocol: a few hot queries are asked over and over, and narrower
/// refinements of a hot query (same endpoints, tighter window) are common.
/// This config models that with a Zipf-style rank distribution over a pool
/// of distinct base queries, plus a probability of replacing a repeat with
/// a randomly narrowed sub-window — exactly the shapes the batch engine's
/// result cache (exact repeats) and window sharing (contained windows) are
/// built to exploit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepeatedWorkloadConfig {
    /// Total number of queries to emit.
    pub num_queries: usize,
    /// Number of distinct base queries sampled first (the "catalog").
    pub distinct: usize,
    /// Query span θ of the base queries.
    pub theta: i64,
    /// Zipf exponent: rank `r` (0-based) is drawn with weight
    /// `1 / (r + 1)^skew`. `0.0` is uniform; `~1.0` is classic web-traffic
    /// skew.
    pub skew: f64,
    /// Probability that an emitted repeat narrows its base query's window
    /// to a random sub-interval (same endpoints — a window-sharing
    /// candidate rather than an exact cache hit).
    pub narrowed: f64,
}

impl RepeatedWorkloadConfig {
    /// A workload of `num_queries` drawn from `distinct` base queries with
    /// span `theta`, web-like skew (1.1) and 30% narrowed repeats.
    pub fn new(num_queries: usize, distinct: usize, theta: i64) -> Self {
        Self { num_queries, distinct, theta, skew: 1.1, narrowed: 0.3 }
    }
}

/// Generates a skewed repeated-query workload (see
/// [`RepeatedWorkloadConfig`]), deterministic in `seed`.
///
/// Errors on an invalid configuration (θ < 1, empty catalog, `narrowed`
/// outside `[0, 1]`) or a graph too sparse to generate any base query.
pub fn generate_repeated_workload(
    graph: &TemporalGraph,
    config: &RepeatedWorkloadConfig,
    seed: u64,
) -> Result<Vec<Query>, WorkloadError> {
    if config.distinct == 0 {
        return Err(WorkloadError::InvalidCatalog);
    }
    if !(0.0..=1.0).contains(&config.narrowed) {
        return Err(WorkloadError::InvalidProbability { name: "narrowed", value: config.narrowed });
    }
    let base = generate_workload(graph, config.distinct, config.theta, seed)?;
    // Cumulative Zipf weights over the base ranks; binary search per draw.
    let mut cumulative = Vec::with_capacity(base.len());
    let mut total = 0.0f64;
    for rank in 0..base.len() {
        total += 1.0 / ((rank + 1) as f64).powf(config.skew);
        cumulative.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe_f00d_d00d);
    let mut queries = Vec::with_capacity(config.num_queries);
    for _ in 0..config.num_queries {
        let needle = rng.random::<f64>() * total;
        let rank = cumulative.partition_point(|&c| c < needle).min(base.len() - 1);
        let q = base[rank];
        if rng.random_bool(config.narrowed) && q.window.span() > 1 {
            // A random strict sub-interval: same endpoints, contained
            // window — answerable from the base query's tspG.
            let begin = rng.random_range(q.window.begin()..=q.window.end());
            let end = rng.random_range(begin..=q.window.end());
            queries.push(Query::new(q.source, q.target, TimeInterval::new(begin, end)));
        } else {
            queries.push(q);
        }
    }
    Ok(queries)
}

/// Parameters of an overlapping-window workload: chains of same-`(s, t)`
/// queries whose windows slide by less than their span, so consecutive
/// windows overlap without nesting.
///
/// This is the serving-traffic shape the planner's *envelope units* exist
/// for: a client polling the same endpoint pair over a moving time window
/// (dashboards, incident timelines) issues exactly such chains, and none
/// of the windows contains another — containment-only sharing runs every
/// one of them through the full-graph pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlappingWorkloadConfig {
    /// Total number of queries to emit (round-robin across the chains, so
    /// consecutive batch entries belong to different chains).
    pub num_queries: usize,
    /// Number of distinct `(s, t)` chains (reachability-checked bases).
    pub chains: usize,
    /// Span θ of every window; must be ≥ 2 so a valid stride exists.
    pub theta: i64,
    /// Forward shift between consecutive windows of a chain; `1 ≤ stride <
    /// theta` keeps neighbors overlapping without nesting.
    pub stride: i64,
}

impl OverlappingWorkloadConfig {
    /// A workload of `num_queries` over `chains` chains with span `theta`
    /// and the default half-span stride (consecutive windows share half
    /// their timestamps).
    pub fn new(num_queries: usize, chains: usize, theta: i64) -> Self {
        Self { num_queries, chains, theta, stride: (theta / 2).max(1) }
    }
}

/// Generates an overlapping-window workload (see
/// [`OverlappingWorkloadConfig`]), deterministic in `seed`.
///
/// Chain `c`'s `j`-th emitted query keeps the chain's `(s, t)` pair and
/// slides the base window forward by `j × stride`; queries are emitted
/// round-robin across chains. Only each chain's *base* window is
/// reachability-checked — slid windows may legitimately have empty answers
/// (that is what a dashboard polling past the last event sees).
pub fn generate_overlapping_workload(
    graph: &TemporalGraph,
    config: &OverlappingWorkloadConfig,
    seed: u64,
) -> Result<Vec<Query>, WorkloadError> {
    if config.chains == 0 {
        return Err(WorkloadError::InvalidCatalog);
    }
    if config.theta < 1 {
        return Err(WorkloadError::InvalidTheta(config.theta));
    }
    if config.stride < 1 || config.stride >= config.theta {
        return Err(WorkloadError::InvalidStride { stride: config.stride, theta: config.theta });
    }
    let bases = generate_workload(graph, config.chains, config.theta, seed)?;
    let mut queries = Vec::with_capacity(config.num_queries);
    for i in 0..config.num_queries {
        let base = &bases[i % bases.len()];
        let slide = config.stride.saturating_mul((i / bases.len()) as i64);
        let begin = base.window.begin().saturating_add(slide);
        let window = TimeInterval::new(begin, begin.saturating_add(config.theta - 1));
        queries.push(Query::new(base.source, base.target, window));
    }
    Ok(queries)
}

/// Parameters of a same-source fan-out workload: bursts of queries sharing
/// one source vertex, differing in target (and optionally in window end
/// and window begin).
///
/// This is the serving-traffic shape the planner's *profile groups* exist
/// for: "where can this account's money have gone in the next hour" /
/// "which hosts did this machine touch during the incident" expand one hot
/// source against many candidate targets over roughly the same window. The
/// forward half of the polarity computation is target-independent, so the
/// engine computes one arrival profile per burst — but only if the batch
/// actually contains such bursts, which this generator produces. With
/// `begin_jitter > 0` the emitted begins differ inside a burst, the shape
/// per-begin frontier sharing could never group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FanoutWorkloadConfig {
    /// Total number of queries to emit (round-robin across the bursts, so
    /// consecutive batch entries belong to different sources).
    pub num_queries: usize,
    /// Number of distinct source bursts (reachability-checked bases).
    pub sources: usize,
    /// Span θ of each burst's base window; must be ≥ 1.
    pub theta: i64,
    /// Maximum extra timestamps appended to an emitted query's window end.
    /// `0` keeps every end at the burst's base end.
    pub end_spread: i64,
    /// Maximum timestamps an emitted query's window begin slides forward
    /// from the burst's base begin (clamped so the window stays valid).
    /// `0` (the [`FanoutWorkloadConfig::new`] default) keeps every begin
    /// identical — the pre-profile shape.
    pub begin_jitter: i64,
}

impl FanoutWorkloadConfig {
    /// A workload of `num_queries` over `sources` bursts with span `theta`,
    /// a half-span end spread and no begin jitter.
    pub fn new(num_queries: usize, sources: usize, theta: i64) -> Self {
        Self { num_queries, sources, theta, end_spread: (theta / 2).max(0), begin_jitter: 0 }
    }

    /// The same workload with begins jittered forward by up to `jitter`
    /// timestamps (negative values are treated as 0).
    pub fn with_begin_jitter(mut self, jitter: i64) -> Self {
        self.begin_jitter = jitter.max(0);
        self
    }
}

/// Generates a same-source fan-out workload (see [`FanoutWorkloadConfig`]),
/// deterministic in `seed`.
///
/// Each burst anchors a window of span `theta` on a random out-edge of a
/// random source (like [`generate_workload`]) and collects every vertex the
/// source temporally reaches within that window; emitted queries cycle
/// through those targets round-robin across bursts, each with the burst's
/// begin slid forward by up to `begin_jitter` timestamps and an end
/// stretched by up to `end_spread` extra timestamps. Only each burst's
/// *base* window is reachability-checked — a jittered begin may start
/// after the walk that made the target reachable, which is a legitimate
/// empty answer (the same contract as the overlapping workload's slid
/// windows).
pub fn generate_fanout_workload(
    graph: &TemporalGraph,
    config: &FanoutWorkloadConfig,
    seed: u64,
) -> Result<Vec<Query>, WorkloadError> {
    if config.sources == 0 {
        return Err(WorkloadError::InvalidCatalog);
    }
    if config.theta < 1 {
        return Err(WorkloadError::InvalidTheta(config.theta));
    }
    if config.num_queries > 0 && graph.is_empty() {
        return Err(WorkloadError::EmptyGraph);
    }
    if config.num_queries == 0 {
        return Ok(Vec::new());
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfa40_7a56_6e0d_cafe);
    let edges = graph.edges();
    // Sample the bursts: (source, base window, reachable targets). A burst
    // keeps the reach-richest of a handful of candidate anchors — fan-out
    // traffic expands *hot* sources, and a burst with one reachable target
    // is just a repeated query, not a fan-out.
    let mut bursts: Vec<(VertexId, TimeInterval, Vec<VertexId>)> = Vec::new();
    let mut attempts_left = 200usize.saturating_mul(config.sources);
    while bursts.len() < config.sources && attempts_left > 0 {
        let mut best: Option<(VertexId, TimeInterval, Vec<VertexId>)> = None;
        for _ in 0..8 {
            if attempts_left == 0 {
                break;
            }
            attempts_left -= 1;
            let anchor = edges[rng.random_range(0..edges.len())];
            let offset = rng.random_range(0..config.theta);
            let begin = anchor.time.saturating_sub(offset);
            let window = TimeInterval::new(begin, begin.saturating_add(config.theta - 1));
            let source = anchor.src;
            let arrivals = earliest_arrival(graph, source, window);
            let targets: Vec<VertexId> = arrivals
                .iter()
                .enumerate()
                .filter_map(|(v, a)| (a.is_some() && v != source as usize).then_some(v as VertexId))
                .collect();
            if !targets.is_empty() && best.as_ref().is_none_or(|(_, _, b)| targets.len() > b.len())
            {
                best = Some((source, window, targets));
            }
        }
        if let Some(burst) = best {
            bursts.push(burst);
        }
    }
    if bursts.is_empty() {
        return Err(WorkloadError::NoReachableTargets {
            requested: config.num_queries,
            attempts: 200usize.saturating_mul(config.sources),
        });
    }
    let mut queries = Vec::with_capacity(config.num_queries);
    for i in 0..config.num_queries {
        let (source, window, targets) = &bursts[i % bursts.len()];
        let target = targets[(i / bursts.len()) % targets.len()];
        let stretch =
            if config.end_spread > 0 { rng.random_range(0..=config.end_spread) } else { 0 };
        let end = window.end().saturating_add(stretch);
        let jitter =
            if config.begin_jitter > 0 { rng.random_range(0..=config.begin_jitter) } else { 0 };
        // The begin never crosses the end: a burst window always stays a
        // valid interval, however large the configured jitter.
        let begin = window.begin().saturating_add(jitter).min(end);
        queries.push(Query::new(*source, target, TimeInterval::new(begin, end)));
    }
    Ok(queries)
}

/// Parameters of a streamed edge-batch feed (live-graph ingestion).
///
/// The serving-side counterpart of the query workloads above: a live
/// deployment does not rebuild its graph from scratch, it appends batches
/// of freshly observed edges (`QueryEngine::ingest`, the server's `ingest`
/// verb) and every batch advances the graph epoch. This config shapes such
/// a feed — `batches` ingestions of `edges_per_batch` edges each, with
/// timestamps advancing by `time_step` per batch so later batches land in
/// later regions of the time domain (the arrival order a real event stream
/// has).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeStreamConfig {
    /// Number of edge batches to emit (one ingestion / epoch bump each).
    pub batches: usize,
    /// Edges per batch; every edge picks a random `src != dst` pair among
    /// the graph's existing vertices, so the stream densifies the graph
    /// rather than growing its vertex range.
    pub edges_per_batch: usize,
    /// Timestamp of the first batch.
    pub start_time: i64,
    /// Forward shift of the timestamp base between consecutive batches.
    /// Within a batch, edge times are jittered uniformly inside
    /// `[base, base + time_step)`; non-positive steps are clamped to 0
    /// (every edge of every batch lands exactly at `start_time`).
    pub time_step: i64,
}

impl EdgeStreamConfig {
    /// A stream of `batches` batches of `edges_per_batch` edges starting at
    /// `start_time`, advancing one timestamp per batch.
    pub fn new(batches: usize, edges_per_batch: usize, start_time: i64) -> Self {
        Self { batches, edges_per_batch, start_time, time_step: 1 }
    }

    /// The same stream with a different per-batch timestamp shift.
    pub fn with_time_step(mut self, time_step: i64) -> Self {
        self.time_step = time_step;
        self
    }
}

/// Generates a streamed edge-batch feed (see [`EdgeStreamConfig`]),
/// deterministic in `seed`.
///
/// Batch `b`'s timestamps live in `[start_time + b·step, start_time +
/// (b+1)·step)`, so batches arrive in time order even though edges inside a
/// batch are unsorted — exactly the input contract of
/// `TemporalGraph::extend_with_edges`, which re-normalizes on append.
/// Duplicate edges across batches are possible and deliberate (a duplicate
/// batch still bumps the epoch).
///
/// Errors with [`WorkloadError::EmptyGraph`] when the graph has no edges or
/// fewer than two vertices (no `src != dst` pair exists to sample). A
/// stream of zero batches — or of zero-edge batches — is trivially
/// satisfiable and returns `batches` empty batches.
pub fn generate_edge_stream(
    graph: &TemporalGraph,
    config: &EdgeStreamConfig,
    seed: u64,
) -> Result<Vec<Vec<TemporalEdge>>, WorkloadError> {
    if config.batches == 0 || config.edges_per_batch == 0 {
        return Ok(vec![Vec::new(); config.batches]);
    }
    if graph.is_empty() || graph.num_vertices() < 2 {
        return Err(WorkloadError::EmptyGraph);
    }
    let n = graph.num_vertices();
    let step = config.time_step.max(0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xed9e_57e4_6e0d_feed);
    let mut stream = Vec::with_capacity(config.batches);
    for b in 0..config.batches {
        let base = config.start_time.saturating_add(step.saturating_mul(b as i64));
        let mut batch = Vec::with_capacity(config.edges_per_batch);
        for _ in 0..config.edges_per_batch {
            let src = rng.random_range(0..n);
            // Uniform over the n-1 vertices other than src.
            let mut dst = rng.random_range(0..n - 1);
            if dst >= src {
                dst += 1;
            }
            let time = if step > 1 { base.saturating_add(rng.random_range(0..step)) } else { base };
            batch.push(TemporalEdge::new(src as VertexId, dst as VertexId, time));
        }
        stream.push(batch);
    }
    Ok(stream)
}

/// Convenience wrapper: a deterministic workload over `graph`.
pub fn generate_workload(
    graph: &TemporalGraph,
    num_queries: usize,
    theta: i64,
    seed: u64,
) -> Result<Vec<Query>, WorkloadError> {
    WorkloadGenerator::new(graph, seed).generate(&WorkloadConfig::new(num_queries, theta))
}

/// Generates `num_batches` independent, reproducible query batches of
/// `per_batch` queries each: batch `i` uses a seed derived from `(seed, i)`,
/// so any single batch can be regenerated without generating its
/// predecessors.
pub fn generate_workload_batches(
    graph: &TemporalGraph,
    num_batches: usize,
    per_batch: usize,
    theta: i64,
    seed: u64,
) -> Result<Vec<Vec<Query>>, WorkloadError> {
    (0..num_batches)
        .map(|i| {
            // SplitMix64-style derivation keeps nearby batch indexes from
            // producing correlated RNG streams.
            let mut derived = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
            derived ^= derived >> 30;
            derived = derived.wrapping_mul(0xbf58476d1ce4e5b9);
            generate_workload(graph, per_batch, theta, derived)
        })
        .collect()
}

/// Renders queries in the textual query-file format (one
/// `source target begin end` per line, with a header comment).
pub fn format_queries(queries: &[Query]) -> String {
    let mut out = String::from("# query file: source target begin end\n");
    for q in queries {
        out.push_str(&format!(
            "{} {} {} {}\n",
            q.source,
            q.target,
            q.window.begin(),
            q.window.end()
        ));
    }
    out
}

/// Parses a textual query file.
///
/// One query per line as whitespace-separated `source target begin end`;
/// `#` and `%` open comments (whole lines or trailing); blank lines and CRLF
/// endings are tolerated. Errors name the offending 1-based line.
///
/// Queries come back in [`Query`]'s canonical form: a degenerate line like
/// `4 4 2 7` (`s == t`, empty answer on any window) parses as `4 4 2 2` —
/// re-formatting a parsed file normalizes such lines rather than preserving
/// them byte-for-byte.
pub fn parse_queries(text: &str) -> Result<Vec<Query>, String> {
    let mut queries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let data = strip_line_comment(raw);
        if data.is_empty() {
            continue;
        }
        let mut fields = data.split_whitespace();
        let mut next = |what: &str| -> Result<&str, String> {
            fields.next().ok_or_else(|| format!("line {lineno}: missing {what}"))
        };
        let source: VertexId = parse_query_field(next("source vertex")?, "source vertex", lineno)?;
        let target: VertexId = parse_query_field(next("target vertex")?, "target vertex", lineno)?;
        let begin: i64 = parse_query_field(next("interval begin")?, "interval begin", lineno)?;
        let end: i64 = parse_query_field(next("interval end")?, "interval end", lineno)?;
        if let Some(extra) = fields.next() {
            return Err(format!(
                "line {lineno}: too many fields (unexpected {extra:?}; \
                 expected `source target begin end`)"
            ));
        }
        let query = Query::try_new(source, target, begin, end)
            .ok_or_else(|| format!("line {lineno}: invalid interval [{begin}, {end}]"))?;
        queries.push(query);
    }
    Ok(queries)
}

fn parse_query_field<T: std::str::FromStr>(
    raw: &str,
    what: &str,
    lineno: usize,
) -> Result<T, String> {
    raw.parse::<T>().map_err(|_| format!("line {lineno}: invalid {what}: {raw:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GraphGenerator;
    use crate::reach::is_reachable;
    use tspg_graph::fixtures::figure1_graph;

    #[test]
    fn queries_are_reachable_and_have_requested_span() {
        let g = GraphGenerator::uniform(80, 1200, 40).generate(9);
        let queries = generate_workload(&g, 50, 8, 3).unwrap();
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert_eq!(q.theta(), 8);
            assert_ne!(q.source, q.target);
            assert!(is_reachable(&g, q.source, q.target, q.window), "{q:?}");
        }
    }

    #[test]
    fn workload_is_deterministic_in_seed() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let a = generate_workload(&g, 20, 6, 11).unwrap();
        let b = generate_workload(&g, 20, 6, 11).unwrap();
        let c = generate_workload(&g, 20, 6, 12).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_graph_is_a_workload_error() {
        let g = TemporalGraph::empty(5);
        assert_eq!(generate_workload(&g, 10, 5, 0), Err(WorkloadError::EmptyGraph));
        // Zero queries over any graph are trivially satisfiable.
        assert_eq!(generate_workload(&g, 0, 5, 0), Ok(Vec::new()));
    }

    #[test]
    fn invalid_theta_is_a_workload_error_not_a_panic() {
        let g = figure1_graph();
        // Both of these used to reach `random_range(0..theta)` and panic.
        assert_eq!(generate_workload(&g, 5, 0, 1), Err(WorkloadError::InvalidTheta(0)));
        assert_eq!(generate_workload(&g, 5, -3, 1), Err(WorkloadError::InvalidTheta(-3)));
        let err = generate_workload(&g, 5, 0, 1).unwrap_err();
        assert!(err.to_string().contains("theta"), "{err}");
    }

    #[test]
    fn repeated_workload_validates_its_config() {
        let g = figure1_graph();
        let mut cfg = RepeatedWorkloadConfig::new(10, 0, 5);
        assert_eq!(generate_repeated_workload(&g, &cfg, 0), Err(WorkloadError::InvalidCatalog));
        cfg.distinct = 4;
        cfg.narrowed = 1.5;
        assert!(matches!(
            generate_repeated_workload(&g, &cfg, 0),
            Err(WorkloadError::InvalidProbability { name: "narrowed", .. })
        ));
        cfg.theta = 0;
        cfg.narrowed = 0.3;
        assert_eq!(generate_repeated_workload(&g, &cfg, 0), Err(WorkloadError::InvalidTheta(0)));
    }

    #[test]
    fn figure1_graph_small_workload() {
        let g = figure1_graph();
        let queries = generate_workload(&g, 25, 6, 4).unwrap();
        assert!(!queries.is_empty());
        for q in &queries {
            assert!(is_reachable(&g, q.source, q.target, q.window));
        }
    }

    #[test]
    fn disconnected_graph_exhausts_attempts_gracefully() {
        // Edges exist but every edge's head has no further reachable vertex
        // other than itself; queries can still anchor on single edges.
        let g = TemporalGraph::from_edges(
            4,
            vec![tspg_graph::TemporalEdge::new(0, 1, 5), tspg_graph::TemporalEdge::new(2, 3, 9)],
        );
        let queries = generate_workload(&g, 10, 3, 1).unwrap();
        // Single-hop queries are fine; just ensure no panic and validity.
        assert!(!queries.is_empty());
        for q in &queries {
            assert!(is_reachable(&g, q.source, q.target, q.window));
        }
    }

    #[test]
    fn batches_are_reproducible_and_distinct() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let a = generate_workload_batches(&g, 3, 10, 6, 7).unwrap();
        let b = generate_workload_batches(&g, 3, 10, 6, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|batch| batch.len() == 10));
        assert_ne!(a[0], a[1], "different batches must not repeat the same queries");
        // Regenerating only the last batch gives the same queries as the
        // full run (batch seeds are independent of predecessors).
        let c = generate_workload_batches(&g, 3, 10, 6, 7).unwrap();
        assert_eq!(a[2], c[2]);
    }

    #[test]
    fn repeated_workload_is_deterministic_and_skewed() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let cfg = RepeatedWorkloadConfig::new(300, 12, 6);
        let a = generate_repeated_workload(&g, &cfg, 5).unwrap();
        let b = generate_repeated_workload(&g, &cfg, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        assert_ne!(a, generate_repeated_workload(&g, &cfg, 6).unwrap());
        // Zipf skew: the hottest base query dominates a uniform share.
        let base = generate_workload(&g, cfg.distinct, cfg.theta, 5).unwrap();
        let hottest = a.iter().filter(|q| **q == base[0]).count();
        assert!(
            hottest > a.len() / cfg.distinct,
            "rank-0 share {hottest} should beat the uniform share {}",
            a.len() / cfg.distinct
        );
        // Fewer distinct queries than emitted queries: repeats exist.
        let mut distinct = a.clone();
        distinct.sort_by_key(|q| (q.source, q.target, q.window.begin(), q.window.end()));
        distinct.dedup();
        assert!(distinct.len() < a.len());
    }

    #[test]
    fn narrowed_repeats_are_contained_in_their_base_query() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let cfg = RepeatedWorkloadConfig { narrowed: 1.0, ..RepeatedWorkloadConfig::new(50, 8, 6) };
        let base = generate_workload(&g, cfg.distinct, cfg.theta, 9).unwrap();
        let queries = generate_repeated_workload(&g, &cfg, 9).unwrap();
        let mut narrowed = 0;
        for q in &queries {
            assert!(base.iter().any(|b| b.covers(q)), "{q:?} must be covered by some base query");
            narrowed += usize::from(base.iter().all(|b| b != q));
        }
        assert!(narrowed > 0, "with narrowed=1.0 some windows must actually shrink");
    }

    #[test]
    fn repeated_workload_on_an_empty_graph_is_an_error() {
        let cfg = RepeatedWorkloadConfig::new(10, 4, 5);
        assert_eq!(
            generate_repeated_workload(&TemporalGraph::empty(4), &cfg, 0),
            Err(WorkloadError::EmptyGraph)
        );
    }

    #[test]
    fn overlapping_workload_slides_windows_without_nesting() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let cfg = OverlappingWorkloadConfig::new(24, 4, 8);
        assert_eq!(cfg.stride, 4);
        let a = generate_overlapping_workload(&g, &cfg, 5).unwrap();
        assert_eq!(a, generate_overlapping_workload(&g, &cfg, 5).unwrap());
        assert_eq!(a.len(), 24);
        let bases = generate_workload(&g, cfg.chains, cfg.theta, 5).unwrap();
        for (i, q) in a.iter().enumerate() {
            let base = &bases[i % bases.len()];
            assert_eq!((q.source, q.target), (base.source, base.target));
            assert_eq!(q.theta(), cfg.theta);
            let slide = cfg.stride * (i / bases.len()) as i64;
            assert_eq!(q.window.begin(), base.window.begin() + slide);
            if i >= bases.len() {
                // Consecutive windows of a chain overlap but never nest.
                let prev = &a[i - bases.len()];
                assert!(prev.window.overlaps(&q.window), "#{i}: {prev} vs {q}");
                assert!(!prev.window.contains_interval(&q.window), "#{i}");
                assert!(!q.window.contains_interval(&prev.window), "#{i}");
            }
        }
    }

    #[test]
    fn overlapping_workload_validates_its_config() {
        let g = figure1_graph();
        let bad_chains =
            OverlappingWorkloadConfig { chains: 0, ..OverlappingWorkloadConfig::new(8, 2, 6) };
        assert_eq!(
            generate_overlapping_workload(&g, &bad_chains, 0),
            Err(WorkloadError::InvalidCatalog)
        );
        let bad_stride =
            OverlappingWorkloadConfig { stride: 6, ..OverlappingWorkloadConfig::new(8, 2, 6) };
        assert_eq!(
            generate_overlapping_workload(&g, &bad_stride, 0),
            Err(WorkloadError::InvalidStride { stride: 6, theta: 6 })
        );
        let bad_theta = OverlappingWorkloadConfig::new(8, 2, 1);
        assert!(matches!(
            generate_overlapping_workload(&g, &bad_theta, 0),
            Err(WorkloadError::InvalidStride { .. })
        ));
        assert_eq!(
            generate_overlapping_workload(
                &TemporalGraph::empty(3),
                &OverlappingWorkloadConfig::new(8, 2, 6),
                0
            ),
            Err(WorkloadError::EmptyGraph)
        );
    }

    #[test]
    fn fanout_workload_shares_sources_and_window_begins() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let cfg = FanoutWorkloadConfig::new(40, 4, 8);
        let a = generate_fanout_workload(&g, &cfg, 5).unwrap();
        assert_eq!(a, generate_fanout_workload(&g, &cfg, 5).unwrap());
        assert_ne!(a, generate_fanout_workload(&g, &cfg, 6).unwrap());
        assert_eq!(a.len(), 40);
        // Round-robin: queries i and i + sources share source and begin but
        // name a different target (until a burst's target list wraps).
        let mut per_source: std::collections::HashMap<VertexId, Vec<&Query>> =
            std::collections::HashMap::new();
        for q in &a {
            assert_ne!(q.source, q.target);
            assert!(is_reachable(&g, q.source, q.target, q.window), "{q}");
            per_source.entry(q.source).or_default().push(q);
        }
        assert!(per_source.len() <= cfg.sources);
        let mut fanned_out = 0;
        for queries in per_source.values() {
            let begin = queries[0].window.begin();
            assert!(queries.iter().all(|q| q.window.begin() == begin), "same-begin bursts");
            let mut targets: Vec<VertexId> = queries.iter().map(|q| q.target).collect();
            targets.sort_unstable();
            targets.dedup();
            fanned_out += usize::from(targets.len() > 1);
            // Ends stay within the configured spread of the base span.
            for q in queries.iter() {
                assert!(q.theta() >= cfg.theta && q.theta() <= cfg.theta + cfg.end_spread, "{q}");
            }
        }
        assert!(fanned_out > 0, "at least one burst must fan out to several targets");
    }

    #[test]
    fn fanout_begin_jitter_mixes_begins_within_a_burst() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let base = FanoutWorkloadConfig::new(40, 4, 8);
        let cfg = base.with_begin_jitter(4);
        assert_eq!(cfg.begin_jitter, 4);
        let a = generate_fanout_workload(&g, &cfg, 5).unwrap();
        assert_eq!(a, generate_fanout_workload(&g, &cfg, 5).unwrap(), "deterministic in seed");
        assert_eq!(a.len(), 40);
        let mut per_source: std::collections::HashMap<VertexId, Vec<&Query>> =
            std::collections::HashMap::new();
        for q in &a {
            assert!(q.window.begin() <= q.window.end(), "{q}");
            per_source.entry(q.source).or_default().push(q);
        }
        // At least one burst must actually contain differing begins —
        // otherwise the knob exercises nothing new.
        let mixed = per_source.values().any(|queries| {
            let begin = queries[0].window.begin();
            queries.iter().any(|q| q.window.begin() != begin)
        });
        assert!(mixed, "begin_jitter=4 must produce mixed begins in some burst");
        // Begins only ever slide forward, and by at most the jitter bound.
        let bases = {
            let plain = generate_fanout_workload(&g, &base, 5).unwrap();
            let mut begins: std::collections::HashMap<VertexId, i64> =
                std::collections::HashMap::new();
            for q in &plain {
                begins.entry(q.source).or_insert(q.window.begin());
            }
            begins
        };
        for q in &a {
            if let Some(&base_begin) = bases.get(&q.source) {
                assert!(q.window.begin() >= base_begin, "{q}");
                assert!(q.window.begin() <= base_begin + cfg.begin_jitter, "{q}");
            }
        }
        // Negative jitter clamps to the no-jitter behavior.
        assert_eq!(base.with_begin_jitter(-3).begin_jitter, 0);
    }

    #[test]
    fn fanout_workload_zero_spread_repeats_identical_windows() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let cfg = FanoutWorkloadConfig { end_spread: 0, ..FanoutWorkloadConfig::new(20, 2, 6) };
        let queries = generate_fanout_workload(&g, &cfg, 9).unwrap();
        for q in &queries {
            assert_eq!(q.theta(), 6);
        }
    }

    #[test]
    fn fanout_workload_validates_its_config() {
        let g = figure1_graph();
        let bad_sources = FanoutWorkloadConfig { sources: 0, ..FanoutWorkloadConfig::new(8, 2, 6) };
        assert_eq!(
            generate_fanout_workload(&g, &bad_sources, 0),
            Err(WorkloadError::InvalidCatalog)
        );
        let bad_theta = FanoutWorkloadConfig { theta: 0, ..FanoutWorkloadConfig::new(8, 2, 6) };
        assert_eq!(
            generate_fanout_workload(&g, &bad_theta, 0),
            Err(WorkloadError::InvalidTheta(0))
        );
        assert_eq!(
            generate_fanout_workload(
                &TemporalGraph::empty(3),
                &FanoutWorkloadConfig::new(8, 2, 6),
                0
            ),
            Err(WorkloadError::EmptyGraph)
        );
        assert_eq!(
            generate_fanout_workload(&g, &FanoutWorkloadConfig::new(0, 2, 6), 0),
            Ok(Vec::new())
        );
    }

    #[test]
    fn edge_stream_batches_advance_in_time_and_stay_in_range() {
        let g = GraphGenerator::uniform(40, 300, 20).generate(3);
        let cfg = EdgeStreamConfig::new(5, 8, 25).with_time_step(4);
        let stream = generate_edge_stream(&g, &cfg, 7).unwrap();
        assert_eq!(stream, generate_edge_stream(&g, &cfg, 7).unwrap(), "deterministic in seed");
        assert_ne!(stream, generate_edge_stream(&g, &cfg, 8).unwrap());
        assert_eq!(stream.len(), 5);
        for (b, batch) in stream.iter().enumerate() {
            assert_eq!(batch.len(), 8);
            let base = 25 + 4 * b as i64;
            for e in batch {
                assert_ne!(e.src, e.dst);
                assert!((e.src as usize) < g.num_vertices(), "{e:?}");
                assert!((e.dst as usize) < g.num_vertices(), "{e:?}");
                assert!(e.time >= base && e.time < base + 4, "{e:?} outside batch {b}'s slot");
            }
        }
        // Ingesting the whole stream matches the one-shot build of the union.
        let mut live = g.clone();
        let mut all = g.edges().to_vec();
        for batch in &stream {
            live.extend_with_edges(batch);
            all.extend_from_slice(batch);
        }
        let fresh = TemporalGraph::from_edges(g.num_vertices(), all);
        assert_eq!(live.edges(), fresh.edges());
        assert_eq!(live.epoch().value(), 5);
    }

    #[test]
    fn edge_stream_validates_its_config() {
        let cfg = EdgeStreamConfig::new(3, 4, 0);
        assert_eq!(
            generate_edge_stream(&TemporalGraph::empty(5), &cfg, 0),
            Err(WorkloadError::EmptyGraph)
        );
        let one_vertex = TemporalGraph::from_edges(1, vec![tspg_graph::TemporalEdge::new(0, 0, 1)]);
        assert_eq!(generate_edge_stream(&one_vertex, &cfg, 0), Err(WorkloadError::EmptyGraph));
        let g = figure1_graph();
        assert_eq!(generate_edge_stream(&g, &EdgeStreamConfig::new(0, 4, 0), 0), Ok(Vec::new()));
        assert_eq!(
            generate_edge_stream(&g, &EdgeStreamConfig::new(2, 0, 0), 0),
            Ok(vec![Vec::new(), Vec::new()])
        );
        // A non-positive step clamps: every edge lands at start_time.
        let flat = generate_edge_stream(&g, &EdgeStreamConfig::new(3, 2, 9).with_time_step(-2), 1)
            .unwrap();
        assert!(flat.iter().flatten().all(|e| e.time == 9));
    }

    #[test]
    fn query_file_roundtrip() {
        let g = figure1_graph();
        let queries = generate_workload(&g, 12, 6, 4).unwrap();
        let text = format_queries(&queries);
        let parsed = parse_queries(&text).unwrap();
        assert_eq!(parsed, queries);
    }

    #[test]
    fn query_file_tolerates_comments_and_crlf() {
        let text = "# header\r\n0 7 2 7\r\n\r\n2 7 3 6 % trailing note\r\n% footer\r\n";
        let parsed = parse_queries(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], Query::new(0, 7, TimeInterval::new(2, 7)));
        assert_eq!(parsed[1], Query::new(2, 7, TimeInterval::new(3, 6)));
    }

    #[test]
    fn query_file_errors_carry_line_numbers() {
        let err = parse_queries("0 7 2 7\n0 x 2 7\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("target"), "{err}");
        let err = parse_queries("0 7 2\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("interval end"), "{err}");
        let err = parse_queries("0 7 2 7 9\n").unwrap_err();
        assert!(err.contains("too many fields"), "{err}");
        let err = parse_queries("0 7 9 2\n").unwrap_err();
        assert!(err.contains("invalid interval"), "{err}");
    }
}
