//! Query workload generation and the plain-text query-file format.
//!
//! The paper's protocol (Section VI-A): for each dataset generate 1000 random
//! queries `(s, t, [τ_b, τ_e])` with a fixed span θ such that `s` can
//! temporally reach `t` within the interval, and report aggregate costs over
//! the whole batch.
//!
//! For the batch query engine this module additionally provides
//! [`generate_workload_batches`] (reproducible multi-batch workloads, one
//! derived seed per batch), [`generate_repeated_workload`] (Zipf-skewed
//! serving traffic with exact repeats and narrowed-window refinements, the
//! workload shape the engine's result cache and window sharing exploit) and
//! a textual query-file format shared with the CLI `batch` subcommand: one `source target begin end` quadruple per line,
//! `#`/`%` comments (whole-line or trailing) and CRLF endings accepted —
//! see [`parse_queries`] / [`format_queries`].

use crate::reach::earliest_arrival;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tspg_graph::io::strip_line_comment;
use tspg_graph::{TemporalGraph, TimeInterval, VertexId};

pub use tspg_graph::Query;

/// Parameters of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of queries to produce.
    pub num_queries: usize,
    /// Query span θ (`τ_e − τ_b + 1`).
    pub theta: i64,
    /// Maximum number of sampling attempts per emitted query before giving
    /// up on the whole workload (prevents infinite loops on graphs with no
    /// temporal connectivity).
    pub max_attempts_per_query: usize,
}

impl WorkloadConfig {
    /// A workload of `num_queries` queries with span `theta`.
    pub fn new(num_queries: usize, theta: i64) -> Self {
        Self { num_queries, theta: theta.max(1), max_attempts_per_query: 200 }
    }
}

/// Generates reachability-checked query workloads over a temporal graph.
#[derive(Debug)]
pub struct WorkloadGenerator<'g> {
    graph: &'g TemporalGraph,
    rng: StdRng,
}

impl<'g> WorkloadGenerator<'g> {
    /// Creates a generator over `graph`, deterministic in `seed`.
    pub fn new(graph: &'g TemporalGraph, seed: u64) -> Self {
        Self { graph, rng: StdRng::seed_from_u64(seed) }
    }

    /// Generates up to `config.num_queries` queries. Fewer queries are
    /// returned only if the graph is so sparse that the per-query attempt
    /// budget is exhausted.
    pub fn generate(&mut self, config: &WorkloadConfig) -> Vec<Query> {
        let mut queries = Vec::with_capacity(config.num_queries);
        if self.graph.is_empty() {
            return queries;
        }
        let edges = self.graph.edges();
        'outer: for _ in 0..config.num_queries {
            for _ in 0..config.max_attempts_per_query {
                // Anchor the interval on a random edge so that the window is
                // never placed in a dead region of the timestamp domain.
                let anchor = edges[self.rng.random_range(0..edges.len())];
                let offset = self.rng.random_range(0..config.theta);
                let begin = anchor.time - offset;
                let window = TimeInterval::new(begin, begin + config.theta - 1);
                let source = anchor.src;
                if let Some(query) = self.pick_target(source, window) {
                    queries.push(query);
                    continue 'outer;
                }
            }
            break;
        }
        queries
    }

    /// Picks a random vertex that `source` temporally reaches within
    /// `window` (other than `source` itself and other than trivial
    /// one-hop-only targets being over-represented: any reachable vertex is
    /// acceptable, chosen uniformly).
    fn pick_target(&mut self, source: VertexId, window: TimeInterval) -> Option<Query> {
        let arrivals = earliest_arrival(self.graph, source, window);
        let reachable: Vec<VertexId> = arrivals
            .iter()
            .enumerate()
            .filter_map(|(v, a)| (a.is_some() && v != source as usize).then_some(v as VertexId))
            .collect();
        if reachable.is_empty() {
            return None;
        }
        let target = reachable[self.rng.random_range(0..reachable.len())];
        Some(Query::new(source, target, window))
    }
}

/// Parameters of a skewed, repeated-query workload (serving traffic).
///
/// Real query-serving traffic is nothing like the paper's uniform random
/// protocol: a few hot queries are asked over and over, and narrower
/// refinements of a hot query (same endpoints, tighter window) are common.
/// This config models that with a Zipf-style rank distribution over a pool
/// of distinct base queries, plus a probability of replacing a repeat with
/// a randomly narrowed sub-window — exactly the shapes the batch engine's
/// result cache (exact repeats) and window sharing (contained windows) are
/// built to exploit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RepeatedWorkloadConfig {
    /// Total number of queries to emit.
    pub num_queries: usize,
    /// Number of distinct base queries sampled first (the "catalog").
    pub distinct: usize,
    /// Query span θ of the base queries.
    pub theta: i64,
    /// Zipf exponent: rank `r` (0-based) is drawn with weight
    /// `1 / (r + 1)^skew`. `0.0` is uniform; `~1.0` is classic web-traffic
    /// skew.
    pub skew: f64,
    /// Probability that an emitted repeat narrows its base query's window
    /// to a random sub-interval (same endpoints — a window-sharing
    /// candidate rather than an exact cache hit).
    pub narrowed: f64,
}

impl RepeatedWorkloadConfig {
    /// A workload of `num_queries` drawn from `distinct` base queries with
    /// span `theta`, web-like skew (1.1) and 30% narrowed repeats.
    pub fn new(num_queries: usize, distinct: usize, theta: i64) -> Self {
        Self { num_queries, distinct: distinct.max(1), theta, skew: 1.1, narrowed: 0.3 }
    }
}

/// Generates a skewed repeated-query workload (see
/// [`RepeatedWorkloadConfig`]), deterministic in `seed`.
///
/// Returns an empty workload only if the graph is too sparse to generate
/// any base query at all.
pub fn generate_repeated_workload(
    graph: &TemporalGraph,
    config: &RepeatedWorkloadConfig,
    seed: u64,
) -> Vec<Query> {
    let base = generate_workload(graph, config.distinct, config.theta, seed);
    if base.is_empty() {
        return Vec::new();
    }
    // Cumulative Zipf weights over the base ranks; binary search per draw.
    let mut cumulative = Vec::with_capacity(base.len());
    let mut total = 0.0f64;
    for rank in 0..base.len() {
        total += 1.0 / ((rank + 1) as f64).powf(config.skew);
        cumulative.push(total);
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe_f00d_d00d);
    let mut queries = Vec::with_capacity(config.num_queries);
    for _ in 0..config.num_queries {
        let needle = rng.random::<f64>() * total;
        let rank = cumulative.partition_point(|&c| c < needle).min(base.len() - 1);
        let q = base[rank];
        if rng.random_bool(config.narrowed) && q.window.span() > 1 {
            // A random strict sub-interval: same endpoints, contained
            // window — answerable from the base query's tspG.
            let begin = rng.random_range(q.window.begin()..=q.window.end());
            let end = rng.random_range(begin..=q.window.end());
            queries.push(Query::new(q.source, q.target, TimeInterval::new(begin, end)));
        } else {
            queries.push(q);
        }
    }
    queries
}

/// Convenience wrapper: a deterministic workload over `graph`.
pub fn generate_workload(
    graph: &TemporalGraph,
    num_queries: usize,
    theta: i64,
    seed: u64,
) -> Vec<Query> {
    WorkloadGenerator::new(graph, seed).generate(&WorkloadConfig::new(num_queries, theta))
}

/// Generates `num_batches` independent, reproducible query batches of
/// `per_batch` queries each: batch `i` uses a seed derived from `(seed, i)`,
/// so any single batch can be regenerated without generating its
/// predecessors.
pub fn generate_workload_batches(
    graph: &TemporalGraph,
    num_batches: usize,
    per_batch: usize,
    theta: i64,
    seed: u64,
) -> Vec<Vec<Query>> {
    (0..num_batches)
        .map(|i| {
            // SplitMix64-style derivation keeps nearby batch indexes from
            // producing correlated RNG streams.
            let mut derived = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
            derived ^= derived >> 30;
            derived = derived.wrapping_mul(0xbf58476d1ce4e5b9);
            generate_workload(graph, per_batch, theta, derived)
        })
        .collect()
}

/// Renders queries in the textual query-file format (one
/// `source target begin end` per line, with a header comment).
pub fn format_queries(queries: &[Query]) -> String {
    let mut out = String::from("# query file: source target begin end\n");
    for q in queries {
        out.push_str(&format!(
            "{} {} {} {}\n",
            q.source,
            q.target,
            q.window.begin(),
            q.window.end()
        ));
    }
    out
}

/// Parses a textual query file.
///
/// One query per line as whitespace-separated `source target begin end`;
/// `#` and `%` open comments (whole lines or trailing); blank lines and CRLF
/// endings are tolerated. Errors name the offending 1-based line.
///
/// Queries come back in [`Query`]'s canonical form: a degenerate line like
/// `4 4 2 7` (`s == t`, empty answer on any window) parses as `4 4 2 2` —
/// re-formatting a parsed file normalizes such lines rather than preserving
/// them byte-for-byte.
pub fn parse_queries(text: &str) -> Result<Vec<Query>, String> {
    let mut queries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let data = strip_line_comment(raw);
        if data.is_empty() {
            continue;
        }
        let mut fields = data.split_whitespace();
        let mut next = |what: &str| -> Result<&str, String> {
            fields.next().ok_or_else(|| format!("line {lineno}: missing {what}"))
        };
        let source: VertexId = parse_query_field(next("source vertex")?, "source vertex", lineno)?;
        let target: VertexId = parse_query_field(next("target vertex")?, "target vertex", lineno)?;
        let begin: i64 = parse_query_field(next("interval begin")?, "interval begin", lineno)?;
        let end: i64 = parse_query_field(next("interval end")?, "interval end", lineno)?;
        if let Some(extra) = fields.next() {
            return Err(format!(
                "line {lineno}: too many fields (unexpected {extra:?}; \
                 expected `source target begin end`)"
            ));
        }
        let query = Query::try_new(source, target, begin, end)
            .ok_or_else(|| format!("line {lineno}: invalid interval [{begin}, {end}]"))?;
        queries.push(query);
    }
    Ok(queries)
}

fn parse_query_field<T: std::str::FromStr>(
    raw: &str,
    what: &str,
    lineno: usize,
) -> Result<T, String> {
    raw.parse::<T>().map_err(|_| format!("line {lineno}: invalid {what}: {raw:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GraphGenerator;
    use crate::reach::is_reachable;
    use tspg_graph::fixtures::figure1_graph;

    #[test]
    fn queries_are_reachable_and_have_requested_span() {
        let g = GraphGenerator::uniform(80, 1200, 40).generate(9);
        let queries = generate_workload(&g, 50, 8, 3);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert_eq!(q.theta(), 8);
            assert_ne!(q.source, q.target);
            assert!(is_reachable(&g, q.source, q.target, q.window), "{q:?}");
        }
    }

    #[test]
    fn workload_is_deterministic_in_seed() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let a = generate_workload(&g, 20, 6, 11);
        let b = generate_workload(&g, 20, 6, 11);
        let c = generate_workload(&g, 20, 6, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_graph_yields_no_queries() {
        let g = TemporalGraph::empty(5);
        assert!(generate_workload(&g, 10, 5, 0).is_empty());
    }

    #[test]
    fn figure1_graph_small_workload() {
        let g = figure1_graph();
        let queries = generate_workload(&g, 25, 6, 4);
        assert!(!queries.is_empty());
        for q in &queries {
            assert!(is_reachable(&g, q.source, q.target, q.window));
        }
    }

    #[test]
    fn disconnected_graph_exhausts_attempts_gracefully() {
        // Edges exist but every edge's head has no further reachable vertex
        // other than itself; queries can still anchor on single edges.
        let g = TemporalGraph::from_edges(
            4,
            vec![tspg_graph::TemporalEdge::new(0, 1, 5), tspg_graph::TemporalEdge::new(2, 3, 9)],
        );
        let queries = generate_workload(&g, 10, 3, 1);
        // Single-hop queries are fine; just ensure no panic and validity.
        for q in &queries {
            assert!(is_reachable(&g, q.source, q.target, q.window));
        }
    }

    #[test]
    fn workload_config_clamps_theta() {
        let c = WorkloadConfig::new(5, 0);
        assert_eq!(c.theta, 1);
    }

    #[test]
    fn batches_are_reproducible_and_distinct() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let a = generate_workload_batches(&g, 3, 10, 6, 7);
        let b = generate_workload_batches(&g, 3, 10, 6, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|batch| batch.len() == 10));
        assert_ne!(a[0], a[1], "different batches must not repeat the same queries");
        // Regenerating only the last batch gives the same queries as the
        // full run (batch seeds are independent of predecessors).
        let c = generate_workload_batches(&g, 3, 10, 6, 7);
        assert_eq!(a[2], c[2]);
    }

    #[test]
    fn repeated_workload_is_deterministic_and_skewed() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let cfg = RepeatedWorkloadConfig::new(300, 12, 6);
        let a = generate_repeated_workload(&g, &cfg, 5);
        let b = generate_repeated_workload(&g, &cfg, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 300);
        assert_ne!(a, generate_repeated_workload(&g, &cfg, 6));
        // Zipf skew: the hottest base query dominates a uniform share.
        let base = generate_workload(&g, cfg.distinct, cfg.theta, 5);
        let hottest = a.iter().filter(|q| **q == base[0]).count();
        assert!(
            hottest > a.len() / cfg.distinct,
            "rank-0 share {hottest} should beat the uniform share {}",
            a.len() / cfg.distinct
        );
        // Fewer distinct queries than emitted queries: repeats exist.
        let mut distinct = a.clone();
        distinct.sort_by_key(|q| (q.source, q.target, q.window.begin(), q.window.end()));
        distinct.dedup();
        assert!(distinct.len() < a.len());
    }

    #[test]
    fn narrowed_repeats_are_contained_in_their_base_query() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let cfg = RepeatedWorkloadConfig { narrowed: 1.0, ..RepeatedWorkloadConfig::new(50, 8, 6) };
        let base = generate_workload(&g, cfg.distinct, cfg.theta, 9);
        let queries = generate_repeated_workload(&g, &cfg, 9);
        let mut narrowed = 0;
        for q in &queries {
            assert!(base.iter().any(|b| b.covers(q)), "{q:?} must be covered by some base query");
            narrowed += usize::from(base.iter().all(|b| b != q));
        }
        assert!(narrowed > 0, "with narrowed=1.0 some windows must actually shrink");
    }

    #[test]
    fn repeated_workload_on_an_empty_graph_is_empty() {
        let cfg = RepeatedWorkloadConfig::new(10, 4, 5);
        assert!(generate_repeated_workload(&TemporalGraph::empty(4), &cfg, 0).is_empty());
    }

    #[test]
    fn query_file_roundtrip() {
        let g = figure1_graph();
        let queries = generate_workload(&g, 12, 6, 4);
        let text = format_queries(&queries);
        let parsed = parse_queries(&text).unwrap();
        assert_eq!(parsed, queries);
    }

    #[test]
    fn query_file_tolerates_comments_and_crlf() {
        let text = "# header\r\n0 7 2 7\r\n\r\n2 7 3 6 % trailing note\r\n% footer\r\n";
        let parsed = parse_queries(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], Query::new(0, 7, TimeInterval::new(2, 7)));
        assert_eq!(parsed[1], Query::new(2, 7, TimeInterval::new(3, 6)));
    }

    #[test]
    fn query_file_errors_carry_line_numbers() {
        let err = parse_queries("0 7 2 7\n0 x 2 7\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("target"), "{err}");
        let err = parse_queries("0 7 2\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("interval end"), "{err}");
        let err = parse_queries("0 7 2 7 9\n").unwrap_err();
        assert!(err.contains("too many fields"), "{err}");
        let err = parse_queries("0 7 9 2\n").unwrap_err();
        assert!(err.contains("invalid interval"), "{err}");
    }
}
