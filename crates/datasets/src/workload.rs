//! Query workload generation.
//!
//! The paper's protocol (Section VI-A): for each dataset generate 1000 random
//! queries `(s, t, [τ_b, τ_e])` with a fixed span θ such that `s` can
//! temporally reach `t` within the interval, and report aggregate costs over
//! the whole batch.

use crate::reach::earliest_arrival;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tspg_graph::{TemporalGraph, TimeInterval, VertexId};

/// One temporal simple path graph query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Query {
    /// Source vertex `s`.
    pub source: VertexId,
    /// Target vertex `t`.
    pub target: VertexId,
    /// Query interval `[τ_b, τ_e]`.
    pub window: TimeInterval,
}

impl Query {
    /// Creates a query.
    pub fn new(source: VertexId, target: VertexId, window: TimeInterval) -> Self {
        Self { source, target, window }
    }

    /// The span θ of the query interval.
    pub fn theta(&self) -> i64 {
        self.window.span()
    }
}

/// Parameters of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of queries to produce.
    pub num_queries: usize,
    /// Query span θ (`τ_e − τ_b + 1`).
    pub theta: i64,
    /// Maximum number of sampling attempts per emitted query before giving
    /// up on the whole workload (prevents infinite loops on graphs with no
    /// temporal connectivity).
    pub max_attempts_per_query: usize,
}

impl WorkloadConfig {
    /// A workload of `num_queries` queries with span `theta`.
    pub fn new(num_queries: usize, theta: i64) -> Self {
        Self { num_queries, theta: theta.max(1), max_attempts_per_query: 200 }
    }
}

/// Generates reachability-checked query workloads over a temporal graph.
#[derive(Debug)]
pub struct WorkloadGenerator<'g> {
    graph: &'g TemporalGraph,
    rng: StdRng,
}

impl<'g> WorkloadGenerator<'g> {
    /// Creates a generator over `graph`, deterministic in `seed`.
    pub fn new(graph: &'g TemporalGraph, seed: u64) -> Self {
        Self { graph, rng: StdRng::seed_from_u64(seed) }
    }

    /// Generates up to `config.num_queries` queries. Fewer queries are
    /// returned only if the graph is so sparse that the per-query attempt
    /// budget is exhausted.
    pub fn generate(&mut self, config: &WorkloadConfig) -> Vec<Query> {
        let mut queries = Vec::with_capacity(config.num_queries);
        if self.graph.is_empty() {
            return queries;
        }
        let edges = self.graph.edges();
        'outer: for _ in 0..config.num_queries {
            for _ in 0..config.max_attempts_per_query {
                // Anchor the interval on a random edge so that the window is
                // never placed in a dead region of the timestamp domain.
                let anchor = edges[self.rng.random_range(0..edges.len())];
                let offset = self.rng.random_range(0..config.theta);
                let begin = anchor.time - offset;
                let window = TimeInterval::new(begin, begin + config.theta - 1);
                let source = anchor.src;
                if let Some(query) = self.pick_target(source, window) {
                    queries.push(query);
                    continue 'outer;
                }
            }
            break;
        }
        queries
    }

    /// Picks a random vertex that `source` temporally reaches within
    /// `window` (other than `source` itself and other than trivial
    /// one-hop-only targets being over-represented: any reachable vertex is
    /// acceptable, chosen uniformly).
    fn pick_target(&mut self, source: VertexId, window: TimeInterval) -> Option<Query> {
        let arrivals = earliest_arrival(self.graph, source, window);
        let reachable: Vec<VertexId> = arrivals
            .iter()
            .enumerate()
            .filter_map(|(v, a)| (a.is_some() && v != source as usize).then_some(v as VertexId))
            .collect();
        if reachable.is_empty() {
            return None;
        }
        let target = reachable[self.rng.random_range(0..reachable.len())];
        Some(Query::new(source, target, window))
    }
}

/// Convenience wrapper: a deterministic workload over `graph`.
pub fn generate_workload(
    graph: &TemporalGraph,
    num_queries: usize,
    theta: i64,
    seed: u64,
) -> Vec<Query> {
    WorkloadGenerator::new(graph, seed).generate(&WorkloadConfig::new(num_queries, theta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GraphGenerator;
    use crate::reach::is_reachable;
    use tspg_graph::fixtures::figure1_graph;

    #[test]
    fn queries_are_reachable_and_have_requested_span() {
        let g = GraphGenerator::uniform(80, 1200, 40).generate(9);
        let queries = generate_workload(&g, 50, 8, 3);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert_eq!(q.theta(), 8);
            assert_ne!(q.source, q.target);
            assert!(is_reachable(&g, q.source, q.target, q.window), "{q:?}");
        }
    }

    #[test]
    fn workload_is_deterministic_in_seed() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let a = generate_workload(&g, 20, 6, 11);
        let b = generate_workload(&g, 20, 6, 11);
        let c = generate_workload(&g, 20, 6, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_graph_yields_no_queries() {
        let g = TemporalGraph::empty(5);
        assert!(generate_workload(&g, 10, 5, 0).is_empty());
    }

    #[test]
    fn figure1_graph_small_workload() {
        let g = figure1_graph();
        let queries = generate_workload(&g, 25, 6, 4);
        assert!(!queries.is_empty());
        for q in &queries {
            assert!(is_reachable(&g, q.source, q.target, q.window));
        }
    }

    #[test]
    fn disconnected_graph_exhausts_attempts_gracefully() {
        // Edges exist but every edge's head has no further reachable vertex
        // other than itself; queries can still anchor on single edges.
        let g = TemporalGraph::from_edges(
            4,
            vec![tspg_graph::TemporalEdge::new(0, 1, 5), tspg_graph::TemporalEdge::new(2, 3, 9)],
        );
        let queries = generate_workload(&g, 10, 3, 1);
        // Single-hop queries are fine; just ensure no panic and validity.
        for q in &queries {
            assert!(is_reachable(&g, q.source, q.target, q.window));
        }
    }

    #[test]
    fn workload_config_clamps_theta() {
        let c = WorkloadConfig::new(5, 0);
        assert_eq!(c.theta, 1);
    }
}
