//! Query workload generation and the plain-text query-file format.
//!
//! The paper's protocol (Section VI-A): for each dataset generate 1000 random
//! queries `(s, t, [τ_b, τ_e])` with a fixed span θ such that `s` can
//! temporally reach `t` within the interval, and report aggregate costs over
//! the whole batch.
//!
//! For the batch query engine this module additionally provides
//! [`generate_workload_batches`] (reproducible multi-batch workloads, one
//! derived seed per batch) and a textual query-file format shared with the
//! CLI `batch` subcommand: one `source target begin end` quadruple per line,
//! `#`/`%` comments (whole-line or trailing) and CRLF endings accepted —
//! see [`parse_queries`] / [`format_queries`].

use crate::reach::earliest_arrival;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tspg_graph::io::strip_line_comment;
use tspg_graph::{TemporalGraph, TimeInterval, VertexId};

pub use tspg_graph::Query;

/// Parameters of a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkloadConfig {
    /// Number of queries to produce.
    pub num_queries: usize,
    /// Query span θ (`τ_e − τ_b + 1`).
    pub theta: i64,
    /// Maximum number of sampling attempts per emitted query before giving
    /// up on the whole workload (prevents infinite loops on graphs with no
    /// temporal connectivity).
    pub max_attempts_per_query: usize,
}

impl WorkloadConfig {
    /// A workload of `num_queries` queries with span `theta`.
    pub fn new(num_queries: usize, theta: i64) -> Self {
        Self { num_queries, theta: theta.max(1), max_attempts_per_query: 200 }
    }
}

/// Generates reachability-checked query workloads over a temporal graph.
#[derive(Debug)]
pub struct WorkloadGenerator<'g> {
    graph: &'g TemporalGraph,
    rng: StdRng,
}

impl<'g> WorkloadGenerator<'g> {
    /// Creates a generator over `graph`, deterministic in `seed`.
    pub fn new(graph: &'g TemporalGraph, seed: u64) -> Self {
        Self { graph, rng: StdRng::seed_from_u64(seed) }
    }

    /// Generates up to `config.num_queries` queries. Fewer queries are
    /// returned only if the graph is so sparse that the per-query attempt
    /// budget is exhausted.
    pub fn generate(&mut self, config: &WorkloadConfig) -> Vec<Query> {
        let mut queries = Vec::with_capacity(config.num_queries);
        if self.graph.is_empty() {
            return queries;
        }
        let edges = self.graph.edges();
        'outer: for _ in 0..config.num_queries {
            for _ in 0..config.max_attempts_per_query {
                // Anchor the interval on a random edge so that the window is
                // never placed in a dead region of the timestamp domain.
                let anchor = edges[self.rng.random_range(0..edges.len())];
                let offset = self.rng.random_range(0..config.theta);
                let begin = anchor.time - offset;
                let window = TimeInterval::new(begin, begin + config.theta - 1);
                let source = anchor.src;
                if let Some(query) = self.pick_target(source, window) {
                    queries.push(query);
                    continue 'outer;
                }
            }
            break;
        }
        queries
    }

    /// Picks a random vertex that `source` temporally reaches within
    /// `window` (other than `source` itself and other than trivial
    /// one-hop-only targets being over-represented: any reachable vertex is
    /// acceptable, chosen uniformly).
    fn pick_target(&mut self, source: VertexId, window: TimeInterval) -> Option<Query> {
        let arrivals = earliest_arrival(self.graph, source, window);
        let reachable: Vec<VertexId> = arrivals
            .iter()
            .enumerate()
            .filter_map(|(v, a)| (a.is_some() && v != source as usize).then_some(v as VertexId))
            .collect();
        if reachable.is_empty() {
            return None;
        }
        let target = reachable[self.rng.random_range(0..reachable.len())];
        Some(Query::new(source, target, window))
    }
}

/// Convenience wrapper: a deterministic workload over `graph`.
pub fn generate_workload(
    graph: &TemporalGraph,
    num_queries: usize,
    theta: i64,
    seed: u64,
) -> Vec<Query> {
    WorkloadGenerator::new(graph, seed).generate(&WorkloadConfig::new(num_queries, theta))
}

/// Generates `num_batches` independent, reproducible query batches of
/// `per_batch` queries each: batch `i` uses a seed derived from `(seed, i)`,
/// so any single batch can be regenerated without generating its
/// predecessors.
pub fn generate_workload_batches(
    graph: &TemporalGraph,
    num_batches: usize,
    per_batch: usize,
    theta: i64,
    seed: u64,
) -> Vec<Vec<Query>> {
    (0..num_batches)
        .map(|i| {
            // SplitMix64-style derivation keeps nearby batch indexes from
            // producing correlated RNG streams.
            let mut derived = seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15);
            derived ^= derived >> 30;
            derived = derived.wrapping_mul(0xbf58476d1ce4e5b9);
            generate_workload(graph, per_batch, theta, derived)
        })
        .collect()
}

/// Renders queries in the textual query-file format (one
/// `source target begin end` per line, with a header comment).
pub fn format_queries(queries: &[Query]) -> String {
    let mut out = String::from("# query file: source target begin end\n");
    for q in queries {
        out.push_str(&format!(
            "{} {} {} {}\n",
            q.source,
            q.target,
            q.window.begin(),
            q.window.end()
        ));
    }
    out
}

/// Parses a textual query file.
///
/// One query per line as whitespace-separated `source target begin end`;
/// `#` and `%` open comments (whole lines or trailing); blank lines and CRLF
/// endings are tolerated. Errors name the offending 1-based line.
pub fn parse_queries(text: &str) -> Result<Vec<Query>, String> {
    let mut queries = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let data = strip_line_comment(raw);
        if data.is_empty() {
            continue;
        }
        let mut fields = data.split_whitespace();
        let mut next = |what: &str| -> Result<&str, String> {
            fields.next().ok_or_else(|| format!("line {lineno}: missing {what}"))
        };
        let source: VertexId = parse_query_field(next("source vertex")?, "source vertex", lineno)?;
        let target: VertexId = parse_query_field(next("target vertex")?, "target vertex", lineno)?;
        let begin: i64 = parse_query_field(next("interval begin")?, "interval begin", lineno)?;
        let end: i64 = parse_query_field(next("interval end")?, "interval end", lineno)?;
        if let Some(extra) = fields.next() {
            return Err(format!(
                "line {lineno}: too many fields (unexpected {extra:?}; \
                 expected `source target begin end`)"
            ));
        }
        let window = TimeInterval::try_new(begin, end)
            .ok_or_else(|| format!("line {lineno}: invalid interval [{begin}, {end}]"))?;
        queries.push(Query::new(source, target, window));
    }
    Ok(queries)
}

fn parse_query_field<T: std::str::FromStr>(
    raw: &str,
    what: &str,
    lineno: usize,
) -> Result<T, String> {
    raw.parse::<T>().map_err(|_| format!("line {lineno}: invalid {what}: {raw:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::GraphGenerator;
    use crate::reach::is_reachable;
    use tspg_graph::fixtures::figure1_graph;

    #[test]
    fn queries_are_reachable_and_have_requested_span() {
        let g = GraphGenerator::uniform(80, 1200, 40).generate(9);
        let queries = generate_workload(&g, 50, 8, 3);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert_eq!(q.theta(), 8);
            assert_ne!(q.source, q.target);
            assert!(is_reachable(&g, q.source, q.target, q.window), "{q:?}");
        }
    }

    #[test]
    fn workload_is_deterministic_in_seed() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let a = generate_workload(&g, 20, 6, 11);
        let b = generate_workload(&g, 20, 6, 11);
        let c = generate_workload(&g, 20, 6, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_graph_yields_no_queries() {
        let g = TemporalGraph::empty(5);
        assert!(generate_workload(&g, 10, 5, 0).is_empty());
    }

    #[test]
    fn figure1_graph_small_workload() {
        let g = figure1_graph();
        let queries = generate_workload(&g, 25, 6, 4);
        assert!(!queries.is_empty());
        for q in &queries {
            assert!(is_reachable(&g, q.source, q.target, q.window));
        }
    }

    #[test]
    fn disconnected_graph_exhausts_attempts_gracefully() {
        // Edges exist but every edge's head has no further reachable vertex
        // other than itself; queries can still anchor on single edges.
        let g = TemporalGraph::from_edges(
            4,
            vec![tspg_graph::TemporalEdge::new(0, 1, 5), tspg_graph::TemporalEdge::new(2, 3, 9)],
        );
        let queries = generate_workload(&g, 10, 3, 1);
        // Single-hop queries are fine; just ensure no panic and validity.
        for q in &queries {
            assert!(is_reachable(&g, q.source, q.target, q.window));
        }
    }

    #[test]
    fn workload_config_clamps_theta() {
        let c = WorkloadConfig::new(5, 0);
        assert_eq!(c.theta, 1);
    }

    #[test]
    fn batches_are_reproducible_and_distinct() {
        let g = GraphGenerator::uniform(60, 800, 30).generate(2);
        let a = generate_workload_batches(&g, 3, 10, 6, 7);
        let b = generate_workload_batches(&g, 3, 10, 6, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|batch| batch.len() == 10));
        assert_ne!(a[0], a[1], "different batches must not repeat the same queries");
        // Regenerating only the last batch gives the same queries as the
        // full run (batch seeds are independent of predecessors).
        let c = generate_workload_batches(&g, 3, 10, 6, 7);
        assert_eq!(a[2], c[2]);
    }

    #[test]
    fn query_file_roundtrip() {
        let g = figure1_graph();
        let queries = generate_workload(&g, 12, 6, 4);
        let text = format_queries(&queries);
        let parsed = parse_queries(&text).unwrap();
        assert_eq!(parsed, queries);
    }

    #[test]
    fn query_file_tolerates_comments_and_crlf() {
        let text = "# header\r\n0 7 2 7\r\n\r\n2 7 3 6 % trailing note\r\n% footer\r\n";
        let parsed = parse_queries(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], Query::new(0, 7, TimeInterval::new(2, 7)));
        assert_eq!(parsed[1], Query::new(2, 7, TimeInterval::new(3, 6)));
    }

    #[test]
    fn query_file_errors_carry_line_numbers() {
        let err = parse_queries("0 7 2 7\n0 x 2 7\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("target"), "{err}");
        let err = parse_queries("0 7 2\n").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("interval end"), "{err}");
        let err = parse_queries("0 7 2 7 9\n").unwrap_err();
        assert!(err.contains("too many fields"), "{err}");
        let err = parse_queries("0 7 9 2\n").unwrap_err();
        assert!(err.contains("invalid interval"), "{err}");
    }
}
