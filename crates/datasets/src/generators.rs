//! Synthetic temporal graph generators.
//!
//! Four generator families cover the structural regimes of the paper's ten
//! datasets:
//!
//! * [`GeneratorModel::Uniform`] — Erdős–Rényi-style temporal graphs with
//!   uniformly random endpoints and timestamps (dense communication logs such
//!   as `email-Eu-core`).
//! * [`GeneratorModel::Hub`] — skewed ("power-law-ish") endpoint selection
//!   producing a few very high degree hubs (Q&A and wiki-talk style graphs).
//! * [`GeneratorModel::Community`] — planted communities with strong
//!   within-community preference and per-community activity bursts (social
//!   interaction graphs).
//! * [`GeneratorModel::Transit`] — a schedule of bus lines over shared stops,
//!   used for the SFMTA-style case study of Fig. 13.
//!
//! All generators are deterministic for a given seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tspg_graph::{TemporalGraph, TemporalGraphBuilder, Timestamp, VertexId};

/// The generative model used to synthesise a temporal graph.
#[derive(Clone, Debug, PartialEq)]
pub enum GeneratorModel {
    /// Uniform random endpoints, uniform random timestamps.
    Uniform,
    /// Skewed endpoint selection: vertex `⌊n · x^exponent⌋` for uniform `x`,
    /// so small ids become hubs. `exponent > 1`; larger values skew harder.
    Hub {
        /// Skew exponent (typically 2.0–3.5).
        exponent: f64,
    },
    /// Planted communities with probability `p_in` of an edge staying inside
    /// its source community, and timestamps drawn from the community's
    /// activity window (a contiguous slice of the timestamp domain) with
    /// probability 0.8, uniformly otherwise.
    Community {
        /// Number of planted communities (≥ 1).
        communities: usize,
        /// Probability that an edge stays inside its community.
        p_in: f64,
    },
    /// A public-transport schedule: `routes` bus lines, each visiting
    /// `stops_per_route` stops with one edge per hop per trip; trips depart
    /// every `headway` time units over the whole timestamp domain. A fraction
    /// of stops is shared between lines so that transfers (and therefore
    /// multiple temporal simple paths) exist.
    Transit {
        /// Number of bus lines.
        routes: usize,
        /// Stops per line.
        stops_per_route: usize,
        /// Departure interval between consecutive trips of a line.
        headway: Timestamp,
        /// Travel time of one hop.
        hop_time: Timestamp,
        /// Fraction of stops remapped onto shared "hub" stops (0.0–1.0).
        transfer_fraction: f64,
    },
}

/// A complete description of a synthetic temporal graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphGenerator {
    /// Number of vertices to generate.
    pub num_vertices: usize,
    /// Number of temporal edges to generate (before de-duplication).
    pub num_edges: usize,
    /// Size of the timestamp domain; timestamps are drawn from `1..=num_timestamps`.
    pub num_timestamps: usize,
    /// The generative model.
    pub model: GeneratorModel,
}

impl GraphGenerator {
    /// Convenience constructor for a uniform random graph.
    pub fn uniform(num_vertices: usize, num_edges: usize, num_timestamps: usize) -> Self {
        Self { num_vertices, num_edges, num_timestamps, model: GeneratorModel::Uniform }
    }

    /// Convenience constructor for a hub-skewed graph.
    pub fn hub(
        num_vertices: usize,
        num_edges: usize,
        num_timestamps: usize,
        exponent: f64,
    ) -> Self {
        Self { num_vertices, num_edges, num_timestamps, model: GeneratorModel::Hub { exponent } }
    }

    /// Generates the graph deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> TemporalGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        match &self.model {
            GeneratorModel::Uniform => self.generate_uniform(&mut rng),
            GeneratorModel::Hub { exponent } => self.generate_hub(&mut rng, *exponent),
            GeneratorModel::Community { communities, p_in } => {
                self.generate_community(&mut rng, *communities, *p_in)
            }
            GeneratorModel::Transit {
                routes,
                stops_per_route,
                headway,
                hop_time,
                transfer_fraction,
            } => {
                generate_transit(
                    &mut rng,
                    *routes,
                    *stops_per_route,
                    *headway,
                    *hop_time,
                    *transfer_fraction,
                    self.num_timestamps as Timestamp,
                )
                .0
            }
        }
    }

    fn generate_uniform(&self, rng: &mut StdRng) -> TemporalGraph {
        let n = self.num_vertices.max(2);
        let mut b = TemporalGraphBuilder::with_vertices(n);
        b.reserve(self.num_edges);
        for _ in 0..self.num_edges {
            let (u, v) = random_distinct_pair(rng, n, |r, n| r.random_range(0..n));
            let t = rng.random_range(1..=self.num_timestamps.max(1)) as Timestamp;
            b.add_edge(u, v, t);
        }
        b.build()
    }

    fn generate_hub(&self, rng: &mut StdRng, exponent: f64) -> TemporalGraph {
        let n = self.num_vertices.max(2);
        let exponent = exponent.max(1.0);
        let pick = move |r: &mut StdRng, n: usize| -> usize {
            let x: f64 = r.random::<f64>();
            ((n as f64) * x.powf(exponent)) as usize % n
        };
        let mut b = TemporalGraphBuilder::with_vertices(n);
        b.reserve(self.num_edges);
        for _ in 0..self.num_edges {
            let (u, v) = random_distinct_pair(rng, n, pick);
            let t = rng.random_range(1..=self.num_timestamps.max(1)) as Timestamp;
            b.add_edge(u, v, t);
        }
        b.build()
    }

    fn generate_community(&self, rng: &mut StdRng, communities: usize, p_in: f64) -> TemporalGraph {
        let n = self.num_vertices.max(2);
        let k = communities.clamp(1, n);
        let t_domain = self.num_timestamps.max(k);
        let slice = (t_domain / k).max(1);
        let mut b = TemporalGraphBuilder::with_vertices(n);
        b.reserve(self.num_edges);
        for _ in 0..self.num_edges {
            let u = rng.random_range(0..n);
            let community = u % k;
            let v = if rng.random_bool(p_in.clamp(0.0, 1.0)) {
                // another member of the same community
                let members = (n / k).max(1);
                let offset = rng.random_range(0..members);
                (community + offset * k) % n
            } else {
                rng.random_range(0..n)
            };
            if u == v {
                continue;
            }
            let t = if rng.random_bool(0.8) {
                // burst inside the community's activity window
                let start = community * slice;
                rng.random_range(start..start + slice).max(1)
            } else {
                rng.random_range(1..=t_domain)
            } as Timestamp;
            b.add_edge(u as VertexId, v as VertexId, t);
        }
        b.build()
    }
}

fn random_distinct_pair(
    rng: &mut StdRng,
    n: usize,
    pick: impl Fn(&mut StdRng, usize) -> usize,
) -> (VertexId, VertexId) {
    loop {
        let u = pick(rng, n);
        let v = pick(rng, n);
        if u != v {
            return (u as VertexId, v as VertexId);
        }
    }
}

/// Generates a transit-schedule temporal graph and the list of stop names.
///
/// Stops are named `"L{line} stop {index}"` or `"Hub {h}"` for shared
/// transfer stops; the names are what the case-study example prints in its
/// Fig. 13 analogue.
pub fn generate_transit(
    rng: &mut StdRng,
    routes: usize,
    stops_per_route: usize,
    headway: Timestamp,
    hop_time: Timestamp,
    transfer_fraction: f64,
    day_length: Timestamp,
) -> (TemporalGraph, Vec<String>) {
    let routes = routes.max(1);
    let stops_per_route = stops_per_route.max(2);
    let headway = headway.max(1);
    let hop_time = hop_time.max(1);
    let num_hubs = (((routes * stops_per_route) as f64) * transfer_fraction * 0.5).ceil() as usize;
    let num_hubs = num_hubs.max(1);

    // Assign each (route, position) slot either a dedicated stop or a hub.
    let mut names: Vec<String> = (0..num_hubs).map(|h| format!("Hub {h}")).collect();
    let mut slot_stop = vec![vec![0 as VertexId; stops_per_route]; routes];
    for (r, slots) in slot_stop.iter_mut().enumerate() {
        for (i, slot) in slots.iter_mut().enumerate() {
            if rng.random_bool(transfer_fraction.clamp(0.0, 1.0)) {
                *slot = rng.random_range(0..num_hubs) as VertexId;
            } else {
                *slot = names.len() as VertexId;
                names.push(format!("L{r} stop {i}"));
            }
        }
    }

    let mut b = TemporalGraphBuilder::with_vertices(names.len());
    for slots in &slot_stop {
        let mut depart = 1 as Timestamp;
        while depart <= day_length.max(1) {
            let mut time = depart;
            for pair in slots.windows(2) {
                if pair[0] != pair[1] {
                    b.add_edge(pair[0], pair[1], time);
                }
                time += hop_time;
            }
            depart += headway;
        }
    }
    (b.build(), names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_generator_is_deterministic() {
        let g = GraphGenerator::uniform(50, 400, 30);
        let a = g.generate(7);
        let b = g.generate(7);
        let c = g.generate(8);
        assert_eq!(a.edges(), b.edges());
        assert_ne!(a.edges(), c.edges());
        assert_eq!(a.num_vertices(), 50);
        assert!(a.num_edges() > 300); // a few duplicates may collapse
        assert!(a.edges().iter().all(|e| e.time >= 1 && e.time <= 30));
        assert!(a.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn hub_generator_produces_skew() {
        let uni = GraphGenerator::uniform(200, 3000, 50).generate(1);
        let hub = GraphGenerator::hub(200, 3000, 50, 3.0).generate(1);
        assert!(hub.max_degree() > 2 * uni.max_degree());
    }

    #[test]
    fn community_generator_respects_bounds() {
        let spec = GraphGenerator {
            num_vertices: 120,
            num_edges: 2000,
            num_timestamps: 60,
            model: GeneratorModel::Community { communities: 6, p_in: 0.85 },
        };
        let g = spec.generate(3);
        assert!(g.num_edges() > 1000);
        assert!(g.edges().iter().all(|e| e.time >= 1 && e.time <= 60));
        assert!(g.edges().iter().all(|e| e.src != e.dst));
        assert!(g.num_vertices() <= 120);
        // determinism
        assert_eq!(spec.generate(3).edges(), g.edges());
    }

    #[test]
    fn transit_generator_builds_schedules() {
        let mut rng = StdRng::seed_from_u64(11);
        let (g, names) = generate_transit(&mut rng, 5, 8, 10, 2, 0.3, 120);
        assert_eq!(names.len(), g.num_vertices());
        assert!(g.num_edges() > 100);
        // hop times follow the schedule: all within one "day"
        assert!(g.edges().iter().all(|e| e.time >= 1));
        // at least one hub exists and has traffic
        assert!(names.iter().any(|n| n.starts_with("Hub")));
    }

    #[test]
    fn transit_model_through_graph_generator() {
        let spec = GraphGenerator {
            num_vertices: 0, // derived from routes/stops
            num_edges: 0,
            num_timestamps: 100,
            model: GeneratorModel::Transit {
                routes: 4,
                stops_per_route: 6,
                headway: 15,
                hop_time: 3,
                transfer_fraction: 0.4,
            },
        };
        let g = spec.generate(5);
        assert!(g.num_edges() > 0);
        assert_eq!(spec.generate(5).edges(), g.edges());
    }

    #[test]
    fn degenerate_sizes_do_not_panic() {
        let g = GraphGenerator::uniform(1, 10, 1).generate(0);
        assert!(g.num_vertices() >= 2);
        let g = GraphGenerator::hub(2, 5, 1, 0.5).generate(0);
        assert!(g.num_edges() <= 5);
        let spec = GraphGenerator {
            num_vertices: 3,
            num_edges: 10,
            num_timestamps: 2,
            model: GeneratorModel::Community { communities: 10, p_in: 1.5 },
        };
        let _ = spec.generate(0);
    }
}
