//! The dataset registry: laptop-scale analogues of the paper's Table I.
//!
//! Each [`DatasetSpec`] records the full-size statistics of the corresponding
//! real dataset (for documentation and for EXPERIMENTS.md) together with a
//! generator model whose *shape* mimics it. A [`Scale`] divides the sizes
//! down to something that runs on a laptop; the default experiment scale is
//! [`Scale::small`].

use crate::generators::{GeneratorModel, GraphGenerator};
use tspg_graph::TemporalGraph;

/// How aggressively to shrink the full-size dataset statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale {
    /// Divisor applied to the vertex and edge counts.
    pub size_divisor: f64,
    /// Divisor applied to the timestamp-domain size.
    pub time_divisor: f64,
    /// Lower bound on the number of generated edges.
    pub min_edges: usize,
    /// Upper bound on the number of generated edges (safety cap).
    pub max_edges: usize,
    /// Multiplier applied to the original dataset's edge/vertex density when
    /// deriving the scaled vertex count. Values above 1 concentrate the
    /// edges on fewer vertices, recovering the per-window branching factor
    /// that the full-size datasets get from their sheer size.
    pub density_boost: f64,
}

impl Scale {
    /// A few hundred edges per dataset; suitable for unit tests.
    pub fn tiny() -> Self {
        Self {
            size_divisor: 40_000.0,
            time_divisor: 40.0,
            min_edges: 300,
            max_edges: 3_000,
            density_boost: 3.0,
        }
    }

    /// Thousands to tens of thousands of edges; the default for the
    /// experiment harness and the Criterion benchmarks.
    pub fn small() -> Self {
        Self {
            size_divisor: 4_000.0,
            time_divisor: 20.0,
            min_edges: 4_000,
            max_edges: 40_000,
            density_boost: 8.0,
        }
    }

    /// Hundreds of thousands of edges; minutes-long harness runs.
    pub fn medium() -> Self {
        Self {
            size_divisor: 400.0,
            time_divisor: 10.0,
            min_edges: 10_000,
            max_edges: 400_000,
            density_boost: 8.0,
        }
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::small()
    }
}

/// A dataset of the paper (Table I) plus the synthetic model that stands in
/// for it.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Short id used throughout the paper: `"D1"` … `"D10"`.
    pub id: &'static str,
    /// Name of the real dataset this spec mirrors.
    pub source_name: &'static str,
    /// `|V|` of the real dataset.
    pub full_vertices: usize,
    /// `|E|` of the real dataset.
    pub full_edges: usize,
    /// `|T|` of the real dataset.
    pub full_timestamps: usize,
    /// Maximum degree `d` of the real dataset.
    pub full_max_degree: usize,
    /// Default query span θ used by the paper for this dataset.
    pub default_theta: i64,
    /// Generator family used for the synthetic analogue.
    pub model: GeneratorModel,
}

impl DatasetSpec {
    /// The generator obtained by applying `scale` to the full-size statistics.
    ///
    /// Scaling keeps what actually drives the algorithms' relative behaviour:
    /// the number of edges falling inside one query window per vertex. The
    /// full datasets achieve that density through sheer size (tens of
    /// millions of edges and six-figure hub degrees); at laptop scale the
    /// same per-window density is recovered by shrinking the vertex set and
    /// the timestamp domain faster than the edge count (`density_boost`,
    /// and a timestamp domain of a few multiples of the default θ).
    pub fn generator(&self, scale: Scale) -> GraphGenerator {
        let num_edges = ((self.full_edges as f64 / scale.size_divisor) as usize)
            .clamp(scale.min_edges, scale.max_edges);
        let density = self.full_edges as f64 / self.full_vertices as f64;
        let num_vertices = ((num_edges as f64 / (density * scale.density_boost)) as usize).max(24);
        let theta = self.default_theta as usize;
        let num_timestamps = ((self.full_timestamps as f64 / scale.time_divisor) as usize)
            .clamp(3 * theta, 4 * theta);
        GraphGenerator { num_vertices, num_edges, num_timestamps, model: self.model.clone() }
    }

    /// Generates the synthetic analogue at the given scale and seed.
    pub fn generate(&self, scale: Scale, seed: u64) -> TemporalGraph {
        self.generator(scale).generate(seed)
    }
}

/// The ten datasets of Table I, in order D1…D10.
pub fn registry() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            id: "D1",
            source_name: "email-Eu-core",
            full_vertices: 1_005,
            full_edges: 332_334,
            full_timestamps: 803,
            full_max_degree: 9_782,
            default_theta: 10,
            // email-Eu-core is a small, very dense communication core; a
            // uniform model over a compact vertex set reproduces its
            // many-parallel-routes behaviour better than a partitioned
            // community model at this scale.
            model: GeneratorModel::Uniform,
        },
        DatasetSpec {
            id: "D2",
            source_name: "sx-mathoverflow",
            full_vertices: 88_581,
            full_edges: 506_550,
            full_timestamps: 2_350,
            full_max_degree: 5_931,
            default_theta: 20,
            model: GeneratorModel::Hub { exponent: 2.2 },
        },
        DatasetSpec {
            id: "D3",
            source_name: "sx-askubuntu",
            full_vertices: 159_316,
            full_edges: 964_437,
            full_timestamps: 2_613,
            full_max_degree: 8_729,
            default_theta: 20,
            model: GeneratorModel::Hub { exponent: 2.4 },
        },
        DatasetSpec {
            id: "D4",
            source_name: "sx-superuser",
            full_vertices: 194_085,
            full_edges: 1_443_339,
            full_timestamps: 2_773,
            full_max_degree: 26_996,
            default_theta: 20,
            model: GeneratorModel::Hub { exponent: 2.6 },
        },
        DatasetSpec {
            id: "D5",
            source_name: "wiki-ru",
            full_vertices: 457_018,
            full_edges: 2_282_055,
            full_timestamps: 4_715,
            full_max_degree: 188_103,
            default_theta: 25,
            model: GeneratorModel::Hub { exponent: 2.8 },
        },
        DatasetSpec {
            id: "D6",
            source_name: "wiki-de",
            full_vertices: 519_404,
            full_edges: 6_729_794,
            full_timestamps: 5_599,
            full_max_degree: 395_780,
            default_theta: 25,
            model: GeneratorModel::Hub { exponent: 3.0 },
        },
        DatasetSpec {
            id: "D7",
            source_name: "wiki-talk",
            full_vertices: 1_140_149,
            full_edges: 7_833_140,
            full_timestamps: 2_320,
            full_max_degree: 264_905,
            default_theta: 20,
            model: GeneratorModel::Hub { exponent: 3.0 },
        },
        DatasetSpec {
            id: "D8",
            source_name: "flickr",
            full_vertices: 2_302_926,
            full_edges: 33_140_017,
            full_timestamps: 196,
            full_max_degree: 34_174,
            default_theta: 10,
            model: GeneratorModel::Uniform,
        },
        DatasetSpec {
            id: "D9",
            source_name: "sx-stackoverflow",
            full_vertices: 6_024_271,
            full_edges: 63_497_050,
            full_timestamps: 2_776,
            full_max_degree: 101_663,
            default_theta: 20,
            model: GeneratorModel::Hub { exponent: 2.6 },
        },
        DatasetSpec {
            id: "D10",
            source_name: "wikipedia",
            full_vertices: 2_166_670,
            full_edges: 86_337_879,
            full_timestamps: 3_787,
            full_max_degree: 218_465,
            default_theta: 25,
            model: GeneratorModel::Community { communities: 24, p_in: 0.7 },
        },
    ]
}

/// Looks up a dataset spec by its id (`"D1"` … `"D10"`), case-insensitively.
pub fn find(id: &str) -> Option<DatasetSpec> {
    registry().into_iter().find(|d| d.id.eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_ten_datasets_in_order() {
        let r = registry();
        assert_eq!(r.len(), 10);
        for (i, spec) in r.iter().enumerate() {
            assert_eq!(spec.id, format!("D{}", i + 1));
            assert!(spec.full_edges >= spec.full_vertices);
            assert!(spec.default_theta >= 10);
        }
        // Sizes are strictly increasing from D1 to D10 in edge count, as in
        // Table I.
        for w in r.windows(2) {
            assert!(w[0].full_edges < w[1].full_edges);
        }
    }

    #[test]
    fn find_by_id() {
        assert_eq!(find("D3").unwrap().source_name, "sx-askubuntu");
        assert_eq!(find("d10").unwrap().source_name, "wikipedia");
        assert!(find("D11").is_none());
    }

    #[test]
    fn scaling_respects_caps() {
        for spec in registry() {
            for scale in [Scale::tiny(), Scale::small()] {
                let g = spec.generator(scale);
                assert!(g.num_edges >= scale.min_edges);
                assert!(g.num_edges <= scale.max_edges);
                assert!(g.num_vertices >= 24);
                assert!(g.num_timestamps >= 3 * spec.default_theta as usize);
                assert!(g.num_timestamps <= 4 * spec.default_theta as usize);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_nonempty() {
        let spec = find("D1").unwrap();
        let a = spec.generate(Scale::tiny(), 1);
        let b = spec.generate(Scale::tiny(), 1);
        assert_eq!(a.edges(), b.edges());
        assert!(a.num_edges() >= 200);
    }

    #[test]
    fn default_scale_is_small() {
        assert_eq!(Scale::default(), Scale::small());
    }
}
