//! # tspg-datasets
//!
//! Synthetic temporal graph generators, a dataset registry mirroring the
//! paper's ten real-world graphs (Table I) at laptop scale, and query
//! workload generation.
//!
//! The paper evaluates on SNAP/KONECT graphs (email-Eu-core, sx-mathoverflow,
//! …, wikipedia) with up to 86 M temporal edges. Those datasets cannot be
//! bundled here, so this crate provides generators that reproduce the
//! *shape* that drives the algorithms' behaviour — degree skew, timestamp
//! domain size, density and default query span — under a configurable scale
//! factor. The substitution is documented in `DESIGN.md` (§5).
//!
//! ```
//! use tspg_datasets::{registry, Scale};
//!
//! let specs = registry();
//! assert_eq!(specs.len(), 10);
//! let d1 = specs[0].generate(Scale::tiny(), 42);
//! assert!(d1.num_edges() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generators;
pub mod reach;
pub mod registry;
pub mod workload;

pub use generators::{generate_transit, GeneratorModel, GraphGenerator};
pub use reach::{earliest_arrival, is_reachable, latest_departure};
pub use registry::{find, registry, DatasetSpec, Scale};
pub use workload::{
    format_queries, generate_edge_stream, generate_fanout_workload, generate_overlapping_workload,
    generate_repeated_workload, generate_workload, generate_workload_batches, parse_queries,
    EdgeStreamConfig, FanoutWorkloadConfig, OverlappingWorkloadConfig, Query,
    RepeatedWorkloadConfig, WorkloadConfig, WorkloadError, WorkloadGenerator,
};
