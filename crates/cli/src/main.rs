//! `tspg` — command-line interface for temporal simple path graph generation.
//!
//! ```text
//! tspg stats <edge-list>
//! tspg generate --dataset D1 [--scale tiny|small|medium] [--seed N] [--output FILE]
//! tspg query <edge-list> --source S --target T --begin B --end E
//!            [--algorithm vug|epdt|epes|eptg] [--dot]
//! tspg paths <edge-list> --source S --target T --begin B --end E [--limit N]
//! ```
//!
//! The edge-list format is one `src dst timestamp` triple per line (`#` and
//! `%` start comments), the same format used by SNAP/KONECT dumps.

use std::collections::HashMap;
use std::process::ExitCode;
use tspg_baselines::{run_ep, EpAlgorithm};
use tspg_core::generate_tspg;
use tspg_datasets::{find, Scale};
use tspg_enum::{enumerate_paths, Budget};
use tspg_graph::{io, GraphStats, TemporalGraph, TimeInterval, VertexId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `tspg help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Ok(usage());
    };
    let rest = &args[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "stats" => cmd_stats(rest),
        "generate" => cmd_generate(rest),
        "query" => cmd_query(rest),
        "paths" => cmd_paths(rest),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn usage() -> String {
    "tspg — temporal simple path graph generation (VUG)\n\
     \n\
     usage:\n\
       tspg stats <edge-list>\n\
       tspg generate --dataset D1 [--scale tiny|small|medium] [--seed N] [--output FILE]\n\
       tspg query <edge-list> --source S --target T --begin B --end E\n\
                  [--algorithm vug|epdt|epes|eptg] [--dot]\n\
       tspg paths <edge-list> --source S --target T --begin B --end E [--limit N]\n"
        .to_string()
}

/// Splits positional arguments from `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = match name {
                "dot" => "true".to_string(),
                _ => iter.next().cloned().ok_or_else(|| format!("--{name} expects a value"))?,
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse_number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("invalid {what}: {value:?}"))
}

fn load_graph(path: &str) -> Result<TemporalGraph, String> {
    io::read_edge_list_file(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn parse_query(
    flags: &HashMap<String, String>,
) -> Result<(VertexId, VertexId, TimeInterval), String> {
    let source: VertexId = parse_number(required(flags, "source")?, "source vertex")?;
    let target: VertexId = parse_number(required(flags, "target")?, "target vertex")?;
    let begin: i64 = parse_number(required(flags, "begin")?, "interval begin")?;
    let end: i64 = parse_number(required(flags, "end")?, "interval end")?;
    let window = TimeInterval::try_new(begin, end)
        .ok_or_else(|| format!("invalid interval [{begin}, {end}]"))?;
    Ok((source, target, window))
}

fn cmd_stats(args: &[String]) -> Result<String, String> {
    let (positional, _) = parse_flags(args)?;
    let path = positional.first().ok_or("stats requires an edge-list path")?;
    let graph = load_graph(path)?;
    let stats = GraphStats::compute(&graph);
    Ok(format!("{stats}\n"))
}

fn cmd_generate(args: &[String]) -> Result<String, String> {
    let (_, flags) = parse_flags(args)?;
    let dataset = required(&flags, "dataset")?;
    let spec = find(dataset).ok_or_else(|| format!("unknown dataset {dataset:?} (D1..D10)"))?;
    let scale = match flags.get("scale").map(String::as_str).unwrap_or("small") {
        "tiny" => Scale::tiny(),
        "small" => Scale::small(),
        "medium" => Scale::medium(),
        other => return Err(format!("unknown scale {other:?}")),
    };
    let seed: u64 = match flags.get("seed") {
        Some(v) => parse_number(v, "seed")?,
        None => 42,
    };
    let graph = spec.generate(scale, seed);
    let stats = GraphStats::compute(&graph);
    match flags.get("output") {
        Some(path) => {
            io::write_edge_list_file(&graph, path)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!("wrote {} ({stats})\n", path))
        }
        None => {
            let mut buffer = Vec::new();
            io::write_edge_list(&graph, &mut buffer).map_err(|e| e.to_string())?;
            Ok(String::from_utf8_lossy(&buffer).into_owned())
        }
    }
}

fn cmd_query(args: &[String]) -> Result<String, String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional.first().ok_or("query requires an edge-list path")?;
    let graph = load_graph(path)?;
    let (source, target, window) = parse_query(&flags)?;
    let algorithm = flags.get("algorithm").map(String::as_str).unwrap_or("vug");

    let (tspg, summary) = match algorithm {
        "vug" => {
            let result = generate_tspg(&graph, source, target, window);
            let r = &result.report;
            let summary = format!(
                "algorithm=VUG |Gq|={} |Gt|={} |tspG|={} vertices={} time={:?}\n",
                r.quick_edges,
                r.tight_edges,
                r.result_edges,
                r.result_vertices,
                r.total_elapsed()
            );
            (result.tspg, summary)
        }
        "epdt" | "epes" | "eptg" => {
            let ep = match algorithm {
                "epdt" => EpAlgorithm::DtTsg,
                "epes" => EpAlgorithm::EsTsg,
                _ => EpAlgorithm::TgTsg,
            };
            let result = run_ep(ep, &graph, source, target, window, &Budget::unlimited());
            let summary = format!(
                "algorithm={} |UBG|={} |tspG|={} time={:?}\n",
                ep.name(),
                result.upper_bound_edges,
                result.tspg.num_edges(),
                result.total_elapsed()
            );
            (result.tspg, summary)
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };

    let mut out = summary;
    if flags.contains_key("dot") {
        let sub = tspg.to_graph(graph.num_vertices());
        out.push_str(&io::to_dot(&sub, None));
    } else {
        for e in tspg.edges() {
            out.push_str(&format!("{} {} {}\n", e.src, e.dst, e.time));
        }
    }
    Ok(out)
}

fn cmd_paths(args: &[String]) -> Result<String, String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional.first().ok_or("paths requires an edge-list path")?;
    let graph = load_graph(path)?;
    let (source, target, window) = parse_query(&flags)?;
    let limit: u64 = match flags.get("limit") {
        Some(v) => parse_number(v, "limit")?,
        None => 1000,
    };
    let out = enumerate_paths(&graph, source, target, window, &Budget::paths(limit));
    let mut text = format!(
        "{} temporal simple path(s) from {source} to {target} within {window} (status: {:?})\n",
        out.paths.len(),
        out.stats.status
    );
    for p in &out.paths {
        text.push_str(&format!("{p}\n"));
    }
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::figure1_graph;

    fn fixture_file() -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("tspg_cli_fixture_{}_{unique}.txt", std::process::id()));
        io::write_edge_list_file(&figure1_graph(), &path).unwrap();
        path
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&[]).unwrap().contains("usage"));
        assert!(dispatch(&args(&["help"])).unwrap().contains("tspg query"));
        assert!(dispatch(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn stats_command() {
        let path = fixture_file();
        let out = dispatch(&args(&["stats", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("|E|=14"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn query_command_runs_all_algorithms() {
        let path = fixture_file();
        let p = path.to_str().unwrap();
        for alg in ["vug", "epdt", "epes", "eptg"] {
            let out = dispatch(&args(&[
                "query",
                p,
                "--source",
                "0",
                "--target",
                "7",
                "--begin",
                "2",
                "--end",
                "7",
                "--algorithm",
                alg,
            ]))
            .unwrap();
            assert_eq!(out.lines().count(), 5, "summary plus four edges for {alg}: {out}");
        }
        let dot = dispatch(&args(&[
            "query", p, "--source", "0", "--target", "7", "--begin", "2", "--end", "7", "--dot",
        ]))
        .unwrap();
        assert!(dot.contains("digraph"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn paths_command_lists_both_paths() {
        let path = fixture_file();
        let out = dispatch(&args(&[
            "paths",
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "7",
            "--begin",
            "2",
            "--end",
            "7",
        ]))
        .unwrap();
        assert!(out.starts_with("2 temporal simple path(s)"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_command_writes_an_edge_list() {
        let out_path =
            std::env::temp_dir().join(format!("tspg_cli_gen_{}.txt", std::process::id()));
        let out = dispatch(&args(&[
            "generate",
            "--dataset",
            "D1",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--output",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.starts_with("wrote"));
        let reloaded = io::read_edge_list_file(&out_path).unwrap();
        assert!(reloaded.num_edges() > 0);
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn missing_flags_are_reported() {
        let path = fixture_file();
        let err = dispatch(&args(&["query", path.to_str().unwrap(), "--source", "0"])).unwrap_err();
        assert!(err.contains("--target"));
        let err = dispatch(&args(&["generate"])).unwrap_err();
        assert!(err.contains("--dataset"));
        let err = dispatch(&args(&["generate", "--dataset", "D99"])).unwrap_err();
        assert!(err.contains("unknown dataset"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn invalid_interval_is_rejected() {
        let path = fixture_file();
        let err = dispatch(&args(&[
            "query",
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "7",
            "--begin",
            "9",
            "--end",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("invalid interval"));
        std::fs::remove_file(path).ok();
    }
}
