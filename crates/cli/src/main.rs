//! `tspg` — command-line interface for temporal simple path graph generation.
//!
//! ```text
//! tspg stats <edge-list>
//! tspg generate --dataset D1 [--scale tiny|small|medium] [--seed N] [--output FILE]
//! tspg query <edge-list> --source S --target T --begin B --end E
//!            [--algorithm vug|epdt|epes|eptg] [--dot]
//! tspg paths <edge-list> --source S --target T --begin B --end E [--limit N]
//! tspg workload <edge-list> --queries N --theta T [--seed N]
//!               [--fanout-sources S] [--end-spread E] [--begin-jitter J]
//!               [--output FILE]
//! tspg batch <edge-list> <query-file> [--threads N] [--cache-size N]
//!            [--no-cache] [--envelope-factor K] [--no-envelopes]
//!            [--envelope-density-cutoff R] [--no-profile-sharing]
//!            [--profile-density-cutoff R] [--profile-cache-size N] [--quiet]
//! tspg client <query-file> --socket PATH [--ingest FILE] [--stats] [--shutdown]
//!            [--quiet]
//! ```
//!
//! The edge-list format is one `src dst timestamp` triple per line (`#` and
//! `%` start comments), the same format used by SNAP/KONECT dumps. Query
//! files hold one `source target begin end` quadruple per line with the
//! same comment rules.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use tspg_baselines::{run_ep, EpAlgorithm};
use tspg_core::{
    generate_tspg, CacheConfig, PlannerConfig, ProfileCacheConfig, QueryEngine, QuerySpec,
};
use tspg_datasets::{find, format_queries, generate_workload, parse_queries, Scale};
use tspg_enum::{enumerate_paths, Budget};
use tspg_graph::{io, GraphStats, TemporalEdge, TemporalGraph, TimeInterval, VertexId};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `tspg help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn dispatch(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Ok(usage());
    };
    let rest = &args[1..];
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(usage()),
        "stats" => cmd_stats(rest),
        "generate" => cmd_generate(rest),
        "query" => cmd_query(rest),
        "paths" => cmd_paths(rest),
        "workload" => cmd_workload(rest),
        "batch" => cmd_batch(rest),
        "client" => cmd_client(rest),
        other => Err(format!("unknown command {other:?}")),
    }
}

fn usage() -> String {
    "tspg — temporal simple path graph generation (VUG)\n\
     \n\
     usage:\n\
       tspg stats <edge-list>\n\
       tspg generate --dataset D1 [--scale tiny|small|medium] [--seed N] [--output FILE]\n\
       tspg query <edge-list> --source S --target T --begin B --end E\n\
                  [--algorithm vug|epdt|epes|eptg] [--dot]\n\
       tspg paths <edge-list> --source S --target T --begin B --end E [--limit N]\n\
       tspg workload <edge-list> --queries N --theta T [--seed N]\n\
                  [--fanout-sources S] [--end-spread E] [--begin-jitter J] [--output FILE]\n\
       tspg batch <edge-list> <query-file> [--threads N] [--cache-size N]\n\
                  [--no-cache] [--envelope-factor K] [--no-envelopes]\n\
                  [--envelope-density-cutoff R] [--no-profile-sharing]\n\
                  [--profile-density-cutoff R] [--profile-cache-size N] [--quiet]\n\
       tspg client <query-file> --socket PATH [--ingest FILE] [--stats] [--shutdown]\n\
                  [--quiet]\n"
        .to_string()
}

/// Splits positional arguments from `--flag value` pairs.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, HashMap<String, String>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if let Some(name) = arg.strip_prefix("--") {
            let value = match name {
                "dot" | "quiet" | "no-cache" | "no-envelopes" | "no-profile-sharing" | "stats"
                | "shutdown" => "true".to_string(),
                _ => iter.next().cloned().ok_or_else(|| format!("--{name} expects a value"))?,
            };
            flags.insert(name.to_string(), value);
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((positional, flags))
}

fn required<'a>(flags: &'a HashMap<String, String>, name: &str) -> Result<&'a str, String> {
    flags.get(name).map(String::as_str).ok_or_else(|| format!("missing required flag --{name}"))
}

fn parse_number<T: std::str::FromStr>(value: &str, what: &str) -> Result<T, String> {
    value.parse().map_err(|_| format!("invalid {what}: {value:?}"))
}

fn load_graph(path: &str) -> Result<TemporalGraph, String> {
    io::read_edge_list_file(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn parse_query(
    flags: &HashMap<String, String>,
) -> Result<(VertexId, VertexId, TimeInterval), String> {
    let source: VertexId = parse_number(required(flags, "source")?, "source vertex")?;
    let target: VertexId = parse_number(required(flags, "target")?, "target vertex")?;
    let begin: i64 = parse_number(required(flags, "begin")?, "interval begin")?;
    let end: i64 = parse_number(required(flags, "end")?, "interval end")?;
    let window = TimeInterval::try_new(begin, end)
        .ok_or_else(|| format!("invalid interval [{begin}, {end}]"))?;
    Ok((source, target, window))
}

fn cmd_stats(args: &[String]) -> Result<String, String> {
    let (positional, _) = parse_flags(args)?;
    let path = positional.first().ok_or("stats requires an edge-list path")?;
    let graph = load_graph(path)?;
    let stats = GraphStats::compute(&graph);
    Ok(format!("{stats}\n"))
}

fn cmd_generate(args: &[String]) -> Result<String, String> {
    let (_, flags) = parse_flags(args)?;
    let dataset = required(&flags, "dataset")?;
    let spec = find(dataset).ok_or_else(|| format!("unknown dataset {dataset:?} (D1..D10)"))?;
    let scale = match flags.get("scale").map(String::as_str).unwrap_or("small") {
        "tiny" => Scale::tiny(),
        "small" => Scale::small(),
        "medium" => Scale::medium(),
        other => return Err(format!("unknown scale {other:?}")),
    };
    let seed: u64 = match flags.get("seed") {
        Some(v) => parse_number(v, "seed")?,
        None => 42,
    };
    let graph = spec.generate(scale, seed);
    let stats = GraphStats::compute(&graph);
    match flags.get("output") {
        Some(path) => {
            io::write_edge_list_file(&graph, path)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            Ok(format!("wrote {} ({stats})\n", path))
        }
        None => {
            let mut buffer = Vec::new();
            io::write_edge_list(&graph, &mut buffer).map_err(|e| e.to_string())?;
            Ok(String::from_utf8_lossy(&buffer).into_owned())
        }
    }
}

fn cmd_query(args: &[String]) -> Result<String, String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional.first().ok_or("query requires an edge-list path")?;
    let graph = load_graph(path)?;
    let (source, target, window) = parse_query(&flags)?;
    let algorithm = flags.get("algorithm").map(String::as_str).unwrap_or("vug");

    let (tspg, summary) = match algorithm {
        "vug" => {
            let result = generate_tspg(&graph, source, target, window);
            let r = &result.report;
            let summary = format!(
                "algorithm=VUG |Gq|={} |Gt|={} |tspG|={} vertices={} time={:?}\n",
                r.quick_edges,
                r.tight_edges,
                r.result_edges,
                r.result_vertices,
                r.total_elapsed()
            );
            (result.tspg, summary)
        }
        "epdt" | "epes" | "eptg" => {
            let ep = match algorithm {
                "epdt" => EpAlgorithm::DtTsg,
                "epes" => EpAlgorithm::EsTsg,
                _ => EpAlgorithm::TgTsg,
            };
            let result = run_ep(ep, &graph, source, target, window, &Budget::unlimited());
            let summary = format!(
                "algorithm={} |UBG|={} |tspG|={} time={:?}\n",
                ep.name(),
                result.upper_bound_edges,
                result.tspg.num_edges(),
                result.total_elapsed()
            );
            (result.tspg, summary)
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };

    let mut out = summary;
    if flags.contains_key("dot") {
        let sub = tspg.to_graph(graph.num_vertices());
        out.push_str(&io::to_dot(&sub, None));
    } else {
        for e in tspg.edges() {
            out.push_str(&format!("{} {} {}\n", e.src, e.dst, e.time));
        }
    }
    Ok(out)
}

fn cmd_paths(args: &[String]) -> Result<String, String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional.first().ok_or("paths requires an edge-list path")?;
    let graph = load_graph(path)?;
    let (source, target, window) = parse_query(&flags)?;
    let limit: u64 = match flags.get("limit") {
        Some(v) => parse_number(v, "limit")?,
        None => 1000,
    };
    let out = enumerate_paths(&graph, source, target, window, &Budget::paths(limit));
    let mut text = format!(
        "{} temporal simple path(s) from {source} to {target} within {window} (status: {:?})\n",
        out.paths.len(),
        out.stats.status
    );
    for p in &out.paths {
        text.push_str(&format!("{p}\n"));
    }
    Ok(text)
}

fn cmd_workload(args: &[String]) -> Result<String, String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional.first().ok_or("workload requires an edge-list path")?;
    let graph = load_graph(path)?;
    let num_queries: usize = parse_number(required(&flags, "queries")?, "query count")?;
    let theta: i64 = parse_number(required(&flags, "theta")?, "theta")?;
    let seed: u64 = match flags.get("seed") {
        Some(v) => parse_number(v, "seed")?,
        None => 42,
    };
    // `--fanout-sources S` switches to the same-source fan-out generator;
    // `--end-spread` / `--begin-jitter` tune its window variation (the
    // latter produces the mixed-begin bursts profile sharing groups).
    let fanout_sources: Option<usize> = match flags.get("fanout-sources") {
        Some(v) => Some(parse_number(v, "fan-out source count")?),
        None => None,
    };
    let queries = match fanout_sources {
        Some(sources) => {
            let mut cfg = tspg_datasets::FanoutWorkloadConfig::new(num_queries, sources, theta);
            if let Some(v) = flags.get("end-spread") {
                cfg.end_spread = parse_number(v, "end spread")?;
            }
            if let Some(v) = flags.get("begin-jitter") {
                cfg = cfg.with_begin_jitter(parse_number(v, "begin jitter")?);
            }
            tspg_datasets::generate_fanout_workload(&graph, &cfg, seed)
        }
        None => {
            for knob in ["end-spread", "begin-jitter"] {
                if flags.contains_key(knob) {
                    return Err(format!("--{knob} requires --fanout-sources"));
                }
            }
            generate_workload(&graph, num_queries, theta, seed)
        }
    }
    .map_err(|e| format!("cannot generate workload: {e}"))?;
    if queries.len() < num_queries {
        eprintln!(
            "warning: only {} of {num_queries} queries could be generated \
             (graph too sparse for theta={theta})",
            queries.len()
        );
    }
    let text = format_queries(&queries);
    match flags.get("output") {
        Some(out_path) => {
            std::fs::write(out_path, &text).map_err(|e| format!("cannot write {out_path}: {e}"))?;
            Ok(format!(
                "wrote {} ({} queries, theta={theta}, seed={seed})\n",
                out_path,
                queries.len()
            ))
        }
        None => Ok(text),
    }
}

fn cmd_batch(args: &[String]) -> Result<String, String> {
    let (positional, flags) = parse_flags(args)?;
    let graph_path = positional.first().ok_or("batch requires an edge-list path")?;
    let query_path = positional.get(1).ok_or("batch requires a query-file path")?;
    let threads: usize = match flags.get("threads") {
        Some(v) => parse_number(v, "thread count")?,
        None => 1,
    };
    if threads == 0 {
        return Err("--threads must be at least 1".to_string());
    }
    let quiet = flags.contains_key("quiet");
    // `--cache-size 0` and `--no-cache` both disable the result cache.
    let cache_entries: Option<usize> = match flags.get("cache-size") {
        Some(v) => Some(parse_number(v, "cache size")?),
        None => None,
    };
    let no_cache = flags.contains_key("no-cache") || cache_entries == Some(0);
    // Envelope planning: `--no-envelopes` (or a factor of 0) falls back to
    // containment-only sharing; `--envelope-factor K` tunes the cost guard
    // (an envelope may span at most K× its widest member window).
    let envelope_factor: Option<f64> = match flags.get("envelope-factor") {
        Some(v) => {
            let factor: f64 = parse_number(v, "envelope factor")?;
            // Factors in (0, 1) would be silently clamped to 1 by the
            // planner; reject them so a guard sweep never lies.
            if !factor.is_finite() || factor < 0.0 || (factor > 0.0 && factor < 1.0) {
                return Err(format!(
                    "--envelope-factor must be 0 (disable envelopes) or >= 1, got {v}"
                ));
            }
            Some(factor)
        }
        None => None,
    };
    let mut planner = match (flags.contains_key("no-envelopes"), envelope_factor) {
        (true, _) | (false, Some(0.0)) => PlannerConfig::containment_only(),
        (false, Some(factor)) => PlannerConfig::with_span_factor(factor),
        (false, None) => PlannerConfig::default(),
    };
    // Dense-graph heuristic: envelope synthesis turns off once the engine's
    // observed tspG/graph vertex ratio exceeds the cutoff. `>= 1` keeps
    // envelopes on regardless of density (the ratio never exceeds 1).
    if let Some(v) = flags.get("envelope-density-cutoff") {
        let cutoff: f64 = parse_number(v, "envelope density cutoff")?;
        if !cutoff.is_finite() || cutoff < 0.0 {
            return Err(format!("--envelope-density-cutoff must be a ratio >= 0, got {v}"));
        }
        planner = planner.with_density_cutoff(cutoff);
    }
    // Same-source profile sharing is on by default; `--no-profile-sharing`
    // makes every plan unit run its own forward polarity pass.
    if flags.contains_key("no-profile-sharing") {
        planner = planner.without_profile_sharing();
    }
    // Dense-graph heuristic for profiles, mirroring the envelope cutoff:
    // grouping turns off once the observed candidate-subgraph/graph vertex
    // ratio exceeds the cutoff.
    if let Some(v) = flags.get("profile-density-cutoff") {
        let cutoff: f64 = parse_number(v, "profile density cutoff")?;
        if !cutoff.is_finite() || cutoff < 0.0 {
            return Err(format!("--profile-density-cutoff must be a ratio >= 0, got {v}"));
        }
        planner = planner.with_profile_density_cutoff(cutoff);
    }
    // `--profile-cache-size 0` disables cross-batch profile residency
    // (groups still share one arrival profile within a batch).
    let profile_cache_entries: Option<usize> = match flags.get("profile-cache-size") {
        Some(v) => Some(parse_number(v, "profile cache size")?),
        None => None,
    };
    let graph = load_graph(graph_path)?;
    let text = std::fs::read_to_string(query_path)
        .map_err(|e| format!("cannot read {query_path}: {e}"))?;
    let queries: Vec<QuerySpec> = parse_queries(&text).map_err(|e| format!("{query_path}: {e}"))?;
    if queries.is_empty() {
        return Err(format!("{query_path} contains no queries"));
    }

    let mut engine = QueryEngine::new(graph).with_planner(planner);
    engine = match (no_cache, cache_entries) {
        (true, _) => engine.without_cache(),
        (false, Some(entries)) => engine.with_cache(CacheConfig::with_max_entries(entries)),
        (false, None) => engine,
    };
    engine = match profile_cache_entries {
        Some(0) => engine.without_profile_cache(),
        Some(entries) => engine.with_profile_cache(ProfileCacheConfig::with_max_entries(entries)),
        None => engine,
    };
    let started = Instant::now();
    let (results, stats) = engine.run_batch_with_stats(&queries, threads);
    let wall = started.elapsed();

    let mut out = String::new();
    let mut total_edges = 0u64;
    let mut slowest = std::time::Duration::ZERO;
    for (i, (q, r)) in queries.iter().zip(results.iter()).enumerate() {
        // `time=` is the pipeline time in the slot's report. Answers copied
        // from a duplicate, the cache or a covering unit carry the report
        // of the run that produced the result, not this batch's marginal
        // cost — the aggregate line's wall-clock is the spend of this run.
        let elapsed = r.report.total_elapsed();
        slowest = slowest.max(elapsed);
        total_edges += r.report.result_edges as u64;
        if !quiet {
            out.push_str(&format!(
                "#{i} {}->{} {} edges={} vertices={} time={elapsed:?}\n",
                q.source, q.target, q.window, r.report.result_edges, r.report.result_vertices,
            ));
        }
    }
    let qps = if wall.as_secs_f64() > 0.0 {
        results.len() as f64 / wall.as_secs_f64()
    } else {
        f64::INFINITY
    };
    out.push_str(&format!(
        "answered {} queries in {wall:?} ({qps:.0} queries/s, threads={threads}, \
         slowest={slowest:?}, total tspG edges={total_edges})\n",
        results.len(),
    ));
    let cache_cell = match engine.cache_stats() {
        Some(c) => format!(
            "cache_hits={} hit_rate={:.1}% entries={} bytes={}",
            stats.cache_hits,
            100.0 * c.hit_rate(),
            c.entries,
            c.bytes
        ),
        None => "cache=off".to_string(),
    };
    let profile_cell = match engine.profile_cache_stats() {
        Some(p) => format!(
            "profile_cache_hits={} profile_cache_entries={} profile_cache_bytes={}",
            p.hits, p.entries, p.bytes
        ),
        None => "profile_cache=off".to_string(),
    };
    out.push_str(&format!(
        "plan: units={} envelopes={} dedup={} shared={} envelope_answered={} \
         profile_groups={} profile_answered={} degenerate={} {cache_cell} \
         {profile_cell} (pipeline runs {} for {} queries)\n",
        stats.executed_units,
        stats.envelope_units,
        stats.dedup_answered,
        stats.shared_answered,
        stats.envelope_answered,
        stats.profile_groups,
        stats.profile_answered,
        stats.degenerate,
        stats.pipeline_runs(),
        stats.queries,
    ));
    Ok(out)
}

/// Parses an ingest file: one `src dst time` triple per line, `#`/`%`
/// comments, with blank lines separating batches (each batch becomes one
/// `ingest` request and thus one graph epoch).
fn parse_edge_batches(path: &str) -> Result<Vec<Vec<TemporalEdge>>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut batches: Vec<Vec<TemporalEdge>> = Vec::new();
    let mut current: Vec<TemporalEdge> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split(['#', '%']).next().unwrap_or("").trim();
        if line.is_empty() {
            if raw.trim().is_empty() && !current.is_empty() {
                batches.push(std::mem::take(&mut current));
            }
            continue;
        }
        let mut fields = line.split_whitespace();
        let mut field = |what: &str| -> Result<&str, String> {
            fields.next().ok_or_else(|| format!("{path}:{}: missing {what}", lineno + 1))
        };
        let src: VertexId = parse_number(field("source vertex")?, "source vertex")?;
        let dst: VertexId = parse_number(field("target vertex")?, "target vertex")?;
        let time: i64 = parse_number(field("timestamp")?, "timestamp")?;
        if let Some(extra) = fields.next() {
            return Err(format!("{path}:{}: unexpected field {extra:?}", lineno + 1));
        }
        current.push(TemporalEdge::new(src, dst, time));
    }
    if !current.is_empty() {
        batches.push(current);
    }
    Ok(batches)
}

/// Speaks the `tspg-server` wire protocol: connects to the socket, pipelines
/// the whole query file, prints the answers in the same per-query format as
/// `tspg batch` (so the two outputs can be diffed directly, timings aside).
///
/// With `--ingest FILE`, the file's edge batches (one `src dst time` triple
/// per line, blank lines separating batches, `#`/`%` comments allowed) are
/// sent and acknowledged *before* the queries, so every printed answer
/// reflects the mutated graph.
fn cmd_client(args: &[String]) -> Result<String, String> {
    use tspg_server::protocol::{self, Response};

    let (positional, flags) = parse_flags(args)?;
    let query_path = positional.first().ok_or("client requires a query-file path")?;
    let socket = required(&flags, "socket")?;
    let quiet = flags.contains_key("quiet");

    let text = std::fs::read_to_string(query_path)
        .map_err(|e| format!("cannot read {query_path}: {e}"))?;
    let queries: Vec<QuerySpec> = parse_queries(&text).map_err(|e| format!("{query_path}: {e}"))?;
    if queries.is_empty() {
        return Err(format!("{query_path} contains no queries"));
    }

    let stream =
        UnixStream::connect(socket).map_err(|e| format!("cannot connect to {socket}: {e}"))?;
    let mut reader =
        BufReader::new(stream.try_clone().map_err(|e| format!("cannot clone connection: {e}"))?);
    let mut writer = stream;
    let read_line = |reader: &mut BufReader<UnixStream>| -> Result<String, String> {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("read from {socket}: {e}"))?;
        if n == 0 {
            return Err(format!("{socket}: server closed the connection"));
        }
        Ok(line.trim_end().to_string())
    };

    let mut out = String::new();
    if let Some(ingest_path) = flags.get("ingest") {
        let batches = parse_edge_batches(ingest_path)?;
        if batches.is_empty() {
            return Err(format!("{ingest_path} contains no edges"));
        }
        // Apply every mutation batch and wait for its acknowledgement
        // before pipelining the queries: the answers printed below must
        // all reflect the mutated graph.
        for batch in &batches {
            writer
                .write_all(protocol::format_ingest(batch).as_bytes())
                .and_then(|()| writer.write_all(b"\n"))
                .and_then(|()| writer.flush())
                .map_err(|e| format!("write to {socket}: {e}"))?;
            let line = read_line(&mut reader)?;
            match protocol::parse_response(&line).map_err(|e| format!("{socket}: {e}"))? {
                Response::Ingested { epoch, edges } => {
                    out.push_str(&format!("ingested {edges} edges, graph at epoch {epoch}\n"));
                }
                Response::Error { message, .. } => {
                    return Err(format!("{socket}: ingest rejected: {message}"));
                }
                other => return Err(format!("{socket}: unexpected reply {other:?}")),
            }
        }
    }

    // Pipeline the whole file, tagging each request with its file index, so
    // concurrent strangers' queries can share the server's admission batch.
    let started = Instant::now();
    let mut request_lines = String::new();
    for (i, q) in queries.iter().enumerate() {
        request_lines.push_str(&protocol::format_query(i as u64, q));
        request_lines.push('\n');
    }
    writer
        .write_all(request_lines.as_bytes())
        .and_then(|()| writer.flush())
        .map_err(|e| format!("write to {socket}: {e}"))?;

    // Answers stream back tagged; collect by id so the printout is in file
    // order even if the server ever reordered replies.
    let mut answers: Vec<Option<protocol::ResultPayload>> = vec![None; queries.len()];
    let mut errors: Vec<String> = Vec::new();
    for _ in 0..queries.len() {
        let line = read_line(&mut reader)?;
        match protocol::parse_response(&line).map_err(|e| format!("{socket}: {e}"))? {
            Response::Result(payload) => {
                let slot = answers
                    .get_mut(payload.id as usize)
                    .ok_or_else(|| format!("{socket}: unexpected request id {}", payload.id))?;
                *slot = Some(payload);
            }
            Response::Error { id, message } => {
                let tag = id.map_or_else(|| "-".to_string(), |id| id.to_string());
                errors.push(format!("request {tag}: {message}"));
            }
            other => return Err(format!("{socket}: unexpected reply {other:?}")),
        }
    }
    let wall = started.elapsed();

    let mut total_edges = 0u64;
    for (i, q) in queries.iter().enumerate() {
        let Some(payload) = &answers[i] else { continue };
        total_edges += payload.edges.len() as u64;
        if !quiet {
            let elapsed = Duration::from_nanos(payload.ns);
            out.push_str(&format!(
                "#{i} {}->{} {} edges={} vertices={} time={elapsed:?}\n",
                q.source,
                q.target,
                q.window,
                payload.edges.len(),
                payload.vertices,
            ));
        }
    }
    let answered = answers.iter().filter(|a| a.is_some()).count();
    out.push_str(&format!(
        "answered {answered} queries in {wall:?} over {socket} (total tspG edges={total_edges})\n",
    ));
    if !errors.is_empty() {
        return Err(format!(
            "{} of {} requests failed (first: {})",
            errors.len(),
            queries.len(),
            errors[0]
        ));
    }

    if flags.contains_key("stats") {
        writer
            .write_all(b"stats\n")
            .and_then(|()| writer.flush())
            .map_err(|e| format!("write to {socket}: {e}"))?;
        loop {
            let line = read_line(&mut reader)?;
            if line == "end" {
                break;
            }
            out.push_str(&line);
            out.push('\n');
        }
    }

    if flags.contains_key("shutdown") {
        writer
            .write_all(b"shutdown\n")
            .and_then(|()| writer.flush())
            .map_err(|e| format!("write to {socket}: {e}"))?;
        let line = read_line(&mut reader)?;
        if line != "bye" {
            return Err(format!("{socket}: expected bye to shutdown, got {line:?}"));
        }
        out.push_str("server shutting down\n");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::figure1_graph;

    fn fixture_file() -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir()
            .join(format!("tspg_cli_fixture_{}_{unique}.txt", std::process::id()));
        io::write_edge_list_file(&figure1_graph(), &path).unwrap();
        path
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_unknown_commands() {
        assert!(dispatch(&[]).unwrap().contains("usage"));
        assert!(dispatch(&args(&["help"])).unwrap().contains("tspg query"));
        assert!(dispatch(&args(&["frobnicate"])).is_err());
    }

    #[test]
    fn stats_command() {
        let path = fixture_file();
        let out = dispatch(&args(&["stats", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("|E|=14"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn query_command_runs_all_algorithms() {
        let path = fixture_file();
        let p = path.to_str().unwrap();
        for alg in ["vug", "epdt", "epes", "eptg"] {
            let out = dispatch(&args(&[
                "query",
                p,
                "--source",
                "0",
                "--target",
                "7",
                "--begin",
                "2",
                "--end",
                "7",
                "--algorithm",
                alg,
            ]))
            .unwrap();
            assert_eq!(out.lines().count(), 5, "summary plus four edges for {alg}: {out}");
        }
        let dot = dispatch(&args(&[
            "query", p, "--source", "0", "--target", "7", "--begin", "2", "--end", "7", "--dot",
        ]))
        .unwrap();
        assert!(dot.contains("digraph"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn paths_command_lists_both_paths() {
        let path = fixture_file();
        let out = dispatch(&args(&[
            "paths",
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "7",
            "--begin",
            "2",
            "--end",
            "7",
        ]))
        .unwrap();
        assert!(out.starts_with("2 temporal simple path(s)"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn generate_command_writes_an_edge_list() {
        let out_path =
            std::env::temp_dir().join(format!("tspg_cli_gen_{}.txt", std::process::id()));
        let out = dispatch(&args(&[
            "generate",
            "--dataset",
            "D1",
            "--scale",
            "tiny",
            "--seed",
            "7",
            "--output",
            out_path.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.starts_with("wrote"));
        let reloaded = io::read_edge_list_file(&out_path).unwrap();
        assert!(reloaded.num_edges() > 0);
        std::fs::remove_file(out_path).ok();
    }

    #[test]
    fn workload_and_batch_commands_roundtrip() {
        let graph_path = fixture_file();
        let g = graph_path.to_str().unwrap();
        let query_path = std::env::temp_dir().join(format!(
            "tspg_cli_batch_{}_{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        let q = query_path.to_str().unwrap();

        // Generate a query file over the fixture graph...
        let out = dispatch(&args(&[
            "workload",
            g,
            "--queries",
            "8",
            "--theta",
            "6",
            "--seed",
            "3",
            "--output",
            q,
        ]))
        .unwrap();
        assert!(out.starts_with("wrote"), "{out}");

        // ...answer it sequentially and with 2 worker threads...
        let sequential = dispatch(&args(&["batch", g, q])).unwrap();
        assert!(sequential.contains("queries/s"), "{sequential}");
        assert!(sequential.contains("threads=1"), "{sequential}");
        let parallel = dispatch(&args(&["batch", g, q, "--threads", "2"])).unwrap();
        assert!(parallel.contains("threads=2"), "{parallel}");

        // ...and check the per-query lines agree between the two runs
        // (everything except the timings is deterministic).
        let strip = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.starts_with('#'))
                .map(|l| l.split(" time=").next().unwrap().to_string())
                .collect()
        };
        assert_eq!(strip(&sequential), strip(&parallel));
        assert_eq!(strip(&sequential).len(), 8);

        // --quiet keeps only the aggregate and plan-stats lines.
        let quiet = dispatch(&args(&["batch", g, q, "--quiet"])).unwrap();
        assert_eq!(quiet.lines().count(), 2, "{quiet}");
        assert!(quiet.lines().last().unwrap().starts_with("plan:"), "{quiet}");

        std::fs::remove_file(graph_path).ok();
        std::fs::remove_file(query_path).ok();
    }

    #[test]
    fn batch_command_reports_plan_and_cache_stats() {
        let graph_path = fixture_file();
        let g = graph_path.to_str().unwrap();
        let query_path = std::env::temp_dir().join(format!(
            "tspg_cli_planstats_{}_{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        // Two duplicates of a wide query, one contained window, one
        // degenerate query and one independent query.
        std::fs::write(&query_path, "0 7 2 7\n0 7 2 7\n0 7 3 6\n4 4 2 7\n7 0 2 7\n").unwrap();
        let q = query_path.to_str().unwrap();

        let out = dispatch(&args(&["batch", g, q, "--quiet"])).unwrap();
        let plan = out.lines().last().unwrap();
        assert!(plan.contains("units=2"), "{plan}");
        assert!(plan.contains("envelopes=0"), "{plan}");
        assert!(plan.contains("dedup=1"), "{plan}");
        assert!(plan.contains("shared=1"), "{plan}");
        assert!(plan.contains("degenerate=1"), "{plan}");
        assert!(plan.contains("pipeline runs 2 for 5 queries"), "{plan}");
        assert!(plan.contains("cache_hits=0"), "{plan}");

        // --no-cache and --cache-size 0 drop the cache columns.
        for disable in [
            &["batch", g, q, "--quiet", "--no-cache"][..],
            &["batch", g, q, "--quiet", "--cache-size", "0"][..],
        ] {
            let out = dispatch(&args(disable)).unwrap();
            assert!(out.lines().last().unwrap().contains("cache=off"), "{out}");
        }

        // An explicit cache size is accepted; a bad one is rejected.
        let out = dispatch(&args(&["batch", g, q, "--quiet", "--cache-size", "128"])).unwrap();
        assert!(out.lines().last().unwrap().contains("entries="), "{out}");
        let err = dispatch(&args(&["batch", g, q, "--cache-size", "lots"])).unwrap_err();
        assert!(err.contains("cache size"), "{err}");

        std::fs::remove_file(query_path).ok();
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn batch_command_envelope_flags_control_the_planner() {
        let graph_path = fixture_file();
        let g = graph_path.to_str().unwrap();
        let query_path = std::env::temp_dir().join(format!(
            "tspg_cli_envelopes_{}_{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        // Two overlapping (non-nested) windows on the same (s, t).
        std::fs::write(&query_path, "0 7 2 5\n0 7 4 7\n").unwrap();
        let q = query_path.to_str().unwrap();

        // Default planner: one synthesized envelope answers both.
        let out = dispatch(&args(&["batch", g, q, "--quiet"])).unwrap();
        let plan = out.lines().last().unwrap();
        assert!(plan.contains("envelopes=1"), "{plan}");
        assert!(plan.contains("envelope_answered=2"), "{plan}");
        assert!(plan.contains("pipeline runs 1 for 2 queries"), "{plan}");

        // --no-envelopes and --envelope-factor 0 fall back to containment.
        for disable in [
            &["batch", g, q, "--quiet", "--no-envelopes"][..],
            &["batch", g, q, "--quiet", "--envelope-factor", "0"][..],
        ] {
            let out = dispatch(&args(disable)).unwrap();
            let plan = out.lines().last().unwrap();
            assert!(plan.contains("units=2"), "{plan}");
            assert!(plan.contains("envelopes=0"), "{plan}");
            assert!(plan.contains("pipeline runs 2 for 2 queries"), "{plan}");
        }

        // A factor too tight for the merge also keeps the windows apart:
        // the envelope [2, 7] spans 6 > 1.2 × 4.
        let out = dispatch(&args(&["batch", g, q, "--quiet", "--envelope-factor", "1.2"])).unwrap();
        assert!(out.lines().last().unwrap().contains("envelopes=0"), "{out}");

        // Bad factors are rejected, including (0, 1) which the planner
        // would otherwise silently clamp to 1.
        for bad in ["lots", "-1", "inf", "0.5"] {
            let err = dispatch(&args(&["batch", g, q, "--envelope-factor", bad])).unwrap_err();
            assert!(err.contains("envelope"), "{err}");
        }

        std::fs::remove_file(query_path).ok();
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn batch_command_profile_flags_control_the_planner() {
        let graph_path = fixture_file();
        let g = graph_path.to_str().unwrap();
        let query_path = std::env::temp_dir().join(format!(
            "tspg_cli_profile_{}_{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        // A same-source fan-out: three targets, mixed window begins.
        std::fs::write(&query_path, "0 7 2 7\n0 2 3 7\n0 3 2 7\n").unwrap();
        let q = query_path.to_str().unwrap();

        // Default planner: one profile group spanning all three units, and
        // the resident profile cache holding the group's source.
        let out = dispatch(&args(&["batch", g, q, "--quiet"])).unwrap();
        let plan = out.lines().last().unwrap();
        assert!(plan.contains("profile_groups=1"), "{plan}");
        assert!(plan.contains("profile_answered=3"), "{plan}");
        assert!(plan.contains("profile_cache_entries=1"), "{plan}");
        assert!(plan.contains("pipeline runs 3 for 3 queries"), "{plan}");

        // --no-profile-sharing zeroes the overlay counters.
        let out = dispatch(&args(&["batch", g, q, "--quiet", "--no-profile-sharing"])).unwrap();
        let plan = out.lines().last().unwrap();
        assert!(plan.contains("profile_groups=0"), "{plan}");
        assert!(plan.contains("profile_answered=0"), "{plan}");

        // --profile-cache-size 0 turns residency off; a positive size keeps
        // it on; a bad size is rejected.
        let out =
            dispatch(&args(&["batch", g, q, "--quiet", "--profile-cache-size", "0"])).unwrap();
        assert!(out.lines().last().unwrap().contains("profile_cache=off"), "{out}");
        let out =
            dispatch(&args(&["batch", g, q, "--quiet", "--profile-cache-size", "16"])).unwrap();
        assert!(out.lines().last().unwrap().contains("profile_cache_entries=1"), "{out}");
        let err = dispatch(&args(&["batch", g, q, "--profile-cache-size", "lots"])).unwrap_err();
        assert!(err.contains("profile cache size"), "{err}");

        // The density cutoffs are validated.
        let out = dispatch(&args(&["batch", g, q, "--quiet", "--envelope-density-cutoff", "0.5"]))
            .unwrap();
        assert!(out.lines().last().unwrap().starts_with("plan:"), "{out}");
        let out = dispatch(&args(&["batch", g, q, "--quiet", "--profile-density-cutoff", "0.5"]))
            .unwrap();
        assert!(out.lines().last().unwrap().starts_with("plan:"), "{out}");
        for bad in ["nope", "-0.5", "inf"] {
            let err =
                dispatch(&args(&["batch", g, q, "--envelope-density-cutoff", bad])).unwrap_err();
            assert!(err.contains("density"), "{err}");
            let err =
                dispatch(&args(&["batch", g, q, "--profile-density-cutoff", bad])).unwrap_err();
            assert!(err.contains("density"), "{err}");
        }
        // A zero cutoff vetoes grouping outright (any observed density
        // exceeds it once the engine has a signal; the first batch primes
        // it, the second plans without groups).
        let out =
            dispatch(&args(&["batch", g, q, "--quiet", "--profile-density-cutoff", "0"])).unwrap();
        assert!(out.lines().last().unwrap().starts_with("plan:"), "{out}");

        std::fs::remove_file(query_path).ok();
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn workload_command_fanout_knobs_generate_mixed_begin_bursts() {
        let graph_path = fixture_file();
        let g = graph_path.to_str().unwrap();

        // Fan-out generation with jittered begins parses back and contains
        // at least one source with differing begins.
        let out = dispatch(&args(&[
            "workload",
            g,
            "--queries",
            "12",
            "--theta",
            "4",
            "--seed",
            "7",
            "--fanout-sources",
            "2",
            "--begin-jitter",
            "3",
            "--end-spread",
            "2",
        ]))
        .unwrap();
        let queries = tspg_datasets::parse_queries(&out).unwrap();
        assert!(!queries.is_empty());
        let mut begins: HashMap<VertexId, Vec<i64>> = HashMap::new();
        for q in &queries {
            begins.entry(q.source).or_default().push(q.window.begin());
        }
        let mixed = begins.values().any(|b| b.iter().any(|&begin| begin != b[0]));
        assert!(mixed, "begin jitter must mix begins: {out}");

        // The jitter/spread knobs demand the fan-out generator.
        for knob in ["--begin-jitter", "--end-spread"] {
            let err =
                dispatch(&args(&["workload", g, "--queries", "4", "--theta", "4", knob, "2"]))
                    .unwrap_err();
            assert!(err.contains("fanout-sources"), "{err}");
        }
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn workload_command_surfaces_generator_errors() {
        let graph_path = fixture_file();
        let g = graph_path.to_str().unwrap();
        // theta = 0 used to panic inside the RNG; now it is a clean error.
        let err = dispatch(&args(&["workload", g, "--queries", "5", "--theta", "0"])).unwrap_err();
        assert!(err.contains("theta"), "{err}");
        std::fs::remove_file(graph_path).ok();

        // An edgeless graph cannot anchor any window.
        let empty_path =
            std::env::temp_dir().join(format!("tspg_cli_emptyg_{}.txt", std::process::id()));
        std::fs::write(&empty_path, "# no edges\n").unwrap();
        let err = dispatch(&args(&[
            "workload",
            empty_path.to_str().unwrap(),
            "--queries",
            "5",
            "--theta",
            "4",
        ]))
        .unwrap_err();
        assert!(err.contains("no edges"), "{err}");
        std::fs::remove_file(empty_path).ok();
    }

    #[test]
    fn batch_command_rejects_bad_inputs() {
        let graph_path = fixture_file();
        let g = graph_path.to_str().unwrap();
        let err = dispatch(&args(&["batch", g])).unwrap_err();
        assert!(err.contains("query-file"), "{err}");
        let err = dispatch(&args(&["batch", g, "/definitely/not/a/file"])).unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
        let bad_path = std::env::temp_dir().join(format!(
            "tspg_cli_badq_{}_{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::write(&bad_path, "0 7 2 bogus\n").unwrap();
        let err = dispatch(&args(&["batch", g, bad_path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("line 1"), "{err}");
        std::fs::write(&bad_path, "# only comments\n").unwrap();
        let err = dispatch(&args(&["batch", g, bad_path.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("no queries"), "{err}");
        let err = dispatch(&args(&["batch", g, bad_path.to_str().unwrap(), "--threads", "0"]))
            .unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        std::fs::remove_file(bad_path).ok();
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn client_ingest_flag_mutates_the_served_graph_before_querying() {
        use tspg_server::{Server, ServerConfig};

        let tag = format!("{}_{:?}", std::process::id(), std::thread::current().id());
        let query_path = std::env::temp_dir().join(format!("tspg_cli_ingest_q_{tag}.txt"));
        std::fs::write(&query_path, "0 7 2 7\n").unwrap();
        let q = query_path.to_str().unwrap();
        // Two batches (blank-line separated) with comments: two epochs.
        let delta_path = std::env::temp_dir().join(format!("tspg_cli_ingest_d_{tag}.txt"));
        std::fs::write(&delta_path, "# direct edge inside the window\n0 7 5\n\n1 7 6 % late\n")
            .unwrap();
        let d = delta_path.to_str().unwrap();
        let socket = std::env::temp_dir().join(format!("tspg_cli_ingest_{tag}.sock"));
        let handle =
            Server::bind(QueryEngine::new(figure1_graph()), &socket, ServerConfig::default())
                .unwrap();
        let s = socket.to_str().unwrap();

        let before = dispatch(&args(&["client", q, "--socket", s])).unwrap();
        let after = dispatch(&args(&["client", q, "--socket", s, "--ingest", d])).unwrap();
        assert!(after.contains("ingested 1 edges, graph at epoch 1\n"), "{after}");
        assert!(after.contains("ingested 1 edges, graph at epoch 2\n"), "{after}");
        let answer =
            |text: &str| text.lines().find(|l| l.starts_with('#')).map(|l| l.to_string()).unwrap();
        assert_ne!(answer(&before), answer(&after), "ingest must change the answer");

        dispatch(&args(&["client", q, "--socket", s, "--quiet", "--shutdown"])).unwrap();
        handle.join();
        std::fs::remove_file(query_path).ok();
        std::fs::remove_file(delta_path).ok();
    }

    #[test]
    fn client_command_matches_batch_output_and_drives_the_server_verbs() {
        use tspg_server::{Server, ServerConfig};

        let graph_path = fixture_file();
        let g = graph_path.to_str().unwrap();
        let query_path = std::env::temp_dir().join(format!(
            "tspg_cli_client_{}_{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        ));
        // Duplicates, a contained window and a degenerate query so the
        // server's sharing machinery has something to do.
        std::fs::write(&query_path, "0 7 2 7\n0 7 2 7\n0 7 3 6\n4 4 2 7\n7 0 2 7\n").unwrap();
        let q = query_path.to_str().unwrap();

        let socket = std::env::temp_dir().join(format!(
            "tspg_cli_client_{}_{:?}.sock",
            std::process::id(),
            { std::thread::current().id() }
        ));
        let handle = Server::bind(
            QueryEngine::new(figure1_graph()),
            &socket,
            ServerConfig { admit_max: 3, ..ServerConfig::default() },
        )
        .unwrap();
        let s = socket.to_str().unwrap();

        // The per-query lines must match `tspg batch` exactly, timings aside.
        let strip = |text: &str| -> Vec<String> {
            text.lines()
                .filter(|l| l.starts_with('#'))
                .map(|l| l.split(" time=").next().unwrap().to_string())
                .collect()
        };
        let via_server = dispatch(&args(&["client", q, "--socket", s, "--stats"])).unwrap();
        let one_shot = dispatch(&args(&["batch", g, q])).unwrap();
        assert_eq!(strip(&via_server), strip(&one_shot));
        assert_eq!(strip(&via_server).len(), 5);
        assert!(via_server.contains("answered 5 queries"), "{via_server}");
        // --stats appends the server's key=value dump.
        assert!(via_server.contains("dedup_answered=1"), "{via_server}");
        assert!(via_server.contains("\nbatches="), "{via_server}");

        // --quiet keeps the aggregate line only; --shutdown stops the server.
        let quiet =
            dispatch(&args(&["client", q, "--socket", s, "--quiet", "--shutdown"])).unwrap();
        assert_eq!(quiet.lines().count(), 2, "{quiet}");
        assert!(quiet.ends_with("server shutting down\n"), "{quiet}");
        let report = handle.join();
        assert_eq!(report.totals.queries, 10);
        assert!(!socket.exists(), "socket must be unlinked after shutdown");

        // A dead socket is a clean error, not a hang.
        let err = dispatch(&args(&["client", q, "--socket", s])).unwrap_err();
        assert!(err.contains("cannot connect"), "{err}");

        std::fs::remove_file(query_path).ok();
        std::fs::remove_file(graph_path).ok();
    }

    #[test]
    fn missing_flags_are_reported() {
        let path = fixture_file();
        let err = dispatch(&args(&["query", path.to_str().unwrap(), "--source", "0"])).unwrap_err();
        assert!(err.contains("--target"));
        let err = dispatch(&args(&["generate"])).unwrap_err();
        assert!(err.contains("--dataset"));
        let err = dispatch(&args(&["generate", "--dataset", "D99"])).unwrap_err();
        assert!(err.contains("unknown dataset"));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn invalid_interval_is_rejected() {
        let path = fixture_file();
        let err = dispatch(&args(&[
            "query",
            path.to_str().unwrap(),
            "--source",
            "0",
            "--target",
            "7",
            "--begin",
            "9",
            "--end",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("invalid interval"));
        std::fs::remove_file(path).ok();
    }
}
