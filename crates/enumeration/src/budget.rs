//! Search budgets for exponential-time enumeration.
//!
//! The paper caps every baseline run at 12 hours and reports `INF` when the
//! cap is hit (Section VI-A). A [`Budget`] plays the same role at laptop
//! scale: it bounds the number of DFS steps, the number of reported paths
//! and the wall-clock time of a single enumeration, and the resulting
//! [`SearchStatus`] records whether the run completed or was cut off.

use std::time::{Duration, Instant};

/// Resource limits for a single enumeration run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Budget {
    /// Maximum number of DFS edge-expansion steps, if any.
    pub max_steps: Option<u64>,
    /// Maximum number of reported paths, if any.
    pub max_paths: Option<u64>,
    /// Maximum wall-clock time, if any.
    pub max_time: Option<Duration>,
}

impl Budget {
    /// No limits at all. Use only on small graphs or tight upper-bound
    /// graphs; enumeration is exponential in the interval span.
    pub const fn unlimited() -> Self {
        Self { max_steps: None, max_paths: None, max_time: None }
    }

    /// Limits only the number of DFS steps.
    pub const fn steps(max_steps: u64) -> Self {
        Self { max_steps: Some(max_steps), max_paths: None, max_time: None }
    }

    /// Limits only the number of reported paths.
    pub const fn paths(max_paths: u64) -> Self {
        Self { max_steps: None, max_paths: Some(max_paths), max_time: None }
    }

    /// Limits only the wall-clock time.
    pub const fn timeout(max_time: Duration) -> Self {
        Self { max_steps: None, max_paths: None, max_time: Some(max_time) }
    }

    /// Sets the step limit, keeping the other limits.
    pub const fn with_max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets the path limit, keeping the other limits.
    pub const fn with_max_paths(mut self, max_paths: u64) -> Self {
        self.max_paths = Some(max_paths);
        self
    }

    /// Sets the time limit, keeping the other limits.
    pub const fn with_timeout(mut self, max_time: Duration) -> Self {
        self.max_time = Some(max_time);
        self
    }

    /// Starts a stopwatch for this budget.
    pub(crate) fn start(&self) -> BudgetClock {
        BudgetClock { budget: *self, started: Instant::now(), steps: 0, paths: 0 }
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// How an enumeration run terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SearchStatus {
    /// The whole search space was explored.
    Complete,
    /// The step limit was reached; results are a lower bound.
    StepLimit,
    /// The path limit was reached; results are a lower bound.
    PathLimit,
    /// The time limit was reached; results are a lower bound. The harness
    /// reports such runs as `INF`, matching the paper's 12-hour cut-off.
    TimedOut,
}

impl SearchStatus {
    /// `true` if the run explored the full search space.
    pub fn is_complete(&self) -> bool {
        matches!(self, SearchStatus::Complete)
    }
}

/// Mutable run-time state tracking a [`Budget`].
#[derive(Clone, Debug)]
pub(crate) struct BudgetClock {
    budget: Budget,
    started: Instant,
    pub(crate) steps: u64,
    pub(crate) paths: u64,
}

impl BudgetClock {
    /// Records one DFS step and returns the violated limit, if any.
    pub(crate) fn tick_step(&mut self) -> Option<SearchStatus> {
        self.steps += 1;
        if let Some(max) = self.budget.max_steps {
            if self.steps > max {
                return Some(SearchStatus::StepLimit);
            }
        }
        if let Some(max) = self.budget.max_time {
            // Checking the clock on every step would dominate tiny searches;
            // amortise it over 1024 steps.
            if self.steps.is_multiple_of(1024) && self.started.elapsed() > max {
                return Some(SearchStatus::TimedOut);
            }
        }
        None
    }

    /// Records one reported path and returns the violated limit, if any.
    pub(crate) fn tick_path(&mut self) -> Option<SearchStatus> {
        self.paths += 1;
        if let Some(max) = self.budget.max_paths {
            if self.paths >= max {
                return Some(SearchStatus::PathLimit);
            }
        }
        None
    }

    /// Elapsed wall-clock time since the clock started.
    pub(crate) fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let b = Budget::unlimited()
            .with_max_steps(10)
            .with_max_paths(5)
            .with_timeout(Duration::from_secs(1));
        assert_eq!(b.max_steps, Some(10));
        assert_eq!(b.max_paths, Some(5));
        assert_eq!(b.max_time, Some(Duration::from_secs(1)));
        assert_eq!(Budget::default(), Budget::unlimited());
        assert_eq!(Budget::steps(3).max_steps, Some(3));
        assert_eq!(Budget::paths(3).max_paths, Some(3));
        assert_eq!(
            Budget::timeout(Duration::from_millis(2)).max_time,
            Some(Duration::from_millis(2))
        );
    }

    #[test]
    fn step_limit_fires() {
        let mut clock = Budget::steps(2).start();
        assert_eq!(clock.tick_step(), None);
        assert_eq!(clock.tick_step(), None);
        assert_eq!(clock.tick_step(), Some(SearchStatus::StepLimit));
    }

    #[test]
    fn path_limit_fires() {
        let mut clock = Budget::paths(1).start();
        assert_eq!(clock.tick_path(), Some(SearchStatus::PathLimit));
    }

    #[test]
    fn unlimited_never_fires() {
        let mut clock = Budget::unlimited().start();
        for _ in 0..10_000 {
            assert_eq!(clock.tick_step(), None);
        }
        for _ in 0..100 {
            assert_eq!(clock.tick_path(), None);
        }
        assert!(clock.elapsed() >= Duration::ZERO);
    }

    #[test]
    fn status_predicates() {
        assert!(SearchStatus::Complete.is_complete());
        assert!(!SearchStatus::TimedOut.is_complete());
        assert!(!SearchStatus::StepLimit.is_complete());
        assert!(!SearchStatus::PathLimit.is_complete());
    }
}
