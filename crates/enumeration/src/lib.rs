//! # tspg-enum
//!
//! Temporal simple path model and enumeration engine.
//!
//! This crate implements the *naive* side of the paper: explicit enumeration
//! of all strict temporal simple paths between two vertices inside a time
//! interval, and the construction of the temporal simple path graph (`tspG`)
//! by taking the union of the enumerated paths. It is used
//!
//! * as the second stage of the `EP*` baseline algorithms (enumeration on an
//!   upper-bound graph, Section III-A of the paper),
//! * as the ground truth against which the VUG algorithm is tested,
//! * by Exp-6 (EEV vs. enumeration) and Exp-7 (number of paths vs. edges).
//!
//! Because enumeration is exponential in the interval span, every entry point
//! takes a [`Budget`] that bounds the number of search steps, the number of
//! reported paths and the wall-clock time of the run, and reports how the
//! search ended via [`SearchStatus`].
//!
//! ```
//! use tspg_graph::fixtures::{figure1_graph, figure1_query};
//! use tspg_enum::{enumerate_paths, Budget};
//!
//! let g = figure1_graph();
//! let (s, t, w) = figure1_query();
//! let out = enumerate_paths(&g, s, t, w, &Budget::unlimited());
//! assert_eq!(out.paths.len(), 2); // Fig. 1(b): exactly two temporal simple paths
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod enumerate;
pub mod naive;
pub mod path;

pub use budget::{Budget, SearchStatus};
pub use enumerate::{
    count_paths, enumerate_paths, visit_paths, CountOutcome, EnumerationOutcome, SearchStats,
};
pub use naive::{naive_tspg, NaiveTspg};
pub use path::{PathError, TemporalPath};
