//! Naive `tspG` construction by exhaustive path enumeration.
//!
//! This is the reference (ground-truth) method of Section III of the paper:
//! enumerate every temporal simple path from `s` to `t` within the window and
//! union their vertices and edges. Its output is exact whenever the search
//! completed within budget, which the [`NaiveTspg::is_exact`] flag records.

use crate::budget::Budget;
use crate::enumerate::{visit_paths, SearchStats};
use std::collections::HashSet;
use std::ops::ControlFlow;
use std::time::Duration;
use tspg_graph::{EdgeSet, TemporalGraph, TimeInterval, VertexId};

/// The output of the enumeration-based `tspG` construction.
#[derive(Clone, Debug)]
pub struct NaiveTspg {
    /// The temporal simple path graph as an edge set (vertices are induced).
    pub tspg: EdgeSet,
    /// Search counters of the underlying enumeration.
    pub stats: SearchStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// Approximate bytes needed by this method: the result edges plus the
    /// explicit storage of every enumerated path (what a path-enumeration
    /// baseline keeps around while deduplicating, Fig. 7).
    pub approx_bytes: usize,
}

impl NaiveTspg {
    /// `true` if the enumeration explored the whole search space, i.e. the
    /// result is the exact `tspG`.
    pub fn is_exact(&self) -> bool {
        self.stats.status.is_complete()
    }
}

/// Builds the `tspG` of `(s, t, window)` over `graph` by exhaustive
/// enumeration, bounded by `budget`.
///
/// The same routine doubles as the second stage of the `EP*` baselines: pass
/// an upper-bound graph instead of the original graph.
pub fn naive_tspg(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    budget: &Budget,
) -> NaiveTspg {
    let mut edges = HashSet::new();
    let (stats, elapsed) = visit_paths(graph, s, t, window, budget, |p| {
        for e in p.edges() {
            edges.insert(*e);
        }
        ControlFlow::Continue(())
    });
    let tspg = EdgeSet::from_edges(edges);
    let approx_bytes = tspg.approx_bytes() + stats.stored_path_bytes();
    NaiveTspg { tspg, stats, elapsed, approx_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SearchStatus;
    use tspg_graph::fixtures::{figure1_expected_tspg_edges, figure1_graph, figure1_query};
    use tspg_graph::{TemporalGraphBuilder, TimeInterval};

    #[test]
    fn figure1_tspg_matches_paper() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let out = naive_tspg(&g, s, t, w, &Budget::unlimited());
        assert!(out.is_exact());
        let expected = EdgeSet::from_edges(figure1_expected_tspg_edges());
        assert_eq!(out.tspg, expected);
        assert_eq!(out.tspg.num_vertices(), 4); // s, b, c, t
        assert!(out.approx_bytes >= out.tspg.approx_bytes());
    }

    #[test]
    fn unreachable_query_gives_empty_tspg() {
        let g = figure1_graph();
        let out = naive_tspg(&g, 7, 0, TimeInterval::new(2, 7), &Budget::unlimited());
        assert!(out.tspg.is_empty());
        assert!(out.is_exact());
    }

    #[test]
    fn truncated_runs_are_flagged_inexact() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let out = naive_tspg(&g, s, t, w, &Budget::steps(1));
        assert!(!out.is_exact());
        assert_eq!(out.stats.status, SearchStatus::StepLimit);
    }

    #[test]
    fn tspg_is_union_of_paths_not_projection() {
        // Edge 0->3@9 is inside the window but on no s-t temporal simple
        // path ending at t=2 within time, so it must not appear.
        let mut b = TemporalGraphBuilder::new();
        b.add_edge(0, 1, 1).add_edge(1, 2, 2).add_edge(0, 3, 9);
        let g = b.build();
        let out = naive_tspg(&g, 0, 2, TimeInterval::new(1, 10), &Budget::unlimited());
        assert_eq!(out.tspg.num_edges(), 2);
        assert!(!out.tspg.contains_edge(0, 3, 9));
    }

    #[test]
    fn shared_edges_are_reported_once() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let out = naive_tspg(&g, s, t, w, &Budget::unlimited());
        // e(s, b, 2) is shared by both paths but appears once in the set.
        assert_eq!(out.tspg.edges().iter().filter(|e| e.src == 0 && e.dst == 2).count(), 1);
    }
}
