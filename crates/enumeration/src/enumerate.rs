//! Depth-first enumeration of strict temporal simple paths.
//!
//! The enumerator implements the DFS described in Section III-A of the
//! paper: starting from the source it extends a path edge by edge, only
//! following edges whose timestamp is strictly larger than the timestamp of
//! the previous edge and whose head has not been visited yet, and reports a
//! path whenever the target is reached. Its worst-case running time is
//! `O(d^θ · θ · m)`, which is why the faster VUG pipeline exists; here the
//! cost is kept in check by [`Budget`]s.

use crate::budget::{Budget, BudgetClock, SearchStatus};
use crate::path::TemporalPath;
use std::ops::ControlFlow;
use std::time::Duration;
use tspg_graph::{TemporalEdge, TemporalGraph, TimeInterval, Timestamp, VertexId};

/// Counters describing a single enumeration run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchStats {
    /// Number of DFS edge-expansion steps performed.
    pub steps: u64,
    /// Number of temporal simple paths reported.
    pub paths_found: u64,
    /// Total number of edges over all reported paths. Used as a proxy for
    /// the memory a baseline needs to store the enumerated paths explicitly
    /// (Fig. 7).
    pub total_path_edges: u64,
    /// Length of the longest reported path.
    pub max_path_len: usize,
    /// How the run terminated.
    pub status: SearchStatus,
}

impl SearchStats {
    fn new() -> Self {
        Self {
            steps: 0,
            paths_found: 0,
            total_path_edges: 0,
            max_path_len: 0,
            status: SearchStatus::Complete,
        }
    }

    /// Approximate bytes needed to store every reported path explicitly.
    pub fn stored_path_bytes(&self) -> usize {
        self.total_path_edges as usize * std::mem::size_of::<TemporalEdge>()
    }
}

/// Result of [`enumerate_paths`]: the collected paths plus search counters.
#[derive(Clone, Debug)]
pub struct EnumerationOutcome {
    /// Every temporal simple path found (possibly truncated by the budget).
    pub paths: Vec<TemporalPath>,
    /// Search counters.
    pub stats: SearchStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Result of [`count_paths`]: the number of paths plus search counters.
#[derive(Clone, Copy, Debug)]
pub struct CountOutcome {
    /// Number of temporal simple paths found (possibly truncated).
    pub count: u64,
    /// Search counters.
    pub stats: SearchStats,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// Enumerates every strict temporal simple path from `s` to `t` within
/// `window`, invoking `visitor` for each. The visitor can stop the search
/// early by returning [`ControlFlow::Break`].
///
/// When `s == t` there is no temporal simple path with at least one edge
/// (any such path would repeat `s`), so the visitor is never called.
pub fn visit_paths<F>(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    budget: &Budget,
    mut visitor: F,
) -> (SearchStats, Duration)
where
    F: FnMut(&TemporalPath) -> ControlFlow<()>,
{
    let mut stats = SearchStats::new();
    let mut clock = budget.start();
    if s != t
        && (s as usize) < graph.num_vertices()
        && (t as usize) < graph.num_vertices()
        && !graph.is_empty()
    {
        let mut state = DfsState {
            graph,
            target: t,
            window,
            visited: vec![false; graph.num_vertices()],
            path: Vec::new(),
            stats: &mut stats,
            clock: &mut clock,
            visitor: &mut visitor,
        };
        state.visited[s as usize] = true;
        // The first edge may take any timestamp inside the window, which is
        // equivalent to requiring it to be strictly larger than τ_b − 1.
        let _ = state.explore(s, window.begin() - 1);
    }
    stats.steps = clock.steps;
    stats.paths_found = clock.paths;
    (stats, clock.elapsed())
}

/// Enumerates and collects every strict temporal simple path from `s` to `t`
/// within `window`, subject to `budget`.
pub fn enumerate_paths(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    budget: &Budget,
) -> EnumerationOutcome {
    let mut paths = Vec::new();
    let (stats, elapsed) = visit_paths(graph, s, t, window, budget, |p| {
        paths.push(p.clone());
        ControlFlow::Continue(())
    });
    EnumerationOutcome { paths, stats, elapsed }
}

/// Counts the strict temporal simple paths from `s` to `t` within `window`
/// without storing them (Exp-7 needs counts in the millions).
pub fn count_paths(
    graph: &TemporalGraph,
    s: VertexId,
    t: VertexId,
    window: TimeInterval,
    budget: &Budget,
) -> CountOutcome {
    let mut count = 0u64;
    let (stats, elapsed) = visit_paths(graph, s, t, window, budget, |_| {
        count += 1;
        ControlFlow::Continue(())
    });
    CountOutcome { count, stats, elapsed }
}

struct DfsState<'a, F> {
    graph: &'a TemporalGraph,
    target: VertexId,
    window: TimeInterval,
    visited: Vec<bool>,
    path: Vec<TemporalEdge>,
    stats: &'a mut SearchStats,
    clock: &'a mut BudgetClock,
    visitor: &'a mut F,
}

impl<F> DfsState<'_, F>
where
    F: FnMut(&TemporalPath) -> ControlFlow<()>,
{
    /// Extends the current path from `cur`, whose arrival time is `last_time`.
    /// Returns `Break` when the search must stop (budget hit or visitor
    /// abort).
    fn explore(&mut self, cur: VertexId, last_time: Timestamp) -> ControlFlow<()> {
        let lower = TimeInterval::try_new(last_time + 1, self.window.end());
        let Some(lower) = lower else { return ControlFlow::Continue(()) };
        for entry in self.graph.out_neighbors_in(cur, lower) {
            if let Some(status) = self.clock.tick_step() {
                self.stats.status = status;
                return ControlFlow::Break(());
            }
            let next = entry.neighbor;
            if self.visited[next as usize] {
                continue;
            }
            let edge = self.graph.edge(entry.edge);
            self.path.push(edge);
            if next == self.target {
                self.stats.total_path_edges += self.path.len() as u64;
                self.stats.max_path_len = self.stats.max_path_len.max(self.path.len());
                let path = TemporalPath::from_edges_unchecked(self.path.clone());
                let flow = (self.visitor)(&path);
                let budget_hit = self.clock.tick_path();
                self.path.pop();
                if flow.is_break() {
                    return ControlFlow::Break(());
                }
                if let Some(status) = budget_hit {
                    self.stats.status = status;
                    return ControlFlow::Break(());
                }
            } else {
                self.visited[next as usize] = true;
                let flow = self.explore(next, edge.time);
                self.visited[next as usize] = false;
                self.path.pop();
                flow?;
            }
        }
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspg_graph::fixtures::{figure1_graph, figure1_query};
    use tspg_graph::TemporalGraphBuilder;

    #[test]
    fn figure1_has_exactly_two_paths() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let out = enumerate_paths(&g, s, t, w, &Budget::unlimited());
        assert_eq!(out.stats.status, SearchStatus::Complete);
        assert_eq!(out.paths.len(), 2);
        for p in &out.paths {
            p.validate(s, t, w).unwrap();
        }
        let mut lens: Vec<usize> = out.paths.iter().map(|p| p.len()).collect();
        lens.sort_unstable();
        assert_eq!(lens, vec![2, 3]); // ⟨s,b,t⟩ and ⟨s,b,c,t⟩
        assert_eq!(out.stats.paths_found, 2);
        assert_eq!(out.stats.total_path_edges, 5);
        assert_eq!(out.stats.max_path_len, 3);
        assert!(out.stats.stored_path_bytes() > 0);
    }

    #[test]
    fn counting_matches_enumeration() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let c = count_paths(&g, s, t, w, &Budget::unlimited());
        assert_eq!(c.count, 2);
        assert_eq!(c.stats.status, SearchStatus::Complete);
    }

    #[test]
    fn narrower_windows_reduce_paths() {
        let g = figure1_graph();
        let (s, t, _) = figure1_query();
        // Only ⟨s -2-> b -6-> t⟩ fits inside [2, 6].
        let c = count_paths(&g, s, t, TimeInterval::new(2, 6), &Budget::unlimited());
        assert_eq!(c.count, 1);
        // Nothing fits inside [3, 5].
        let c = count_paths(&g, s, t, TimeInterval::new(3, 5), &Budget::unlimited());
        assert_eq!(c.count, 0);
    }

    #[test]
    fn source_equals_target_yields_no_paths() {
        let g = figure1_graph();
        let c = count_paths(&g, 0, 0, TimeInterval::new(2, 7), &Budget::unlimited());
        assert_eq!(c.count, 0);
        assert_eq!(c.stats.status, SearchStatus::Complete);
    }

    #[test]
    fn unreachable_target_yields_no_paths() {
        // a (vertex 1) cannot reach s (vertex 0).
        let g = figure1_graph();
        let c = count_paths(&g, 1, 0, TimeInterval::new(2, 7), &Budget::unlimited());
        assert_eq!(c.count, 0);
    }

    #[test]
    fn out_of_range_vertices_are_handled() {
        let g = figure1_graph();
        let c = count_paths(&g, 0, 99, TimeInterval::new(2, 7), &Budget::unlimited());
        assert_eq!(c.count, 0);
        let c = count_paths(&g, 99, 0, TimeInterval::new(2, 7), &Budget::unlimited());
        assert_eq!(c.count, 0);
    }

    #[test]
    fn strictness_of_temporal_order() {
        // Two consecutive edges with the same timestamp cannot be chained.
        let mut b = TemporalGraphBuilder::new();
        b.add_edge(0, 1, 5).add_edge(1, 2, 5);
        let g = b.build();
        let c = count_paths(&g, 0, 2, TimeInterval::new(1, 10), &Budget::unlimited());
        assert_eq!(c.count, 0);
        // With ascending times the path exists.
        let mut b = TemporalGraphBuilder::new();
        b.add_edge(0, 1, 5).add_edge(1, 2, 6);
        let g = b.build();
        let c = count_paths(&g, 0, 2, TimeInterval::new(1, 10), &Budget::unlimited());
        assert_eq!(c.count, 1);
    }

    #[test]
    fn simplicity_excludes_cycles() {
        // 0 -> 1 -> 2 -> 1 -> 3 revisits vertex 1; only the direct chain
        // 0 -> 1 -> 3 ... does not exist here, so expect exactly the
        // cycle-free path 0 -> 1 -> 2 -> 3.
        let mut b = TemporalGraphBuilder::new();
        b.add_edge(0, 1, 1).add_edge(1, 2, 2).add_edge(2, 1, 3).add_edge(1, 3, 4).add_edge(2, 3, 5);
        let g = b.build();
        let out = enumerate_paths(&g, 0, 3, TimeInterval::new(1, 10), &Budget::unlimited());
        let descriptions: Vec<String> = out.paths.iter().map(|p| p.to_string()).collect();
        assert_eq!(out.paths.len(), 2, "{descriptions:?}");
        for p in &out.paths {
            assert!(p.is_simple());
        }
    }

    #[test]
    fn parallel_edges_produce_distinct_paths() {
        let mut b = TemporalGraphBuilder::new();
        b.add_edge(0, 1, 1).add_edge(0, 1, 2).add_edge(1, 2, 3).add_edge(1, 2, 4);
        let g = b.build();
        let c = count_paths(&g, 0, 2, TimeInterval::new(1, 4), &Budget::unlimited());
        assert_eq!(c.count, 4);
    }

    #[test]
    fn diamond_graph_counts() {
        // Two internally disjoint routes of length 2 plus a direct edge.
        let mut b = TemporalGraphBuilder::new();
        b.add_edge(0, 1, 1).add_edge(1, 3, 2).add_edge(0, 2, 2).add_edge(2, 3, 3).add_edge(0, 3, 5);
        let g = b.build();
        let c = count_paths(&g, 0, 3, TimeInterval::new(1, 5), &Budget::unlimited());
        assert_eq!(c.count, 3);
    }

    #[test]
    fn path_budget_truncates() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let out = enumerate_paths(&g, s, t, w, &Budget::paths(1));
        assert_eq!(out.paths.len(), 1);
        assert_eq!(out.stats.status, SearchStatus::PathLimit);
    }

    #[test]
    fn step_budget_truncates() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let out = enumerate_paths(&g, s, t, w, &Budget::steps(1));
        assert_eq!(out.stats.status, SearchStatus::StepLimit);
        assert!(out.stats.steps <= 2);
    }

    #[test]
    fn visitor_can_abort_early() {
        let g = figure1_graph();
        let (s, t, w) = figure1_query();
        let mut seen = 0;
        let (stats, _) = visit_paths(&g, s, t, w, &Budget::unlimited(), |_| {
            seen += 1;
            ControlFlow::Break(())
        });
        assert_eq!(seen, 1);
        // The abort came from the visitor, not from the budget.
        assert_eq!(stats.status, SearchStatus::Complete);
        assert_eq!(stats.paths_found, 1);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = TemporalGraph::empty(3);
        let c = count_paths(&g, 0, 2, TimeInterval::new(1, 5), &Budget::unlimited());
        assert_eq!(c.count, 0);
    }

    #[test]
    fn interval_length_bounds_path_length() {
        // A long chain with unit timestamps: the window span bounds how far
        // we can get (Remark 1: l ≤ θ).
        let mut b = TemporalGraphBuilder::new();
        for i in 0..10u32 {
            b.add_edge(i, i + 1, i as i64 + 1);
        }
        let g = b.build();
        let out = enumerate_paths(&g, 0, 10, TimeInterval::new(1, 10), &Budget::unlimited());
        assert_eq!(out.paths.len(), 1);
        assert_eq!(out.stats.max_path_len, 10);
        let out = enumerate_paths(&g, 0, 10, TimeInterval::new(1, 9), &Budget::unlimited());
        assert_eq!(out.paths.len(), 0);
    }
}
