//! The temporal (simple) path model of Section II of the paper.

use std::collections::HashSet;
use std::fmt;
use tspg_graph::{TemporalEdge, TimeInterval, Timestamp, VertexId};

/// Why a sequence of edges fails to be a strict temporal simple path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PathError {
    /// The path has no edges.
    Empty,
    /// Consecutive edges do not share the required endpoint
    /// (`dst` of edge `i` must equal `src` of edge `i+1`).
    Disconnected {
        /// Index of the first edge of the offending pair.
        position: usize,
    },
    /// Timestamps are not strictly ascending along the path.
    NotStrictlyAscending {
        /// Index of the first edge of the offending pair.
        position: usize,
    },
    /// A vertex occurs more than once.
    RepeatedVertex {
        /// The repeated vertex.
        vertex: VertexId,
    },
    /// Some edge timestamp lies outside the query interval.
    OutsideInterval {
        /// Index of the offending edge.
        position: usize,
    },
    /// The path does not start at the requested source vertex.
    WrongSource,
    /// The path does not end at the requested target vertex.
    WrongTarget,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Empty => write!(f, "path has no edges"),
            PathError::Disconnected { position } => {
                write!(f, "edges {position} and {} are not incident", position + 1)
            }
            PathError::NotStrictlyAscending { position } => write!(
                f,
                "timestamps of edges {position} and {} are not strictly ascending",
                position + 1
            ),
            PathError::RepeatedVertex { vertex } => {
                write!(f, "vertex {vertex} occurs more than once")
            }
            PathError::OutsideInterval { position } => {
                write!(f, "edge {position} lies outside the query interval")
            }
            PathError::WrongSource => write!(f, "path does not start at the source vertex"),
            PathError::WrongTarget => write!(f, "path does not end at the target vertex"),
        }
    }
}

impl std::error::Error for PathError {}

/// A temporal path: a non-empty sequence of temporal edges where consecutive
/// edges share an endpoint. Construction does not enforce the strict
/// temporal or simple constraints; use [`TemporalPath::validate`] or the
/// specific predicates for that.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TemporalPath {
    edges: Vec<TemporalEdge>,
}

impl TemporalPath {
    /// Creates a path from a sequence of edges.
    ///
    /// Returns [`PathError::Empty`] for an empty sequence and
    /// [`PathError::Disconnected`] if consecutive edges are not incident.
    pub fn new(edges: Vec<TemporalEdge>) -> Result<Self, PathError> {
        if edges.is_empty() {
            return Err(PathError::Empty);
        }
        for (i, pair) in edges.windows(2).enumerate() {
            if pair[0].dst != pair[1].src {
                return Err(PathError::Disconnected { position: i });
            }
        }
        Ok(Self { edges })
    }

    /// Creates a path without checking connectivity. Intended for the
    /// enumeration engine, which builds paths edge by edge and maintains the
    /// invariant itself.
    pub(crate) fn from_edges_unchecked(edges: Vec<TemporalEdge>) -> Self {
        Self { edges }
    }

    /// The edges of the path, in order.
    #[inline]
    pub fn edges(&self) -> &[TemporalEdge] {
        &self.edges
    }

    /// Number of edges (the *length* `l` of the path).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// `true` if the path has no edges (never the case for validated paths).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// First vertex of the path.
    pub fn source(&self) -> VertexId {
        self.edges.first().map(|e| e.src).expect("paths are non-empty")
    }

    /// Last vertex of the path.
    pub fn target(&self) -> VertexId {
        self.edges.last().map(|e| e.dst).expect("paths are non-empty")
    }

    /// Timestamp of the first edge — the *departure time* of the source.
    pub fn departure_time(&self) -> Timestamp {
        self.edges.first().map(|e| e.time).expect("paths are non-empty")
    }

    /// Timestamp of the last edge — the *arrival time* at the target.
    pub fn arrival_time(&self) -> Timestamp {
        self.edges.last().map(|e| e.time).expect("paths are non-empty")
    }

    /// The vertices of the path in visiting order (length `l + 1`).
    pub fn vertices(&self) -> Vec<VertexId> {
        let mut vs = Vec::with_capacity(self.edges.len() + 1);
        vs.push(self.source());
        vs.extend(self.edges.iter().map(|e| e.dst));
        vs
    }

    /// `true` if timestamps are strictly ascending along the path.
    pub fn is_strictly_ascending(&self) -> bool {
        self.edges.windows(2).all(|p| p[0].time < p[1].time)
    }

    /// `true` if no vertex is repeated.
    pub fn is_simple(&self) -> bool {
        let mut seen = HashSet::with_capacity(self.edges.len() + 1);
        seen.insert(self.source());
        self.edges.iter().all(|e| seen.insert(e.dst))
    }

    /// `true` if every edge timestamp lies inside `window`.
    pub fn is_within(&self, window: TimeInterval) -> bool {
        self.edges.iter().all(|e| window.contains(e.time))
    }

    /// Full validation against Definition 1 of the paper: the path must go
    /// from `s` to `t`, lie inside `window`, have strictly ascending
    /// timestamps and repeat no vertex.
    pub fn validate(
        &self,
        s: VertexId,
        t: VertexId,
        window: TimeInterval,
    ) -> Result<(), PathError> {
        if self.source() != s {
            return Err(PathError::WrongSource);
        }
        if self.target() != t {
            return Err(PathError::WrongTarget);
        }
        if let Some(pos) = self.edges.iter().position(|e| !window.contains(e.time)) {
            return Err(PathError::OutsideInterval { position: pos });
        }
        if let Some(pos) = self.edges.windows(2).position(|p| p[0].time >= p[1].time) {
            return Err(PathError::NotStrictlyAscending { position: pos });
        }
        let mut seen = HashSet::with_capacity(self.edges.len() + 1);
        seen.insert(self.source());
        for e in &self.edges {
            if !seen.insert(e.dst) {
                return Err(PathError::RepeatedVertex { vertex: e.dst });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for TemporalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e:?}")?;
        }
        write!(f, "⟩")
    }
}

impl fmt::Display for TemporalPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source())?;
        for e in &self.edges {
            write!(f, " -[{}]-> {}", e.time, e.dst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(u: VertexId, v: VertexId, t: Timestamp) -> TemporalEdge {
        TemporalEdge::new(u, v, t)
    }

    #[test]
    fn valid_path_from_figure1() {
        // ⟨e(s,b,2), e(b,c,3), e(c,t,7)⟩ with s=0, b=2, c=3, t=7.
        let p = TemporalPath::new(vec![edge(0, 2, 2), edge(2, 3, 3), edge(3, 7, 7)]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.source(), 0);
        assert_eq!(p.target(), 7);
        assert_eq!(p.departure_time(), 2);
        assert_eq!(p.arrival_time(), 7);
        assert_eq!(p.vertices(), vec![0, 2, 3, 7]);
        assert!(p.is_strictly_ascending());
        assert!(p.is_simple());
        assert!(p.is_within(TimeInterval::new(2, 7)));
        assert!(p.validate(0, 7, TimeInterval::new(2, 7)).is_ok());
        assert_eq!(p.to_string(), "0 -[2]-> 2 -[3]-> 3 -[7]-> 7");
    }

    #[test]
    fn empty_and_disconnected_paths_are_rejected() {
        assert_eq!(TemporalPath::new(vec![]).unwrap_err(), PathError::Empty);
        let err = TemporalPath::new(vec![edge(0, 1, 1), edge(2, 3, 2)]).unwrap_err();
        assert_eq!(err, PathError::Disconnected { position: 0 });
    }

    #[test]
    fn validation_detects_each_violation() {
        let w = TimeInterval::new(2, 7);
        // wrong source / target
        let p = TemporalPath::new(vec![edge(1, 2, 3)]).unwrap();
        assert_eq!(p.validate(0, 2, w).unwrap_err(), PathError::WrongSource);
        assert_eq!(p.validate(1, 3, w).unwrap_err(), PathError::WrongTarget);
        // outside interval
        let p = TemporalPath::new(vec![edge(0, 1, 9)]).unwrap();
        assert_eq!(p.validate(0, 1, w).unwrap_err(), PathError::OutsideInterval { position: 0 });
        // equal timestamps violate the *strict* constraint
        let p = TemporalPath::new(vec![edge(0, 1, 3), edge(1, 2, 3)]).unwrap();
        assert!(!p.is_strictly_ascending());
        assert_eq!(
            p.validate(0, 2, w).unwrap_err(),
            PathError::NotStrictlyAscending { position: 0 }
        );
        // repeated vertex (a temporal cycle back to 1)
        let p = TemporalPath::new(vec![edge(0, 1, 3), edge(1, 2, 4), edge(2, 1, 5), edge(1, 3, 6)])
            .unwrap();
        assert!(!p.is_simple());
        assert_eq!(p.validate(0, 3, w).unwrap_err(), PathError::RepeatedVertex { vertex: 1 });
    }

    #[test]
    fn single_edge_path() {
        let p = TemporalPath::new(vec![edge(4, 7, 2)]).unwrap();
        assert!(p.validate(4, 7, TimeInterval::new(2, 7)).is_ok());
        assert!(p.is_simple());
        assert!(p.is_strictly_ascending());
        assert_eq!(p.vertices(), vec![4, 7]);
    }

    #[test]
    fn self_loop_is_not_simple() {
        let p = TemporalPath::new(vec![edge(1, 1, 3)]).unwrap();
        assert!(!p.is_simple());
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(PathError::Empty.to_string().contains("no edges"));
        assert!(PathError::RepeatedVertex { vertex: 3 }.to_string().contains("vertex 3"));
        assert!(PathError::NotStrictlyAscending { position: 0 }
            .to_string()
            .contains("strictly ascending"));
        assert!(PathError::Disconnected { position: 1 }.to_string().contains("not incident"));
        assert!(PathError::OutsideInterval { position: 0 }.to_string().contains("interval"));
        assert!(PathError::WrongSource.to_string().contains("source"));
        assert!(PathError::WrongTarget.to_string().contains("target"));
    }
}
