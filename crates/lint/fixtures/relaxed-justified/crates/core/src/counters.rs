//! Seeded `relaxed-justified` violations: an unjustified
//! `Ordering::Relaxed` and an uncommented `unsafe` block.

/// Bumps a counter with no recorded justification (one finding).
pub fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// One `// relaxed:` comment covers the whole function (no findings).
pub fn bump_justified(counter: &AtomicU64, other: &AtomicU64) {
    // relaxed: pure statistics — no reader orders other memory against these
    counter.fetch_add(1, Ordering::Relaxed);
    other.fetch_add(1, Ordering::Relaxed);
}

/// An `unsafe` block without a SAFETY comment (one finding).
pub fn read_raw(ptr: *const u8) -> u8 {
    unsafe { ptr.read() }
}

/// The documented form (no finding).
pub fn read_raw_documented(ptr: *const u8) -> u8 {
    // SAFETY: ptr is non-null and aligned by the caller's contract
    unsafe { ptr.read() }
}
