//! Seeded `condvar-wait-loop` violation: a bare `Condvar::wait` guarded
//! only by an `if`, so a spurious wakeup slips past the predicate. The CI
//! smoke step asserts `tspg-lint` exits nonzero on this tree.

pub struct Admission;

impl Admission {
    /// Finding: `if` is not a re-check loop — a spurious wakeup returns
    /// with the queue still empty.
    pub fn park(&self) {
        let mut queue = self.admission.lock().unwrap();
        if queue.is_empty() {
            queue = self.admit_cv.wait(queue).unwrap();
        }
        drop(queue);
    }

    /// Clean: the canonical predicate re-check loop.
    pub fn park_correctly(&self) {
        let mut queue = self.admission.lock().unwrap();
        while queue.is_empty() {
            queue = self.admit_cv.wait(queue).unwrap();
        }
        drop(queue);
    }

    /// Clean: `wait_timeout` re-armed from an explicit `loop`.
    pub fn drain(&self) {
        let mut queue = self.admission.lock().unwrap();
        loop {
            if !queue.is_empty() {
                break;
            }
            let (q, timeout) = self.admit_cv.wait_timeout(queue, WINDOW).unwrap();
            queue = q;
            if timeout.timed_out() {
                break;
            }
        }
        drop(queue);
    }

    /// Clean: `wait_while` owns the loop itself (different method name).
    pub fn park_while(&self) {
        let queue = self.admission.lock().unwrap();
        let queue = self.admit_cv.wait_while(queue, |q| q.is_empty()).unwrap();
        drop(queue);
    }

    /// A deliberate, justified exception: suppressed, must NOT be
    /// reported.
    pub fn flush_once(&self) {
        let queue = self.admission.lock().unwrap();
        // tspg-lint: allow(condvar-wait-loop) — single-shot shutdown barrier; the caller tolerates spurious returns
        let _ = self.admit_cv.wait(queue);
    }
}
