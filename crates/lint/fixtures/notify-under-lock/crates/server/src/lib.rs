//! Seeded `notify-under-lock` violation: the exact lost-wakeup shape —
//! the guard dies with the `if let` block, then the notify runs with no
//! lock held.

/// Enqueue-and-wake with the notify outside the guard (one finding).
pub fn enqueue_bug(shared: &Shared, pending: Pending) {
    if let Ok(mut queue) = shared.admission.lock() {
        queue.push_back(pending);
    }
    shared.admit_cv.notify_all();
}

/// The corrected shape: notify while the guard is live (no finding).
pub fn enqueue_fixed(shared: &Shared, pending: Pending) {
    let mut queue = shared.admission.lock().unwrap_or_else(recover);
    queue.push_back(pending);
    shared.admit_cv.notify_all();
}
