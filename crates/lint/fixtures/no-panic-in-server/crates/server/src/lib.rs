//! Seeded `no-panic-in-server` violations: panicking constructs in
//! non-test serving code.

/// Unwraps and panics in serving code (three findings expected).
pub fn handle(shared: &Shared) {
    let _guard = shared.totals.lock().unwrap();
    let _count = shared.pending.front().expect("queue is never empty");
    panic!("unreachable request state");
}

/// Explicit poison recovery: the sanctioned pattern (no finding).
pub fn handle_fixed(shared: &Shared) {
    let _guard = shared.totals.lock().unwrap_or_else(PoisonError::into_inner);
}

#[cfg(test)]
mod tests {
    /// Tests may unwrap freely (no finding).
    #[test]
    fn asserts_hard() {
        helper().unwrap();
    }
}
