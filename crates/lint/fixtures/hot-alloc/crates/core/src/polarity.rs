//! Seeded `hot-alloc` violation: an allocating constructor inside a
//! `*_into` hot-path function. The CI smoke step asserts `tspg-lint`
//! exits nonzero on this tree.

/// Hot-path function that illegally allocates (two findings expected).
pub fn compute_polarity_into(out: &mut Vec<u32>) {
    let scratch = Vec::new();
    out.extend(scratch.iter().map(|x: &u32| *x));
    let _owned: Vec<u32> = out.iter().copied().collect();
}

/// A deliberate, justified exception: suppressed, must NOT be reported.
pub fn seed_buffers_into(out: &mut Vec<Vec<u32>>) {
    // tspg-lint: allow(hot-alloc) — one-time warmup allocation, not steady state
    out.push(Vec::with_capacity(16));
}

/// Not a hot-path name: free to allocate (no finding).
pub fn build_table() -> Vec<u32> {
    vec![1, 2, 3]
}
