//! Seeded `lock-order` violations: lock pairs taken in opposite orders,
//! directly and through a call. The CI smoke step asserts `tspg-lint`
//! exits nonzero on this tree.

pub struct Shared;

impl Shared {
    /// Findings 1 + 2 (one per acquisition site): `submit` takes
    /// `alpha -> beta`, `drain` takes `beta -> alpha`.
    pub fn submit(&self) {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        drop(b);
        drop(a);
    }

    pub fn drain(&self) {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        drop(a);
        drop(b);
    }

    /// Findings 3 + 4: the inversion hides behind a call — `outer` holds
    /// `gamma` while `take_delta` acquires `delta`; `rev` takes the same
    /// pair in the opposite order directly.
    pub fn outer(&self) {
        let g = self.gamma.lock().unwrap();
        self.take_delta();
        drop(g);
    }

    fn take_delta(&self) {
        let d = self.delta.lock().unwrap();
        drop(d);
    }

    pub fn rev(&self) {
        let d = self.delta.lock().unwrap();
        let g = self.gamma.lock().unwrap();
        drop(g);
        drop(d);
    }

    /// Clean: both paths agree on `mu -> nu` (no finding).
    pub fn tick(&self) {
        let m = self.mu.lock().unwrap();
        let n = self.nu.lock().unwrap();
        drop(n);
        drop(m);
    }

    pub fn tock(&self) {
        let m = self.mu.lock().unwrap();
        let n = self.nu.lock().unwrap();
        drop(n);
        drop(m);
    }

    /// A deliberate, justified exception: two *different* shard mutexes
    /// share the receiver name `shard`, so the analyzer sees a re-entrant
    /// self-edge — suppressed, must NOT be reported.
    pub fn rebalance(&self, from: usize, to: usize) {
        let src = self.shard(from).lock().unwrap();
        // tspg-lint: allow(lock-order) — name-granularity artifact: `from != to` is checked by the caller, so these are distinct shard mutexes
        let dst = self.shard(to).lock().unwrap();
        drop(dst);
        drop(src);
    }
}
