//! Seeded `hot-alloc-transitive` violations: hot-path functions reaching
//! allocating helpers through the call graph. The CI smoke step asserts
//! `tspg-lint` exits nonzero on this tree.

/// Finding 1: a two-hop free-function chain. The diagnostic must anchor
/// at the `expand` call below and name the full chain
/// `fill_into -> expand -> grow`.
pub fn fill_into(out: &mut Vec<u32>) {
    expand(out);
}

fn expand(out: &mut Vec<u32>) {
    grow(out);
}

fn grow(out: &mut Vec<u32>) {
    let scratch: Vec<u32> = Vec::new();
    out.extend(scratch);
}

pub struct Candidate;

impl Candidate {
    /// Finding 2: a method-resolution chain inside one impl block.
    pub fn pack_scratch(&self, out: &mut Vec<u32>) {
        self.reserve(out);
    }

    fn reserve(&self, out: &mut Vec<u32>) {
        let staged = vec![0u32; 8];
        out.extend(staged);
    }
}

/// Clean: the helper touches only its argument in place (no finding).
pub fn clamp_into(out: &mut Vec<u32>) {
    tidy(out);
}

fn tidy(out: &mut Vec<u32>) {
    out.sort_unstable();
    out.dedup();
}

/// A deliberate, justified exception: suppressed, must NOT be reported.
pub fn seed_scratch(out: &mut Vec<Vec<u32>>) {
    // tspg-lint: allow(hot-alloc-transitive) — one-time warmup allocation, not steady state
    warm(out);
}

fn warm(out: &mut Vec<Vec<u32>>) {
    out.push(Vec::with_capacity(16));
}
