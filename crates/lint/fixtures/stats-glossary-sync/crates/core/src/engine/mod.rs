//! Seeded `stats-glossary-sync` violation: `key_values` emits a counter
//! key the fixture README never documents.

impl BatchStats {
    /// Counter pairs for the `stats` verb; `ghost_counter` is missing
    /// from README.md (one finding).
    pub fn key_values(&self) -> Vec<(&'static str, u64)> {
        vec![("queries", self.queries), ("ghost_counter", self.ghost)]
    }
}
