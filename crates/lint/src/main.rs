//! CLI for `tspg-lint`.
//!
//! ```text
//! cargo run -p tspg-lint -- [--root PATH] [--rule NAME]... [--deny-all]
//!                           [--format text|json] [--write-baseline]
//!                           [--no-baseline] [--list-rules]
//! ```
//!
//! Exits 0 when the tree is clean (or every finding is absorbed by the
//! committed baseline), 1 when new deny-level findings survive, 2 on
//! usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tspg_lint::baseline::Baseline;
use tspg_lint::diagnostics::render_json;
use tspg_lint::rules;

const USAGE: &str = "\
tspg-lint: repo-invariant static analyzer for the tspg workspace

USAGE:
    cargo run -p tspg-lint -- [OPTIONS]

OPTIONS:
    --root PATH        Lint root (default: current directory)
    --rule NAME        Run only this rule; repeatable (default: all rules)
    --deny-all         Treat every rule as deny-level (all current rules
                       already are; this pins the CI gate against future
                       warn-level rules)
    --format FORMAT    Output format: `text` (default) or `json`
                       (machine-readable, schema tspg-lint-diagnostics/1)
    --write-baseline   Snapshot the current findings into
                       <root>/lint-baseline.json and exit 0
    --no-baseline      Ignore <root>/lint-baseline.json even if present
    --list-rules       Print the rule catalogue and exit
    -h, --help         Print this help

Findings can be suppressed with a `// tspg-lint: allow(<rule>, ...)`
comment on the offending line or the line above it. Findings recorded in
<root>/lint-baseline.json (matched on path + rule + message) are reported
as baselined and do not fail the run.";

/// Name of the committed baseline file, relative to the lint root.
const BASELINE_FILE: &str = "lint-baseline.json";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

struct Options {
    root: PathBuf,
    rule_filter: Vec<String>,
    deny_all: bool,
    list_rules: bool,
    format: Format,
    write_baseline: bool,
    no_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        rule_filter: Vec::new(),
        deny_all: false,
        list_rules: false,
        format: Format::Text,
        write_baseline: false,
        no_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root requires a path")?;
                opts.root = PathBuf::from(value);
            }
            "--rule" => {
                let value = args.next().ok_or("--rule requires a rule name")?;
                let known = rules::all().iter().any(|r| r.name() == value);
                if !known {
                    return Err(format!("unknown rule `{value}` (see --list-rules)"));
                }
                opts.rule_filter.push(value);
            }
            "--format" => {
                let value = args.next().ok_or("--format requires `text` or `json`")?;
                opts.format = match value.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                };
            }
            "--write-baseline" => opts.write_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--deny-all" => opts.deny_all = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("tspg-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::all() {
            println!("{:<22} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let report = match tspg_lint::lint_root(&opts.root, &opts.rule_filter) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("tspg-lint: failed to read {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    // Every registered rule is deny-level, so --deny-all changes nothing
    // today; it exists so the CI invocation stays correct if a warn-level
    // rule is ever added.
    let _ = opts.deny_all;

    let baseline_path = opts.root.join(BASELINE_FILE);

    if opts.write_baseline {
        let baseline = Baseline::from_diagnostics(&report.diagnostics);
        if let Err(err) = std::fs::write(&baseline_path, baseline.render()) {
            eprintln!("tspg-lint: failed to write {}: {err}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "tspg-lint: wrote {} finding(s) to {}",
            baseline.entries.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = if !opts.no_baseline && baseline_path.is_file() {
        match std::fs::read_to_string(&baseline_path)
            .map_err(|e| e.to_string())
            .and_then(|t| Baseline::parse(&t))
        {
            Ok(baseline) => Some(baseline),
            Err(err) => {
                eprintln!("tspg-lint: invalid {}: {err}", baseline_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        None
    };

    let (baselined, fresh): (Vec<_>, Vec<_>) = report
        .diagnostics
        .iter()
        .cloned()
        .partition(|d| baseline.as_ref().is_some_and(|b| b.contains(d)));

    let files_checked = report.context.files.len();
    if opts.format == Format::Json {
        print!(
            "{}",
            render_json(&fresh, &opts.root.display().to_string(), files_checked, baselined.len())
        );
        return if fresh.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(1) };
    }

    let baselined_note = if baselined.is_empty() {
        String::new()
    } else {
        format!(", {} baselined finding(s) tolerated", baselined.len())
    };
    if fresh.is_empty() {
        println!(
            "tspg-lint: clean ({} files checked under {}{baselined_note})",
            files_checked,
            opts.root.display()
        );
        ExitCode::SUCCESS
    } else {
        for diag in &fresh {
            let source = report.context.file(&diag.path).map(|f| f.text.as_str()).unwrap_or("");
            print!("{}", diag.render(source));
        }
        println!(
            "tspg-lint: {} finding(s) in {} ({} files checked{baselined_note})",
            fresh.len(),
            opts.root.display(),
            files_checked
        );
        ExitCode::from(1)
    }
}
