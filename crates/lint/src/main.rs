//! CLI for `tspg-lint`.
//!
//! ```text
//! cargo run -p tspg-lint -- [--root PATH] [--rule NAME]... [--deny-all] [--list-rules]
//! ```
//!
//! Exits 0 when the tree is clean, 1 when deny-level findings survive
//! suppression filtering, 2 on usage or I/O errors.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tspg_lint::rules;

const USAGE: &str = "\
tspg-lint: repo-invariant static analyzer for the tspg workspace

USAGE:
    cargo run -p tspg-lint -- [OPTIONS]

OPTIONS:
    --root PATH     Lint root (default: current directory)
    --rule NAME     Run only this rule; repeatable (default: all rules)
    --deny-all      Treat every rule as deny-level (all current rules
                    already are; this pins the CI gate against future
                    warn-level rules)
    --list-rules    Print the rule catalogue and exit
    -h, --help      Print this help

Findings can be suppressed with a `// tspg-lint: allow(<rule>, ...)`
comment on the offending line or the line above it.";

struct Options {
    root: PathBuf,
    rule_filter: Vec<String>,
    deny_all: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        rule_filter: Vec::new(),
        deny_all: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root requires a path")?;
                opts.root = PathBuf::from(value);
            }
            "--rule" => {
                let value = args.next().ok_or("--rule requires a rule name")?;
                let known = rules::all().iter().any(|r| r.name() == value);
                if !known {
                    return Err(format!("unknown rule `{value}` (see --list-rules)"));
                }
                opts.rule_filter.push(value);
            }
            "--deny-all" => opts.deny_all = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("tspg-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::all() {
            println!("{:<22} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    let report = match tspg_lint::lint_root(&opts.root, &opts.rule_filter) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("tspg-lint: failed to read {}: {err}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    // Every registered rule is deny-level, so --deny-all changes nothing
    // today; it exists so the CI invocation stays correct if a warn-level
    // rule is ever added.
    let _ = opts.deny_all;

    if report.diagnostics.is_empty() {
        println!(
            "tspg-lint: clean ({} files checked under {})",
            report.context.files.len(),
            opts.root.display()
        );
        ExitCode::SUCCESS
    } else {
        print!("{}", report.render());
        println!(
            "tspg-lint: {} finding(s) in {} ({} files checked)",
            report.diagnostics.len(),
            opts.root.display(),
            report.context.files.len()
        );
        ExitCode::from(1)
    }
}
