//! `hot-alloc`: no allocating calls inside hot-path functions.
//!
//! The `_into` / `_scratch` naming convention in `tspg-core` marks
//! functions on the steady-state query path: they must write into
//! caller-provided buffers and never allocate (the zero-steady-state-
//! allocation discipline from the scratch-buffer refactor). This rule
//! flags the allocating constructs a lexical scan can see — container
//! constructors, `Box`/`Rc`/`Arc::new`, `vec!`/`format!`, and owning
//! conversion methods like `.clone()` / `.to_vec()` / `.collect()`.

use crate::diagnostics::Diagnostic;
use crate::tokens::TokenKind;
use crate::{LintContext, SourceFile};

use super::Rule;

/// Container and smart-pointer types whose associated constructors
/// allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Box", "Rc", "Arc", "String",
];

/// Associated functions on [`ALLOC_TYPES`] that allocate.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_iter"];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Methods that produce a fresh owned allocation from a borrow.
const ALLOC_METHODS: &[&str] = &["clone", "to_vec", "to_owned", "to_string", "collect"];

/// See the module docs.
pub struct HotAlloc;

/// True for function names the hot-path naming convention covers.
pub(crate) fn is_hot_name(name: &str) -> bool {
    name.ends_with("_into")
        || name.ends_with("_scratch")
        || name.contains("_into_")
        || name.contains("_scratch_")
}

impl Rule for HotAlloc {
    fn name(&self) -> &'static str {
        "hot-alloc"
    }

    fn description(&self) -> &'static str {
        "allocating call inside a `*_into`/`*_scratch` hot-path function in tspg-core"
    }

    fn check(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ctx.files {
            if !file.rel_path.starts_with("crates/core/src/") {
                continue;
            }
            scan_file(file, &mut out);
        }
        out
    }
}

fn scan_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for (j, tok) in code.iter().enumerate() {
        let Some(what) = match_alloc(file, j) else { continue };
        if file.in_test(j) {
            continue;
        }
        // Attribute the hit to the innermost enclosing function so a
        // non-hot helper nested inside a hot function is not blamed on
        // its parent.
        let Some(enclosing) = file.enclosing_fn(j) else { continue };
        if !is_hot_name(&enclosing.name) {
            continue;
        }
        out.push(file.diag(
            tok,
            "hot-alloc",
            format!(
                "allocating call `{what}` in hot-path function `{}` \
                 (zero-steady-state-allocation discipline: write into \
                 caller-provided scratch instead)",
                enclosing.name
            ),
        ));
    }
}

/// If the code tokens starting at `j` form an allocating construct,
/// return its display form. (Shared with `hot-alloc-transitive`, which
/// propagates the same allocation predicate through the call graph.)
pub(crate) fn match_alloc(file: &SourceFile, j: usize) -> Option<String> {
    let code = &file.code;
    let tok = &code[j];
    if tok.kind == TokenKind::Ident {
        // `Vec::new(`-style constructor paths.
        if ALLOC_TYPES.contains(&tok.text.as_str())
            && code.get(j + 1).is_some_and(|t| t.is_punct("::"))
            && code.get(j + 2).is_some_and(|t| {
                t.kind == TokenKind::Ident && ALLOC_CTORS.contains(&t.text.as_str())
            })
        {
            return Some(format!("{}::{}", tok.text, code[j + 2].text));
        }
        // `vec![…]` / `format!(…)`.
        if ALLOC_MACROS.contains(&tok.text.as_str())
            && code.get(j + 1).is_some_and(|t| t.is_punct("!"))
        {
            return Some(format!("{}!", tok.text));
        }
    }
    // `.clone()` / `.collect()` / `.collect::<…>()` method calls.
    if tok.is_punct(".")
        && code
            .get(j + 1)
            .is_some_and(|t| t.kind == TokenKind::Ident && ALLOC_METHODS.contains(&t.text.as_str()))
        && code.get(j + 2).is_some_and(|t| t.is_punct("(") || t.is_punct("::"))
    {
        return Some(format!(".{}()", code[j + 1].text));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn findings(src: &str) -> Vec<String> {
        let file = SourceFile::new("crates/core/src/x.rs".into(), src.into());
        let mut out = Vec::new();
        scan_file(&file, &mut out);
        out.into_iter().map(|d| d.message).collect()
    }

    #[test]
    fn flags_constructors_macros_and_methods_in_hot_fns() {
        let msgs = findings(
            "fn fill_into(out: &mut Vec<u32>) {\n\
                 let v = Vec::new();\n\
                 let s = format!(\"x\");\n\
                 let c = out.clone();\n\
                 let t: Vec<u32> = out.iter().copied().collect();\n\
             }\n",
        );
        assert_eq!(msgs.len(), 4, "{msgs:?}");
        assert!(msgs[0].contains("Vec::new"));
        assert!(msgs[1].contains("format!"));
        assert!(msgs[2].contains(".clone()"));
        assert!(msgs[3].contains(".collect()"));
    }

    #[test]
    fn turbofish_collect_is_flagged() {
        let msgs = findings("fn drain_scratch(xs: &[u32]) { xs.iter().collect::<Vec<_>>(); }\n");
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains(".collect()"));
    }

    #[test]
    fn non_hot_functions_and_tests_are_ignored() {
        let msgs = findings(
            "fn build() -> Vec<u32> { Vec::new() }\n\
             #[cfg(test)]\nmod tests {\n    fn helper_into() { let v = Vec::new(); }\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn nested_non_hot_helper_is_not_blamed_on_hot_parent() {
        let msgs = findings(
            "fn fill_into() {\n    fn cold_helper() { let v = Vec::new(); }\n    cold_helper();\n}\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn strings_and_comments_do_not_trip_the_rule() {
        let msgs = findings(
            "fn fill_into() {\n\
                 // Vec::new() would allocate here\n\
                 let s = \"Vec::new()\";\n\
             }\n",
        );
        assert!(msgs.is_empty(), "{msgs:?}");
    }

    #[test]
    fn files_outside_core_are_out_of_scope() {
        let file = SourceFile::new(
            "crates/server/src/x.rs".into(),
            "fn fill_into() { let v = Vec::new(); }\n".into(),
        );
        let ctx = crate::LintContext::from_parts(std::path::PathBuf::from("."), vec![file], None);
        assert!(HotAlloc.check(&ctx).is_empty());
    }
}
