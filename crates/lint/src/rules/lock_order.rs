//! `lock-order`: the global lock-acquisition-order graph must be acyclic.
//!
//! Built on the pass-1 lock graph (see [`crate::lockgraph`]): every
//! held→acquired pair across `tspg-server` and `tspg-core::engine` —
//! direct nesting and call-mediated, via the call graph — forms an order
//! edge. A cycle means two code paths take the same pair of locks in
//! opposite orders, which is a static deadlock candidate: each path can
//! hold one lock and block forever on the other. Re-entrant acquisition
//! of the same lock is the degenerate cycle (std `Mutex` is not
//! re-entrant) and is reported too.
//!
//! Every edge participating in a cycle is reported at its acquisition
//! site, with the held lock's site in the message — both halves of the
//! inversion get a diagnostic, so the fix (or the pragma stating why the
//! locks can never contend) lands next to each acquisition involved.

use crate::diagnostics::Diagnostic;
use crate::lockgraph::LockGraph;
use crate::LintContext;

use super::Rule;

/// See the module docs.
pub struct LockOrder;

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "lock-acquisition-order cycle (static deadlock candidate) in server/engine code"
    }

    fn check(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let graph = LockGraph::build(ctx);
        let mut out = Vec::new();
        for idx in graph.cycle_edges() {
            let edge = &graph.edges[idx];
            let file = &ctx.files[edge.anchor_file];
            let anchor = &file.code[edge.anchor_idx];
            let via = if edge.via.is_empty() {
                String::new()
            } else {
                format!(" via `{}`", edge.via.join(" -> "))
            };
            out.push(file.diag(
                anchor,
                "lock-order",
                format!(
                    "lock `{}` acquired{via} while `{}` is held (acquired at {}:{}:{}) — \
                     acquisition-order cycle `{}`: static deadlock candidate",
                    edge.acquired.lock,
                    edge.held.lock,
                    edge.held.path,
                    edge.held.line,
                    edge.held.col,
                    graph.cycle_path(edge).join(" -> "),
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;
    use std::path::PathBuf;

    fn check(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::new((*p).into(), (*s).into())).collect();
        let ctx = LintContext::from_parts(PathBuf::from("."), files, None);
        LockOrder.check(&ctx)
    }

    #[test]
    fn consistent_order_is_clean() {
        let out = check(&[(
            "crates/server/src/lib.rs",
            "fn f(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
             fn g(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn inverted_orders_report_both_sites() {
        let out = check(&[(
            "crates/server/src/lib.rs",
            "fn f(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
             fn g(&self) { let b = self.beta.lock().unwrap(); let a = self.alpha.lock().unwrap(); }\n",
        )]);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].message.contains("cycle `alpha -> beta -> alpha`"), "{}", out[0].message);
        assert!(out[0].message.contains("crates/server/src/lib.rs:1:"), "{}", out[0].message);
        assert!(out[1].message.contains("cycle `beta -> alpha -> beta`"), "{}", out[1].message);
    }

    #[test]
    fn interprocedural_inversion_names_the_chain() {
        let out = check(&[(
            "crates/server/src/lib.rs",
            "fn outer(&self) { let g = self.gamma.lock().unwrap(); self.take_delta(); }\n\
             fn take_delta(&self) { let d = self.delta.lock().unwrap(); }\n\
             fn rev(&self) {\n\
                 let d = self.delta.lock().unwrap();\n\
                 let g = self.gamma.lock().unwrap();\n\
             }\n",
        )]);
        assert_eq!(out.len(), 2, "{out:?}");
        let mediated = out.iter().find(|d| d.message.contains("via `")).expect("{out:?}");
        assert!(mediated.message.contains("via `take_delta`"), "{}", mediated.message);
    }

    #[test]
    fn engine_files_are_in_scope_but_other_core_files_are_not() {
        let cycle = "fn f(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
                     fn g(&self) { let b = self.beta.lock().unwrap(); let a = self.alpha.lock().unwrap(); }\n";
        let out = check(&[("crates/core/src/engine/cache.rs", cycle)]);
        assert_eq!(out.len(), 2, "{out:?}");
        let out = check(&[("crates/core/src/polarity.rs", cycle)]);
        assert!(out.is_empty(), "{out:?}");
    }
}
