//! `condvar-wait-loop`: every `Condvar::wait` / `wait_timeout` must sit
//! inside a `while`/`loop` that re-checks its predicate.
//!
//! A bare `cv.wait(guard)` is wrong twice over: spurious wakeups mean the
//! predicate may be false when `wait` returns, and a notify landing
//! between the predicate check and the `wait` call is silently lost —
//! the generalization of the lost-wakeup class `notify-under-lock`
//! already polices from the notifying side. `wait_while` /
//! `wait_timeout_while` encapsulate the loop themselves and are exempt by
//! construction (different method names).

use crate::diagnostics::Diagnostic;
use crate::tokens::TokenKind;
use crate::{LintContext, SourceFile};

use super::Rule;

/// The bare waiting calls that require an enclosing re-check loop.
const WAIT_CALLS: &[&str] = &["wait", "wait_timeout"];

/// See the module docs.
pub struct CondvarWaitLoop;

impl Rule for CondvarWaitLoop {
    fn name(&self) -> &'static str {
        "condvar-wait-loop"
    }

    fn description(&self) -> &'static str {
        "Condvar wait outside a while/loop predicate re-check in serving code"
    }

    fn check(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ctx.files {
            if !crate::lockgraph::in_scope(&file.rel_path) {
                continue;
            }
            scan_file(file, &mut out);
        }
        out
    }
}

fn scan_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for j in 0..code.len() {
        if !code[j].is_punct(".") {
            continue;
        }
        let Some(name) = code.get(j + 1) else { continue };
        if name.kind != TokenKind::Ident
            || !WAIT_CALLS.contains(&name.text.as_str())
            || !code.get(j + 2).is_some_and(|t| t.is_punct("("))
            || file.in_test(j)
        {
            continue;
        }
        let Some(span) = file.enclosing_fn(j) else { continue };
        if in_predicate_loop(file, span.body_start, j) {
            continue;
        }
        out.push(file.diag(
            name,
            "condvar-wait-loop",
            format!(
                "`{}()` outside any `while`/`loop` — spurious wakeups and notifies that land \
                 before the wait are lost; re-check the predicate in a loop or use `wait_while`",
                name.text
            ),
        ));
    }
}

/// True when some `while`/`loop` block opened after `body_start` is still
/// open at `site` (the brace-frame stack records which `{` each loop
/// keyword owns).
fn in_predicate_loop(file: &SourceFile, body_start: usize, site: usize) -> bool {
    let code = &file.code;
    let mut frames: Vec<bool> = Vec::new();
    let mut loop_pending = false;
    for tok in &code[body_start..site] {
        match tok.kind {
            TokenKind::Ident if tok.text == "while" || tok.text == "loop" => loop_pending = true,
            TokenKind::Punct if tok.text == "{" => {
                frames.push(loop_pending);
                loop_pending = false;
            }
            TokenKind::Punct if tok.text == "}" => {
                frames.pop();
            }
            TokenKind::Punct if tok.text == ";" => loop_pending = false,
            _ => {}
        }
    }
    frames.iter().any(|&l| l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::new("crates/server/src/lib.rs".into(), src.into());
        let mut out = Vec::new();
        scan_file(&file, &mut out);
        out
    }

    #[test]
    fn bare_wait_guarded_by_if_is_flagged() {
        let out = findings(
            "fn park(&self) {\n\
                 let mut queue = self.admission.lock().unwrap();\n\
                 if queue.is_empty() {\n\
                     queue = self.admit_cv.wait(queue).unwrap();\n\
                 }\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 4);
        assert!(out[0].message.contains("wait()"));
    }

    #[test]
    fn wait_inside_while_is_accepted() {
        let out = findings(
            "fn park(&self) {\n\
                 let mut queue = self.admission.lock().unwrap();\n\
                 while queue.is_empty() {\n\
                     queue = self.admit_cv.wait(queue).unwrap();\n\
                 }\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wait_timeout_inside_loop_is_accepted_even_under_inner_if() {
        let out = findings(
            "fn drain(&self) {\n\
                 let mut queue = self.admission.lock().unwrap();\n\
                 loop {\n\
                     if queue.len() > 4 { break; }\n\
                     let (q, timed_out) = self.admit_cv.wait_timeout(queue, WINDOW).unwrap();\n\
                     queue = q;\n\
                     if timed_out.timed_out() { break; }\n\
                 }\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn bare_wait_timeout_straight_line_is_flagged() {
        let out = findings(
            "fn pause(&self) {\n\
                 let g = self.admission.lock().unwrap();\n\
                 let _ = self.admit_cv.wait_timeout(g, WINDOW);\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("wait_timeout()"));
    }

    #[test]
    fn wait_while_is_exempt_by_name() {
        let out = findings(
            "fn park(&self) {\n\
                 let g = self.admission.lock().unwrap();\n\
                 let g = self.admit_cv.wait_while(g, |q| q.is_empty()).unwrap();\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn loop_closed_before_the_wait_does_not_count() {
        let out = findings(
            "fn park(&self) {\n\
                 while self.spin() { () }\n\
                 let g = self.admission.lock().unwrap();\n\
                 let _ = self.admit_cv.wait(g);\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let out = findings(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t(cv: &Condvar, g: G) { cv.wait(g); }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
