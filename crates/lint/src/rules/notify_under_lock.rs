//! `notify-under-lock`: `Condvar::notify_*` must run while the paired
//! `Mutex` guard is live.
//!
//! This is the exact bug class the resident server shipped once: a
//! `notify_all()` issued after the guard was dropped can interleave with a
//! waiter between its predicate check and its `wait()`, losing the wakeup.
//! The fix (and the discipline this rule enforces) is to notify while the
//! guard is still held.
//!
//! The analysis is lexical, so "guard is live" is approximated with a
//! brace-frame stack: a `.lock()` / `.wait*()` call marks the block it
//! binds its guard into, and a notify is accepted only when some enclosing
//! marked block is still open. A lock acquired inside an `if` / `while` /
//! `match` header (`if let Ok(g) = m.lock() { … }`) scopes its guard to
//! the block the header opens — notifying *after* that block is exactly
//! the lost-wakeup shape and is flagged.

use crate::diagnostics::Diagnostic;
use crate::tokens::TokenKind;
use crate::{LintContext, SourceFile};

use super::Rule;

/// Guard-producing calls: acquiring a lock or re-acquiring it from a wait.
const LOCK_CALLS: &[&str] = &["lock", "try_lock", "wait", "wait_timeout", "wait_while"];

/// The Condvar wakeup calls.
const NOTIFY_CALLS: &[&str] = &["notify_one", "notify_all"];

/// Keywords whose headers scope a guard to the block they open.
const COND_KEYWORDS: &[&str] = &["if", "while", "match"];

/// See the module docs.
pub struct NotifyUnderLock;

impl Rule for NotifyUnderLock {
    fn name(&self) -> &'static str {
        "notify-under-lock"
    }

    fn description(&self) -> &'static str {
        "Condvar notify_* outside a live guard of the paired Mutex in crates/server"
    }

    fn check(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ctx.files {
            if !file.rel_path.starts_with("crates/server/src/") {
                continue;
            }
            scan_file(file, &mut out);
        }
        out
    }
}

fn scan_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    // One locked-flag per open brace frame; index 0 is a synthetic
    // file-level frame so top-level token runs never underflow.
    let mut frames: Vec<bool> = vec![false];
    // A cond keyword was seen since the last statement boundary, so a
    // lock call now belongs to the upcoming block, not the current one.
    let mut cond_pending = false;
    let mut lock_for_next_frame = false;
    for j in 0..code.len() {
        let tok = &code[j];
        match tok.kind {
            TokenKind::Ident if COND_KEYWORDS.contains(&tok.text.as_str()) => {
                cond_pending = true;
            }
            TokenKind::Punct if tok.text == "{" => {
                frames.push(lock_for_next_frame);
                lock_for_next_frame = false;
                cond_pending = false;
            }
            TokenKind::Punct if tok.text == "}" => {
                if frames.len() > 1 {
                    frames.pop();
                }
                cond_pending = false;
            }
            TokenKind::Punct if tok.text == ";" => {
                cond_pending = false;
            }
            TokenKind::Punct if tok.text == "." => {
                let Some(name) = code.get(j + 1) else { continue };
                if name.kind != TokenKind::Ident
                    || !code.get(j + 2).is_some_and(|t| t.is_punct("("))
                {
                    continue;
                }
                if LOCK_CALLS.contains(&name.text.as_str()) {
                    if cond_pending {
                        lock_for_next_frame = true;
                    } else if let Some(top) = frames.last_mut() {
                        *top = true;
                    }
                } else if NOTIFY_CALLS.contains(&name.text.as_str())
                    && !frames.iter().any(|&locked| locked)
                    && !file.in_test(j)
                {
                    out.push(file.diag(
                        name,
                        "notify-under-lock",
                        format!(
                            "`{}()` with no live guard of the paired Mutex in \
                             scope — notify while holding the lock, or a \
                             waiter can miss the wakeup",
                            name.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn findings(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::new("crates/server/src/lib.rs".into(), src.into());
        let mut out = Vec::new();
        scan_file(&file, &mut out);
        out
    }

    #[test]
    fn notify_after_if_let_lock_block_is_flagged() {
        // The shape of the original lost-wakeup bug: the guard dies with
        // the `if let` block, then the notify runs unprotected.
        let out = findings(
            "fn reader(shared: &Shared) {\n\
                 if let Ok(mut queue) = shared.admission.lock() {\n\
                     queue.push_back(1);\n\
                 }\n\
                 shared.admit_cv.notify_all();\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 5);
    }

    #[test]
    fn notify_inside_guard_block_is_accepted() {
        let out = findings(
            "fn shutdown(&self) {\n\
                 {\n\
                     let _queue = self.admission.lock();\n\
                     self.admit_cv.notify_all();\n\
                 }\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn notify_under_straight_line_guard_is_accepted() {
        let out = findings(
            "fn push(shared: &Shared) {\n\
                 let mut queue = shared.admission.lock().unwrap_or_else(recover);\n\
                 queue.push_back(1);\n\
                 shared.admit_cv.notify_all();\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn notify_inside_match_arm_of_lock_scrutinee_is_accepted() {
        let out = findings(
            "fn push(shared: &Shared) {\n\
                 match shared.admission.lock() {\n\
                     Ok(mut queue) => {\n\
                         queue.push_back(1);\n\
                         shared.admit_cv.notify_all();\n\
                     }\n\
                     Err(_) => {}\n\
                 }\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn notify_in_else_branch_is_flagged() {
        // The else branch runs with the guard never having been acquired.
        let out = findings(
            "fn push(shared: &Shared) {\n\
                 if let Ok(mut queue) = shared.admission.lock() {\n\
                     queue.push_back(1);\n\
                 } else {\n\
                     shared.admit_cv.notify_all();\n\
                 }\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn wait_loop_reacquired_guard_counts() {
        let out = findings(
            "fn drain(shared: &Shared) {\n\
                 let mut queue = shared.admission.lock().unwrap();\n\
                 while queue.is_empty() {\n\
                     queue = shared.admit_cv.wait(queue).unwrap();\n\
                 }\n\
                 shared.admit_cv.notify_one();\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn bare_notify_with_no_lock_anywhere_is_flagged() {
        let out = findings("fn wake(cv: &Condvar) { cv.notify_all(); }\n");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn test_code_is_exempt() {
        let out = findings(
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { CV.notify_all(); }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
