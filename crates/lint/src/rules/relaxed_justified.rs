//! `relaxed-justified`: audited memory orderings and unsafe blocks.
//!
//! `Ordering::Relaxed` is correct for most of this repo's counters and
//! work-stealing cursors, but *why* it is correct differs per site (pure
//! statistics vs. cursors whose consumers re-check under a lock). Each
//! use must carry a `// relaxed:` comment recording the argument — one
//! justification comment anywhere earlier in the same function covers the
//! whole function, so a counter cluster needs a single comment, not one
//! per line. Outside a function body the comment must sit on the same or
//! the preceding line.
//!
//! The same rule audits `unsafe` blocks: each needs a `// SAFETY:`
//! comment on the same or preceding line. (The workspace denies
//! `unsafe_code` today; the check future-proofs any crate that opts in.)

use crate::diagnostics::Diagnostic;
use crate::{LintContext, SourceFile};

use super::Rule;

/// See the module docs.
pub struct RelaxedJustified;

impl Rule for RelaxedJustified {
    fn name(&self) -> &'static str {
        "relaxed-justified"
    }

    fn description(&self) -> &'static str {
        "Ordering::Relaxed without `// relaxed:` comment, or unsafe block without `// SAFETY:`"
    }

    fn check(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ctx.files {
            scan_file(file, &mut out);
        }
        out
    }
}

/// True when a comment containing `needle` appears between `from_line`
/// and `to_line` inclusive.
fn comment_in_lines(file: &SourceFile, from_line: u32, to_line: u32, needle: &str) -> bool {
    file.tokens.iter().any(|t| {
        t.is_comment() && t.line >= from_line && t.line <= to_line && t.text.contains(needle)
    })
}

fn scan_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for j in 0..code.len() {
        let tok = &code[j];
        if tok.is_ident("Ordering")
            && code.get(j + 1).is_some_and(|t| t.is_punct("::"))
            && code.get(j + 2).is_some_and(|t| t.is_ident("Relaxed"))
        {
            if file.in_test(j) {
                continue;
            }
            let site_line = tok.line;
            let justified = match file.enclosing_fn(j) {
                // One `// relaxed:` anywhere earlier in the function
                // covers every site after it.
                Some(span) => {
                    comment_in_lines(file, code[span.sig_start].line, site_line, "relaxed:")
                }
                None => file.comment_near_line(site_line, "relaxed:"),
            };
            if !justified {
                out.push(
                    file.diag(
                        tok,
                        "relaxed-justified",
                        "`Ordering::Relaxed` without a `// relaxed:` justification \
                     comment (record why relaxed ordering is sufficient here)"
                            .to_string(),
                    ),
                );
            }
        } else if tok.is_ident("unsafe")
            && code.get(j + 1).is_some_and(|t| t.is_punct("{"))
            && !file.in_test(j)
            && !file.comment_near_line(tok.line, "SAFETY:")
        {
            out.push(
                file.diag(
                    tok,
                    "relaxed-justified",
                    "`unsafe` block without a `// SAFETY:` comment on the same or \
                 preceding line"
                        .to_string(),
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn findings(src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::new("crates/core/src/x.rs".into(), src.into());
        let mut out = Vec::new();
        scan_file(&file, &mut out);
        out
    }

    #[test]
    fn unjustified_relaxed_is_flagged() {
        let out = findings("fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n");
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn one_comment_covers_the_rest_of_the_function() {
        let out = findings(
            "fn f(c: &AtomicU64) {\n\
                 // relaxed: monotone counters, read only for stats reporting\n\
                 c.fetch_add(1, Ordering::Relaxed);\n\
                 c.fetch_add(2, Ordering::Relaxed);\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn comment_after_the_site_does_not_count() {
        let out = findings(
            "fn f(c: &AtomicU64) {\n\
                 c.fetch_add(1, Ordering::Relaxed);\n\
                 // relaxed: too late for the site above\n\
             }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn trailing_comment_on_the_same_line_counts() {
        let out = findings(
            "fn f(c: &AtomicU64) { c.load(Ordering::Relaxed); // relaxed: stats snapshot\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn outside_fn_needs_adjacent_comment() {
        let out = findings("static ORDER: Ordering = Ordering::Relaxed;\n");
        assert_eq!(out.len(), 1, "{out:?}");
        let out = findings(
            "// relaxed: constant used only for stats loads\n\
             static ORDER: Ordering = Ordering::Relaxed;\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn relaxed_in_test_code_or_strings_is_ignored() {
        let out = findings(
            "#[cfg(test)]\nmod tests {\n    fn t() { c.load(Ordering::Relaxed); }\n}\n\
             fn f() { let s = \"Ordering::Relaxed\"; }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unsafe_block_needs_safety_comment() {
        let out = findings("fn f(p: *const u8) { unsafe { p.read() }; }\n");
        assert_eq!(out.len(), 1, "{out:?}");
        let out = findings(
            "fn f(p: *const u8) {\n\
                 // SAFETY: p is non-null and aligned by construction\n\
                 unsafe { p.read() };\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn unsafe_fn_signature_is_not_a_block() {
        let out = findings("unsafe fn f() { () }\n");
        assert!(out.is_empty(), "{out:?}");
    }
}
