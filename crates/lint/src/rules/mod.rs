//! The rule catalogue.
//!
//! Each rule family is grounded in a discipline this repo already adopted
//! the hard way (see CHANGES.md): allocation-free hot paths, Condvar
//! notifies under the paired lock, panic-free serving code, justified
//! relaxed atomics, and a README stats glossary that tracks the counters
//! the code actually emits.

pub mod condvar_wait_loop;
pub mod hot_alloc;
pub mod hot_alloc_transitive;
pub mod lock_order;
pub mod no_panic;
pub mod notify_under_lock;
pub mod relaxed_justified;
pub mod stats_glossary;

use crate::diagnostics::Diagnostic;
use crate::LintContext;

/// A single lint rule, run over the whole [`LintContext`] at once so
/// cross-file rules (like the stats glossary check) fit the same shape as
/// per-file token scans.
pub trait Rule {
    /// Stable kebab-case rule name — used in `--rule` filters, pragma
    /// `allow(...)` lists and diagnostic output.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Produce every finding (suppression filtering happens centrally).
    fn check(&self, ctx: &LintContext) -> Vec<Diagnostic>;
}

/// All registered rules, in diagnostic-output order. The first five are
/// the PR 7 token-scan families; the last three are the flow-aware
/// families running over the pass-1 call/lock graphs.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(hot_alloc::HotAlloc),
        Box::new(notify_under_lock::NotifyUnderLock),
        Box::new(no_panic::NoPanicInServer),
        Box::new(relaxed_justified::RelaxedJustified),
        Box::new(stats_glossary::StatsGlossarySync),
        Box::new(hot_alloc_transitive::HotAllocTransitive),
        Box::new(lock_order::LockOrder),
        Box::new(condvar_wait_loop::CondvarWaitLoop),
    ]
}
