//! `stats-glossary-sync`: the README stats glossary must cover every
//! counter key the code emits.
//!
//! Counter keys are born in three places — `BatchStats::key_values`,
//! `CacheStats::key_values` (both in `tspg-core`) and the server `stats`
//! verb's `stats_text` — and documented in one (README.md's stats
//! glossary). This cross-file rule extracts the emitted key literals and
//! requires each to appear in the README as an inline-code span
//! (`` `key` ``), anchoring any finding at the emitting source line so
//! the fix-path is obvious in either direction (document the key, or stop
//! emitting it).

use crate::diagnostics::Diagnostic;
use crate::tokens::{Token, TokenKind};
use crate::{FnSpan, LintContext, SourceFile};

use super::Rule;

/// Files whose `fn key_values` bodies emit stats keys as string literals.
const KEY_VALUES_FILES: &[&str] =
    &["crates/core/src/engine/mod.rs", "crates/core/src/engine/cache.rs"];

/// The server file whose `fn stats_text` emits keys via `push("key", …)`.
const STATS_TEXT_FILE: &str = "crates/server/src/lib.rs";

/// See the module docs.
pub struct StatsGlossarySync;

impl Rule for StatsGlossarySync {
    fn name(&self) -> &'static str {
        "stats-glossary-sync"
    }

    fn description(&self) -> &'static str {
        "counter key emitted by key_values/stats_text missing from README's stats glossary"
    }

    fn check(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ctx.files {
            let emitted: Vec<&Token> = if KEY_VALUES_FILES.contains(&file.rel_path.as_str()) {
                keys_from_fns(file, "key_values", collect_string_literals)
            } else if file.rel_path == STATS_TEXT_FILE {
                keys_from_fns(file, "stats_text", collect_push_first_args)
            } else {
                continue;
            };
            for tok in emitted {
                let key = unquote(&tok.text);
                let documented = ctx
                    .readme
                    .as_deref()
                    .is_some_and(|readme| readme.contains(&format!("`{key}`")));
                if !documented {
                    let detail = if ctx.readme.is_some() {
                        "missing from README.md's stats glossary"
                    } else {
                        "but README.md was not found at the lint root"
                    };
                    out.push(file.diag(
                        tok,
                        "stats-glossary-sync",
                        format!("stats key `{key}` is emitted here but {detail}"),
                    ));
                }
            }
        }
        out
    }
}

/// Run `collect` over the body of every non-test function named `name`.
fn keys_from_fns<'f>(
    file: &'f SourceFile,
    name: &str,
    collect: fn(&'f SourceFile, &FnSpan) -> Vec<&'f Token>,
) -> Vec<&'f Token> {
    file.fn_spans
        .iter()
        .filter(|span| span.name == name && !file.in_test(span.sig_start))
        .flat_map(|span| collect(file, span))
        .collect()
}

/// Every identifier-shaped string literal in the function body — the
/// `("key", value)` pair shape of `key_values`.
fn collect_string_literals<'f>(file: &'f SourceFile, span: &FnSpan) -> Vec<&'f Token> {
    file.code[span.body_start..=span.body_end]
        .iter()
        .filter(|t| t.kind == TokenKind::Str && is_key_shaped(&unquote(&t.text)))
        .collect()
}

/// Every `push("key", …)` first argument in the function body — the
/// emission shape of the server's `stats_text`. (`push_str` is a
/// different identifier and is not matched, so the protocol terminator
/// is not mistaken for a key.)
fn collect_push_first_args<'f>(file: &'f SourceFile, span: &FnSpan) -> Vec<&'f Token> {
    let body = &file.code[span.body_start..=span.body_end];
    let mut out = Vec::new();
    for j in 0..body.len() {
        if body[j].is_ident("push")
            && body.get(j + 1).is_some_and(|t| t.is_punct("("))
            && body.get(j + 2).is_some_and(|t| t.kind == TokenKind::Str)
            && is_key_shaped(&unquote(&body[j + 2].text))
        {
            out.push(&body[j + 2]);
        }
    }
    out
}

/// Strip the quotes from a plain string literal's token text.
fn unquote(text: &str) -> String {
    text.trim_start_matches('"').trim_end_matches('"').to_string()
}

/// True for `snake_case`-identifier-shaped strings — the only form stats
/// keys take; filters out message strings that share a function body.
fn is_key_shaped(s: &str) -> bool {
    !s.is_empty() && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LintContext;
    use std::path::PathBuf;

    fn ctx(rel: &str, src: &str, readme: Option<&str>) -> LintContext {
        LintContext::from_parts(
            PathBuf::from("."),
            vec![SourceFile::new(rel.into(), src.into())],
            readme.map(|r| r.into()),
        )
    }

    const KEY_VALUES: &str = "impl BatchStats {\n\
         fn key_values(&self) -> Vec<(&'static str, u64)> {\n\
             vec![(\"queries\", self.queries), (\"cache_hits\", self.cache_hits)]\n\
         }\n\
     }\n";

    #[test]
    fn undocumented_key_values_key_is_flagged() {
        let ctx = ctx(
            "crates/core/src/engine/mod.rs",
            KEY_VALUES,
            Some("Glossary: `queries` counts queries.\n"),
        );
        let out = StatsGlossarySync.check(&ctx);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cache_hits"));
    }

    #[test]
    fn fully_documented_keys_pass() {
        let ctx = ctx(
            "crates/core/src/engine/mod.rs",
            KEY_VALUES,
            Some("`queries` and `cache_hits` are documented.\n"),
        );
        assert!(StatsGlossarySync.check(&ctx).is_empty());
    }

    #[test]
    fn stats_text_push_keys_are_checked_but_push_str_is_not() {
        let src = "fn stats_text(&self) -> String {\n\
             let mut push = |k: &str, v: u64| {};\n\
             push(\"requests\", 1);\n\
             out.push_str(\"end\");\n\
             out.push('\\n');\n\
             String::new()\n\
         }\n";
        let ctx = ctx("crates/server/src/lib.rs", src, Some("no keys documented\n"));
        let out = StatsGlossarySync.check(&ctx);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("requests"));
    }

    #[test]
    fn non_key_shaped_strings_are_ignored() {
        let src = "fn key_values(&self) -> Vec<(&'static str, u64)> {\n\
             let msg = \"Not A Key!\";\n\
             vec![(\"real_key\", 1)]\n\
         }\n";
        let ctx = ctx("crates/core/src/engine/cache.rs", src, Some("`real_key`\n"));
        assert!(StatsGlossarySync.check(&ctx).is_empty());
    }

    #[test]
    fn missing_readme_flags_every_key() {
        let ctx = ctx("crates/core/src/engine/mod.rs", KEY_VALUES, None);
        let out = StatsGlossarySync.check(&ctx);
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn out_of_scope_files_are_ignored() {
        let ctx = ctx("crates/cli/src/main.rs", KEY_VALUES, None);
        assert!(StatsGlossarySync.check(&ctx).is_empty());
    }
}
