//! `hot-alloc-transitive`: allocation-freedom propagated through calls.
//!
//! `hot-alloc` checks the body of each `*_into`/`*_scratch` function;
//! this rule closes the hole it leaves — a hot function calling a
//! harmlessly-named helper that allocates. Starting from every hot root
//! in `tspg-core`, it walks the pass-1 call graph and reports the first
//! allocating function reachable on each path, with the full call chain
//! in the diagnostic so the reader can decide where to break it (hoist
//! the allocation to setup, rename the helper into the hot convention, or
//! justify with a pragma).
//!
//! Hot callees are not expanded or reported: they are roots of their own
//! analysis, so each link of a hot chain is checked exactly once. The
//! diagnostic anchors at the *call site inside the root*, which keeps
//! suppression pragmas local to the hot function whose budget is being
//! spent.

use std::collections::{HashSet, VecDeque};

use crate::diagnostics::Diagnostic;
use crate::LintContext;

use super::hot_alloc::{is_hot_name, match_alloc};
use super::Rule;

/// See the module docs.
pub struct HotAllocTransitive;

impl Rule for HotAllocTransitive {
    fn name(&self) -> &'static str {
        "hot-alloc-transitive"
    }

    fn description(&self) -> &'static str {
        "hot-path function reaches an allocating callee through the call graph"
    }

    fn check(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let graph = ctx.callgraph();
        // First allocating construct per node, workspace-wide: a hot core
        // fn may reach an allocating helper living in another crate.
        let direct_alloc: Vec<Option<(String, usize)>> = graph
            .nodes
            .iter()
            .map(|node| {
                let file = &ctx.files[node.file];
                let span = &file.fn_spans[node.span];
                (span.body_start..=span.body_end).find_map(|j| {
                    if file.enclosing_fn_idx(j) != Some(node.span) || file.in_test(j) {
                        return None;
                    }
                    match_alloc(file, j).map(|what| (what, j))
                })
            })
            .collect();

        let mut out = Vec::new();
        for (root_idx, root) in graph.nodes.iter().enumerate() {
            let root_file = &ctx.files[root.file];
            if !root_file.rel_path.starts_with("crates/core/src/") || !is_hot_name(&root.name) {
                continue;
            }
            // BFS: shortest chain to each reachable callee, one report per
            // (root, allocating fn).
            let mut visited: HashSet<usize> = HashSet::from([root_idx]);
            let mut queue: VecDeque<(usize, Vec<String>, usize)> = VecDeque::new();
            for site in &root.calls {
                for target in graph.resolve(root, site) {
                    queue.push_back((
                        target,
                        vec![root.name.clone(), graph.nodes[target].name.clone()],
                        site.code_idx,
                    ));
                }
            }
            while let Some((node_idx, chain, first_hop)) = queue.pop_front() {
                if !visited.insert(node_idx) {
                    continue;
                }
                let node = &graph.nodes[node_idx];
                if is_hot_name(&node.name) {
                    // A hot callee is a root of its own traversal.
                    continue;
                }
                if let Some((what, alloc_idx)) = &direct_alloc[node_idx] {
                    let callee_file = &ctx.files[node.file];
                    let alloc_tok = &callee_file.code[*alloc_idx];
                    out.push(root_file.diag(
                        &root_file.code[first_hop],
                        "hot-alloc-transitive",
                        format!(
                            "hot-path function `{}` reaches allocating call `{what}` in `{}` \
                             ({}:{}) via `{}` (zero-steady-state-allocation discipline: hoist \
                             the allocation to setup or rename the helper into the hot \
                             convention)",
                            root.name,
                            node.name,
                            callee_file.rel_path,
                            alloc_tok.line,
                            chain.join(" -> "),
                        ),
                    ));
                    // Calls past an allocating fn are that fn's problem.
                    continue;
                }
                for site in &node.calls {
                    for target in graph.resolve(node, site) {
                        if !visited.contains(&target) {
                            let mut next = chain.clone();
                            next.push(graph.nodes[target].name.clone());
                            queue.push_back((target, next, first_hop));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;
    use std::path::PathBuf;

    fn check(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let files: Vec<SourceFile> =
            files.iter().map(|(p, s)| SourceFile::new((*p).into(), (*s).into())).collect();
        let ctx = LintContext::from_parts(PathBuf::from("."), files, None);
        HotAllocTransitive.check(&ctx)
    }

    #[test]
    fn two_hop_chain_is_reported_with_full_chain() {
        let out = check(&[(
            "crates/core/src/x.rs",
            "fn fill_into(out: &mut [u32]) { expand(out); }\n\
             fn expand(out: &mut [u32]) { grow(out); }\n\
             fn grow(out: &mut [u32]) { let v: Vec<u32> = Vec::new(); }\n",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0]
            .message
            .contains("`fill_into` reaches allocating call `Vec::new` in `grow`"));
        assert!(out[0].message.contains("fill_into -> expand -> grow"), "{}", out[0].message);
        // Anchored at the `expand(out)` call inside the root.
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn hot_callees_are_not_reported_or_expanded() {
        let out = check(&[(
            "crates/core/src/x.rs",
            "fn fill_into(out: &mut [u32]) { shrink_into(out); }\n\
             fn shrink_into(out: &mut [u32]) { let v = Vec::new(); }\n",
        )]);
        // `shrink_into` is hot: plain hot-alloc owns that finding.
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn clean_helpers_produce_nothing() {
        let out = check(&[(
            "crates/core/src/x.rs",
            "fn fill_into(out: &mut [u32]) { clamp(out); }\n\
             fn clamp(out: &mut [u32]) { out.sort_unstable(); }\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn chains_cross_files_and_crates() {
        let out = check(&[
            ("crates/core/src/hot.rs", "fn fill_into(out: &mut [u32]) { helper(out); }\n"),
            ("crates/graph/src/lib.rs", "pub fn helper(out: &mut [u32]) { let v = vec![1]; }\n"),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].path.ends_with("crates/core/src/hot.rs"));
        assert!(out[0].message.contains("crates/graph/src/lib.rs"));
    }

    #[test]
    fn non_core_roots_are_out_of_scope() {
        let out = check(&[(
            "crates/server/src/lib.rs",
            "fn drain_into(out: &mut [u32]) { helper(out); }\n\
             fn helper(out: &mut [u32]) { let v = Vec::new(); }\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn call_cycles_terminate() {
        let out = check(&[(
            "crates/core/src/x.rs",
            "fn fill_into(out: &mut [u32]) { a(out); }\n\
             fn a(out: &mut [u32]) { b(out); }\n\
             fn b(out: &mut [u32]) { a(out); }\n",
        )]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn method_call_chains_resolve() {
        let out = check(&[(
            "crates/core/src/x.rs",
            "struct S;\n\
             impl S {\n\
                 fn fill_into(&self, out: &mut [u32]) { self.expand(out); }\n\
                 fn expand(&self, out: &mut [u32]) { let v = Vec::new(); }\n\
             }\n",
        )]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("in `expand`"), "{}", out[0].message);
    }
}
