//! `no-panic-in-server`: serving code must not be able to panic.
//!
//! A panic in the resident server or the executor's worker threads tears
//! down a thread mid-request (or poisons a shared lock) instead of
//! degrading gracefully. Non-test code in `crates/server` and in the
//! engine executor must therefore avoid `.unwrap()` / `.expect()` /
//! `panic!`-family macros — including the implicit panic of
//! `lock().unwrap()` on a poisoned mutex, which should use
//! `unwrap_or_else(PoisonError::into_inner)` instead.
//!
//! Genuinely unreachable cases may be annotated with a
//! `// tspg-lint: allow(no-panic-in-server)` pragma stating the invariant.

use crate::diagnostics::Diagnostic;
use crate::tokens::TokenKind;
use crate::{LintContext, SourceFile};

use super::Rule;

/// Methods that panic on the failure variant. `unwrap_or_else` and
/// friends are distinct identifiers and do not match.
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// Macros that always panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

/// See the module docs.
pub struct NoPanicInServer;

/// True for files on the serving path: the whole server crate plus the
/// engine executor (whose worker threads serve query batches).
fn in_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/server/src/") || rel_path == "crates/core/src/engine/executor.rs"
}

impl Rule for NoPanicInServer {
    fn name(&self) -> &'static str {
        "no-panic-in-server"
    }

    fn description(&self) -> &'static str {
        "unwrap/expect/panic! in non-test server or executor code"
    }

    fn check(&self, ctx: &LintContext) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for file in &ctx.files {
            if !in_scope(&file.rel_path) {
                continue;
            }
            scan_file(file, &mut out);
        }
        out
    }
}

fn scan_file(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let code = &file.code;
    for j in 0..code.len() {
        let tok = &code[j];
        if tok.is_punct(".")
            && code.get(j + 1).is_some_and(|t| {
                t.kind == TokenKind::Ident && PANIC_METHODS.contains(&t.text.as_str())
            })
            && code.get(j + 2).is_some_and(|t| t.is_punct("("))
        {
            if !file.in_test(j) {
                let name = &code[j + 1];
                out.push(file.diag(
                    name,
                    "no-panic-in-server",
                    format!(
                        "`.{}()` can panic in serving code — handle the \
                         failure (for lock poisoning: \
                         `unwrap_or_else(PoisonError::into_inner)`)",
                        name.text
                    ),
                ));
            }
        } else if tok.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&tok.text.as_str())
            && code.get(j + 1).is_some_and(|t| t.is_punct("!"))
            && !file.in_test(j)
        {
            out.push(file.diag(
                tok,
                "no-panic-in-server",
                format!("`{}!` in serving code — return an error instead", tok.text),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SourceFile;

    fn findings(rel: &str, src: &str) -> Vec<Diagnostic> {
        let file = SourceFile::new(rel.into(), src.into());
        let mut out = Vec::new();
        if in_scope(&file.rel_path) {
            scan_file(&file, &mut out);
        }
        out
    }

    #[test]
    fn unwrap_expect_and_panic_macros_are_flagged() {
        let out = findings(
            "crates/server/src/lib.rs",
            "fn f(m: &Mutex<u32>) {\n\
                 let g = m.lock().unwrap();\n\
                 let h = m.lock().expect(\"poisoned\");\n\
                 panic!(\"boom\");\n\
                 unreachable!();\n\
             }\n",
        );
        assert_eq!(out.len(), 4, "{out:?}");
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let out = findings(
            "crates/server/src/lib.rs",
            "fn f(m: &Mutex<u32>) {\n\
                 let g = m.lock().unwrap_or_else(PoisonError::into_inner);\n\
                 let d = x.unwrap_or_default();\n\
             }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn asserts_are_allowed() {
        let out = findings(
            "crates/server/src/lib.rs",
            "fn f(x: u32) { assert!(x > 0); debug_assert_eq!(x, 1); }\n",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn test_code_and_out_of_scope_files_are_exempt() {
        let out = findings(
            "crates/server/src/lib.rs",
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x.unwrap(); }\n}\n",
        );
        assert!(out.is_empty(), "{out:?}");
        let out = findings("crates/core/src/engine/mod.rs", "fn f() { x.unwrap(); }\n");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn executor_is_in_scope() {
        let out = findings(
            "crates/core/src/engine/executor.rs",
            "fn f() { handle.join().expect(\"worker panicked\"); }\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
    }
}
