//! A small comment/string/char/lifetime-aware Rust tokenizer.
//!
//! This is not a compiler front end: it produces exactly the token stream
//! the lint rules need — identifiers, punctuation, literals and **comments
//! as first-class tokens** (rules read justification comments and
//! suppression pragmas out of them) — with `line:col` spans for
//! diagnostics. It understands every lexical form that could derail a
//! naive text scan:
//!
//! * line (`//`, `///`, `//!`) and nested block (`/* /* */ */`) comments;
//! * string (`"…"`), raw string (`r#"…"#`), byte string (`b"…"`) and char
//!   (`'x'`, `'\n'`, `'\u{7f}'`) literals — so `"Ordering::Relaxed"`
//!   inside a string never looks like code;
//! * lifetimes (`'a`, `'static`) vs. char literals — the classic
//!   single-quote ambiguity;
//! * `::` as one token (rules match paths like `Ordering::Relaxed`).
//!
//! Numbers are tokenized without dots (`1.5` is three tokens); no rule
//! inspects numeric values, so the simplification is free.

/// What a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `unsafe`, `Ordering`, …).
    Ident,
    /// Single punctuation character, or the combined `::`.
    Punct,
    /// String, raw-string or byte-string literal (quotes included in the
    /// text; raw/byte prefixes preserved).
    Str,
    /// Character literal (quotes included).
    Char,
    /// Lifetime (`'a`, `'static`), leading quote included.
    Lifetime,
    /// Numeric literal (integer part only; no dots).
    Number,
    /// `//`-style comment, text up to (not including) the newline.
    LineComment,
    /// `/* … */` comment, delimiters included, possibly spanning lines.
    BlockComment,
}

/// One lexical token with its position.
#[derive(Clone, Debug)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Raw text of the token (delimiters included for literals/comments).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// `true` for the two comment kinds.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// `true` when the token is an identifier with exactly this text.
    ///
    /// Raw identifiers keep their `r#` prefix in [`Token::text`], so
    /// `r#fn` never satisfies `is_ident("fn")` — a raw identifier is by
    /// definition *not* the keyword it spells. Structural scans that key
    /// on keywords (`fn`-span detection, control-flow headers) rely on
    /// this; name comparisons that should see through the prefix use
    /// [`ident_name`] instead.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// The identifier's name with any raw prefix (`r#`) stripped — the
    /// form under which `fn r#try` and a call site `r#try(…)` (or plain
    /// `try(…)` from an edition that allows it) compare equal.
    pub fn ident_name(&self) -> &str {
        ident_name(&self.text)
    }

    /// `true` when the token is punctuation with exactly this text.
    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == text
    }
}

/// Cursor over the source's characters with line/column accounting.
struct Cursor<'s> {
    chars: std::iter::Peekable<std::str::Chars<'s>>,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn new(text: &'s str) -> Self {
        Self { chars: text.chars().peekable(), line: 1, col: 1 }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Strips the raw-identifier prefix from an identifier's text.
///
/// `r#match` → `match`, `r#fn` → `fn`; non-raw names pass through. Used
/// wherever identifier *names* are compared across definition and use
/// sites; keyword checks deliberately stay on the raw text (see
/// [`Token::is_ident`]).
pub fn ident_name(text: &str) -> &str {
    text.strip_prefix("r#").unwrap_or(text)
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `text` into the full stream, comments included.
///
/// The tokenizer never fails: unterminated literals or comments simply
/// produce a final token running to end of input (good enough for lint
/// purposes — the compiler is the arbiter of well-formedness).
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut cursor = Cursor::new(text);
    let mut tokens = Vec::new();
    while let Some(c) = cursor.peek() {
        let (line, col) = (cursor.line, cursor.col);
        if c.is_whitespace() {
            cursor.bump();
            continue;
        }
        let token = if c == '/' { read_slash(&mut cursor) } else { read_token(&mut cursor, c) };
        let mut token = token;
        token.line = line;
        token.col = col;
        tokens.push(token);
    }
    tokens
}

/// `/`: division, line comment or block comment.
fn read_slash(cursor: &mut Cursor<'_>) -> Token {
    let mut text = String::from(cursor.bump().expect("peeked"));
    match cursor.peek() {
        Some('/') => {
            while let Some(c) = cursor.peek() {
                if c == '\n' {
                    break;
                }
                text.push(cursor.bump().expect("peeked"));
            }
            Token { kind: TokenKind::LineComment, text, line: 0, col: 0 }
        }
        Some('*') => {
            text.push(cursor.bump().expect("peeked"));
            let mut depth = 1u32;
            while depth > 0 {
                let Some(c) = cursor.bump() else { break };
                text.push(c);
                if c == '*' && cursor.peek() == Some('/') {
                    text.push(cursor.bump().expect("peeked"));
                    depth -= 1;
                } else if c == '/' && cursor.peek() == Some('*') {
                    text.push(cursor.bump().expect("peeked"));
                    depth += 1;
                }
            }
            Token { kind: TokenKind::BlockComment, text, line: 0, col: 0 }
        }
        _ => Token { kind: TokenKind::Punct, text, line: 0, col: 0 },
    }
}

/// Every token that does not start with `/`.
fn read_token(cursor: &mut Cursor<'_>, first: char) -> Token {
    // Raw / byte string prefixes: r", r#", br", b" — an identifier head
    // immediately followed by a quote (or #"). Checked before plain
    // identifiers so `r#"…"#` is not read as ident `r` + junk.
    if first == 'r' || first == 'b' {
        if let Some(token) = try_read_prefixed_string(cursor) {
            return token;
        }
    }
    if is_ident_start(first) {
        let mut text = String::new();
        while let Some(c) = cursor.peek() {
            if !is_ident_continue(c) {
                break;
            }
            text.push(cursor.bump().expect("peeked"));
        }
        return Token { kind: TokenKind::Ident, text, line: 0, col: 0 };
    }
    if first.is_ascii_digit() {
        let mut text = String::new();
        while let Some(c) = cursor.peek() {
            if !is_ident_continue(c) {
                break;
            }
            text.push(cursor.bump().expect("peeked"));
        }
        return Token { kind: TokenKind::Number, text, line: 0, col: 0 };
    }
    if first == '"' {
        return read_quoted_string(cursor);
    }
    if first == '\'' {
        return read_quote(cursor);
    }
    // Punctuation; `::` is combined into one token.
    let mut text = String::from(cursor.bump().expect("peeked"));
    if first == ':' && cursor.peek() == Some(':') {
        text.push(cursor.bump().expect("peeked"));
    }
    Token { kind: TokenKind::Punct, text, line: 0, col: 0 }
}

/// `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##` — or `None` when the `r`/`b`
/// head turns out to be a plain identifier.
fn try_read_prefixed_string(cursor: &mut Cursor<'_>) -> Option<Token> {
    // Clone-free lookahead is impossible with a char iterator, so probe by
    // consuming only when the prefix shape is certain: peek the chain via
    // a cloned cursor state is unavailable — instead read the ident and
    // re-classify. Consume the ident head first.
    let mut head = String::new();
    while let Some(c) = cursor.peek() {
        if !is_ident_continue(c) {
            break;
        }
        head.push(cursor.bump().expect("peeked"));
    }
    let is_raw_head = matches!(head.as_str(), "r" | "b" | "br" | "rb");
    match cursor.peek() {
        Some('"') if is_raw_head => {
            let raw = head.contains('r');
            let mut token =
                if raw { read_raw_string(cursor, 0) } else { read_quoted_string(cursor) };
            token.text.insert_str(0, &head);
            Some(token)
        }
        // `b'x'` byte-char literal: one token, not ident `b` + char. (A
        // `b'a`-without-close form reads as `b` + lifetime in rustc but is
        // glued here too — classification fidelity matters less than
        // lossless coverage for a form the compiler rejects.)
        Some('\'') if head == "b" => {
            let mut token = read_quote(cursor);
            token.text.insert_str(0, &head);
            token.kind = TokenKind::Char;
            Some(token)
        }
        Some('#') if is_raw_head && head.contains('r') => {
            // Count hashes; only a quote after them makes this a raw
            // string (stray `r#ident` is a raw identifier: re-emit below).
            let mut hashes = 0usize;
            while cursor.peek() == Some('#') {
                cursor.bump();
                hashes += 1;
            }
            if cursor.peek() == Some('"') {
                let mut token = read_raw_string(cursor, hashes);
                let mut prefix = head;
                prefix.push_str(&"#".repeat(hashes));
                token.text.insert_str(0, &prefix);
                Some(token)
            } else {
                // Raw identifier (`r#match`): emit the following ident
                // with the prefix glued on.
                let mut text = head;
                text.push_str(&"#".repeat(hashes));
                while let Some(c) = cursor.peek() {
                    if !is_ident_continue(c) {
                        break;
                    }
                    text.push(cursor.bump().expect("peeked"));
                }
                Some(Token { kind: TokenKind::Ident, text, line: 0, col: 0 })
            }
        }
        _ => Some(Token { kind: TokenKind::Ident, text: head, line: 0, col: 0 }),
    }
}

/// `"…"` with escape handling; the opening quote is at the cursor.
fn read_quoted_string(cursor: &mut Cursor<'_>) -> Token {
    let mut text = String::from(cursor.bump().expect("peeked"));
    while let Some(c) = cursor.bump() {
        text.push(c);
        if c == '\\' {
            if let Some(escaped) = cursor.bump() {
                text.push(escaped);
            }
        } else if c == '"' {
            break;
        }
    }
    Token { kind: TokenKind::Str, text, line: 0, col: 0 }
}

/// Raw string body: the opening quote is at the cursor; ends at `"`
/// followed by `hashes` hash signs.
fn read_raw_string(cursor: &mut Cursor<'_>, hashes: usize) -> Token {
    let mut text = String::from(cursor.bump().expect("peeked"));
    'outer: while let Some(c) = cursor.bump() {
        text.push(c);
        if c == '"' {
            for _ in 0..hashes {
                if cursor.peek() == Some('#') {
                    text.push(cursor.bump().expect("peeked"));
                } else {
                    continue 'outer;
                }
            }
            break;
        }
    }
    Token { kind: TokenKind::Str, text, line: 0, col: 0 }
}

/// `'`: lifetime or char literal. The quote is at the cursor.
fn read_quote(cursor: &mut Cursor<'_>) -> Token {
    let mut text = String::from(cursor.bump().expect("peeked"));
    match cursor.peek() {
        // Escape: definitely a char literal, read through the close quote.
        Some('\\') => {
            while let Some(c) = cursor.bump() {
                text.push(c);
                if c == '\\' {
                    if let Some(escaped) = cursor.bump() {
                        text.push(escaped);
                    }
                    continue;
                }
                if c == '\'' {
                    break;
                }
            }
            Token { kind: TokenKind::Char, text, line: 0, col: 0 }
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` (char) vs `'a` / `'static` (lifetime): consume the
            // identifier, then check for a closing quote.
            while let Some(c) = cursor.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(cursor.bump().expect("peeked"));
            }
            if cursor.peek() == Some('\'') {
                text.push(cursor.bump().expect("peeked"));
                Token { kind: TokenKind::Char, text, line: 0, col: 0 }
            } else {
                Token { kind: TokenKind::Lifetime, text, line: 0, col: 0 }
            }
        }
        // `'+'` and friends: a single non-ident char then a close quote.
        Some(_) => {
            if let Some(c) = cursor.bump() {
                text.push(c);
            }
            if cursor.peek() == Some('\'') {
                text.push(cursor.bump().expect("peeked"));
            }
            Token { kind: TokenKind::Char, text, line: 0, col: 0 }
        }
        None => Token { kind: TokenKind::Char, text, line: 0, col: 0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(text: &str) -> Vec<(TokenKind, String)> {
        tokenize(text).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        let toks = kinds("let x = Ordering::Relaxed;");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Ident, "let".into()),
                (TokenKind::Ident, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Ident, "Ordering".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "Relaxed".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_code_shaped_text() {
        let toks = kinds(r#"let s = "Ordering::Relaxed // not a comment";"#);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "Relaxed"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r##"let s = r#"a "quoted" thing"#; let b = b"bytes"; let r = r"raw";"##);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs.len(), 3, "{strs:?}");
        assert!(strs[0].starts_with("r#\"") && strs[0].ends_with("\"#"));
        assert!(strs[1].starts_with("b\""));
        assert!(strs[2].starts_with("r\""));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks =
            kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let s: &'static str; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, t)| t.as_str()).collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn comments_are_tokens_with_positions() {
        let toks = tokenize("x // trailing\n/* block\nspans */ y");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert_eq!(toks[1].text, "// trailing");
        assert_eq!((toks[1].line, toks[1].col), (1, 3));
        assert_eq!(toks[2].kind, TokenKind::BlockComment);
        assert_eq!(toks[2].line, 2);
        assert!(toks[2].text.contains("spans"));
        assert!(toks[3].is_ident("y"));
        assert_eq!(toks[3].line, 3);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let toks = kinds("/* outer /* inner */ still outer */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].0, TokenKind::BlockComment);
        assert!(toks[0].1.ends_with("still outer */"));
        assert_eq!(toks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn unterminated_forms_do_not_loop() {
        for src in ["\"unterminated", "/* unterminated", "'", "r#\"unterminated"] {
            let toks = tokenize(src);
            assert!(!toks.is_empty(), "{src:?}");
        }
    }

    #[test]
    fn raw_identifiers_stay_identifiers() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "r#match"));
    }

    #[test]
    fn raw_identifiers_never_satisfy_keyword_checks() {
        // `r#fn` / `r#type` are identifiers *named* fn/type, not the
        // keywords — a keyword match here would corrupt `fn`-span
        // detection in pass 1 of the analyzer.
        for src in ["let r#fn = 1;", "let r#type = 2;", "let r#while = 3;"] {
            let toks = tokenize(src);
            assert!(
                !toks.iter().any(|t| t.is_ident("fn") || t.is_ident("type") || t.is_ident("while")),
                "raw ident classified as keyword in {src:?}: {toks:?}"
            );
            assert_eq!(
                toks.iter()
                    .filter(|t| t.kind == TokenKind::Ident && t.text.starts_with("r#"))
                    .count(),
                1,
                "{src:?}"
            );
        }
    }

    #[test]
    fn ident_name_strips_only_the_raw_prefix() {
        assert_eq!(ident_name("r#fn"), "fn");
        assert_eq!(ident_name("r#type"), "type");
        assert_eq!(ident_name("regular"), "regular");
        // A name that merely starts with r# inside (impossible) or an `r`
        // head without `#` is untouched.
        assert_eq!(ident_name("r"), "r");
        let toks = tokenize("r#try");
        assert_eq!(toks[0].ident_name(), "try");
    }

    #[test]
    fn raw_idents_adjacent_to_raw_strings() {
        // The classic confusion: `r#ident` directly before `r#"…"#` must
        // not let the ident's hash open a raw string (or vice versa).
        let toks = kinds("let r#fn = r#\"body \"quoted\" end\"#; r#type");
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, t)| *k == TokenKind::Ident && t.starts_with("r#"))
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["r#fn", "r#type"]);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Str).map(|(_, t)| t.as_str()).collect();
        assert_eq!(strs, vec!["r#\"body \"quoted\" end\"#"]);
        // Multi-hash raw string directly after a raw ident.
        let toks = kinds("r#match r##\"has \"# inside\"##");
        assert_eq!(toks[0], (TokenKind::Ident, "r#match".into()));
        assert_eq!(toks[1], (TokenKind::Str, "r##\"has \"# inside\"##".into()));
    }

    #[test]
    fn byte_char_literal_is_one_token() {
        let toks = kinds("let x = b'a'; let nl = b'\\n'; let l: &'b u8;");
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).map(|(_, t)| t.as_str()).collect();
        assert_eq!(chars, vec!["b'a'", "b'\\n'"]);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Lifetime && t == "'b"));
    }
}
