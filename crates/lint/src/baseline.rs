//! Committed-baseline support: land a strict rule without a big-bang
//! justification commit.
//!
//! `tspg-lint --write-baseline` snapshots the current findings into
//! `<root>/lint-baseline.json`; subsequent runs subtract baselined
//! findings (matched on `(path, rule, message)` — line/column free, so
//! unrelated edits don't un-baseline a finding) and fail only on new
//! ones. The file is committed, reviewed like code, and shrunk over time;
//! an empty `findings` array asserts the tree is genuinely clean.
//!
//! The parser below is a minimal recursive-descent JSON reader — enough
//! for the baseline schema and deliberately local so `tspg-lint` stays
//! dependency-free.

use crate::diagnostics::{escape_json, Diagnostic};

/// Schema tag written into and required from every baseline file.
pub const SCHEMA: &str = "tspg-lint-baseline/1";

/// One baselined finding. Line/column are intentionally absent: the
/// triple survives unrelated edits to the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Lint-root-relative path.
    pub path: String,
    /// Rule name.
    pub rule: String,
    /// Exact diagnostic message.
    pub message: String,
}

/// A parsed (or freshly built) baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    /// The accepted findings.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// Snapshot `diags` as a baseline.
    pub fn from_diagnostics(diags: &[Diagnostic]) -> Self {
        Self {
            entries: diags
                .iter()
                .map(|d| BaselineEntry {
                    path: d.path.clone(),
                    rule: d.rule.to_string(),
                    message: d.message.clone(),
                })
                .collect(),
        }
    }

    /// Parse and schema-check a baseline file's text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = Json::parse(text)?;
        let Json::Object(fields) = &value else {
            return Err("baseline root must be a JSON object".into());
        };
        match field(fields, "schema") {
            Some(Json::Str(s)) if s == SCHEMA => {}
            Some(Json::Str(s)) => {
                return Err(format!("unsupported baseline schema `{s}` (expected `{SCHEMA}`)"))
            }
            _ => return Err(format!("baseline is missing `\"schema\": \"{SCHEMA}\"`")),
        }
        let Some(Json::Array(items)) = field(fields, "findings") else {
            return Err("baseline is missing the `findings` array".into());
        };
        let mut entries = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let Json::Object(f) = item else {
                return Err(format!("findings[{i}] is not an object"));
            };
            let get = |k: &str| match field(f, k) {
                Some(Json::Str(s)) => Ok(s.clone()),
                _ => Err(format!("findings[{i}] is missing string field `{k}`")),
            };
            entries.push(BaselineEntry {
                path: get("path")?,
                rule: get("rule")?,
                message: get("message")?,
            });
        }
        Ok(Self { entries })
    }

    /// Render as the committed-file JSON form (trailing newline included).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"findings\": [");
        for (i, e) in self.entries.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"path\": \"{}\", \"rule\": \"{}\", \"message\": \"{}\"}}",
                escape_json(&e.path),
                escape_json(&e.rule),
                escape_json(&e.message)
            ));
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// True when `diag` matches a baselined entry.
    pub fn contains(&self, diag: &Diagnostic) -> bool {
        self.entries
            .iter()
            .any(|e| e.path == diag.path && e.rule == diag.rule && e.message == diag.message)
    }
}

/// The object field named `key`, if present.
fn field<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A parsed JSON value. Objects keep insertion order; numbers stay `f64`
/// (the baseline schema carries none, but the parser is complete enough
/// not to choke on hand-edited files).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `{…}` with fields in source order.
    Object(Vec<(String, Json)>),
    /// `[…]`.
    Array(Vec<Json>),
    /// A string.
    Str(String),
    /// A number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// Parse one complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes.get(*pos).is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", want as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b) if b.is_ascii_digit() || *b == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while bytes
        .get(*pos)
        .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                        // Surrogates are out of scope for the escapes this
                        // tool itself writes (ASCII control chars only).
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar worth of bytes.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {}", *pos))?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(fields));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(path: &str, rule: &'static str, message: &str) -> Diagnostic {
        Diagnostic { path: path.into(), line: 3, col: 7, rule, message: message.into() }
    }

    #[test]
    fn roundtrip_through_render_and_parse() {
        let diags =
            vec![diag("crates/server/src/lib.rs", "lock-order", "cycle with \"quotes\"\nand nl")];
        let base = Baseline::from_diagnostics(&diags);
        let reparsed = Baseline::parse(&base.render()).unwrap();
        assert_eq!(reparsed.entries, base.entries);
        assert!(reparsed.contains(&diags[0]));
    }

    #[test]
    fn empty_baseline_renders_and_parses() {
        let base = Baseline::default();
        let text = base.render();
        assert!(text.contains("\"findings\": []"));
        let reparsed = Baseline::parse(&text).unwrap();
        assert!(reparsed.entries.is_empty());
        assert!(!reparsed.contains(&diag("a", "r", "m")));
    }

    #[test]
    fn matching_ignores_line_and_col() {
        let base = Baseline::from_diagnostics(&[diag("p.rs", "lock-order", "msg")]);
        let mut moved = diag("p.rs", "lock-order", "msg");
        moved.line = 99;
        moved.col = 1;
        assert!(base.contains(&moved));
        assert!(!base.contains(&diag("p.rs", "lock-order", "other msg")));
        assert!(!base.contains(&diag("q.rs", "lock-order", "msg")));
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let err = Baseline::parse("{\"schema\": \"other/9\", \"findings\": []}").unwrap_err();
        assert!(err.contains("unsupported baseline schema"), "{err}");
        let err = Baseline::parse("{\"findings\": []}").unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn json_parser_handles_nesting_numbers_and_escapes() {
        let v =
            Json::parse("{\"a\": [1, -2.5, true, false, null], \"b\": {\"c\": \"x\\u0041\\n\"}}")
                .unwrap();
        let Json::Object(fields) = &v else { panic!("{v:?}") };
        let Some(Json::Array(items)) = field(fields, "a") else { panic!("{v:?}") };
        assert_eq!(items.len(), 5);
        assert_eq!(items[1], Json::Num(-2.5));
        let Some(Json::Object(inner)) = field(fields, "b") else { panic!("{v:?}") };
        assert_eq!(field(inner, "c"), Some(&Json::Str("xA\n".into())));
    }

    #[test]
    fn json_parser_rejects_trailing_garbage_and_bad_escapes() {
        assert!(Json::parse("{} x").is_err());
        assert!(Json::parse("\"\\q\"").is_err());
        assert!(Json::parse("[1,").is_err());
    }
}
