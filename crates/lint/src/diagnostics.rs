//! Diagnostic records, rendering, and suppression-pragma filtering.
//!
//! Every rule reports findings as [`Diagnostic`] values carrying a
//! `file:line:col` span, the rule name, and a one-line message. The driver
//! renders them with a source excerpt and a caret, and filters out findings
//! covered by a `// tspg-lint: allow(<rule>, ...)` pragma on the finding's
//! line or the line immediately above it.

use crate::tokens::Token;

/// A single finding produced by a lint rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Repo-relative path of the file the finding is in.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Name of the rule that produced the finding (e.g. `hot-alloc`).
    pub rule: &'static str,
    /// One-line human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// Render the diagnostic with a source excerpt and caret marker.
    ///
    /// `source` is the full text of the file the diagnostic points into; it
    /// is used only to extract the offending line for display.
    pub fn render(&self, source: &str) -> String {
        let mut out =
            format!("{}:{}:{}: [{}] {}\n", self.path, self.line, self.col, self.rule, self.message);
        if let Some(text) = source.lines().nth(self.line as usize - 1) {
            out.push_str("    | ");
            out.push_str(text);
            out.push('\n');
            out.push_str("    | ");
            // Align the caret with the column, expanding nothing: columns are
            // byte-based on the trimmed-ASCII source this repo keeps, which is
            // close enough for a pointer line.
            for _ in 1..self.col {
                out.push(' ');
            }
            out.push_str("^\n");
        }
        out
    }
}

/// Escape `s` for embedding in a JSON string literal (RFC 8259: quote,
/// backslash, and control characters below 0x20).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a machine-readable diagnostics document (the `--format json`
/// output): schema tag, lint root, file count, how many findings the
/// committed baseline absorbed, and the surviving findings themselves.
pub fn render_json(
    diagnostics: &[Diagnostic],
    root: &str,
    files_checked: usize,
    baselined: usize,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"tspg-lint-diagnostics/1\",\n");
    out.push_str(&format!("  \"root\": \"{}\",\n", escape_json(root)));
    out.push_str(&format!("  \"files_checked\": {files_checked},\n"));
    out.push_str(&format!("  \"baselined\": {baselined},\n"));
    out.push_str("  \"findings\": [");
    for (i, d) in diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}",
            escape_json(&d.path),
            d.line,
            d.col,
            d.rule,
            escape_json(&d.message)
        ));
    }
    if !diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Parsed contents of a suppression pragma comment.
///
/// Syntax: `// tspg-lint: allow(rule-a, rule-b)`. The pragma suppresses the
/// listed rules on its own line and on the line immediately below it, so it
/// can either trail the offending code or sit on its own line above it.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Line the pragma comment starts on (1-based).
    pub line: u32,
    /// Rules the pragma allows.
    pub rules: Vec<String>,
}

/// Extract all suppression pragmas from a file's token stream.
pub fn collect_suppressions(tokens: &[Token]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for tok in tokens {
        if !tok.is_comment() {
            continue;
        }
        let body = tok.text.as_str();
        let Some(idx) = body.find("tspg-lint:") else {
            continue;
        };
        let rest = body[idx + "tspg-lint:".len()..].trim_start();
        let Some(args) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(end) = args.find(')') else {
            continue;
        };
        let rules: Vec<String> = args[..end]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if !rules.is_empty() {
            out.push(Suppression { line: tok.line, rules });
        }
    }
    out
}

/// True if `diag` is covered by one of `suppressions`.
///
/// A pragma covers findings on its own line (trailing pragma) and on the
/// next line (pragma-above style).
pub fn is_suppressed(diag: &Diagnostic, suppressions: &[Suppression]) -> bool {
    suppressions.iter().any(|s| {
        (s.line == diag.line || s.line + 1 == diag.line) && s.rules.iter().any(|r| r == diag.rule)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokens::tokenize;

    fn diag(line: u32, rule: &'static str) -> Diagnostic {
        Diagnostic { path: "x.rs".into(), line, col: 5, rule, message: "m".into() }
    }

    #[test]
    fn parses_trailing_and_standalone_pragmas() {
        let src = "let a = 1; // tspg-lint: allow(hot-alloc)\n\
                   // tspg-lint: allow(no-panic-in-server, relaxed-justified)\n\
                   let b = 2;\n";
        let sup = collect_suppressions(&tokenize(src));
        assert_eq!(sup.len(), 2);
        assert_eq!(sup[0].line, 1);
        assert_eq!(sup[0].rules, vec!["hot-alloc"]);
        assert_eq!(sup[1].line, 2);
        assert_eq!(sup[1].rules, vec!["no-panic-in-server", "relaxed-justified"]);
    }

    #[test]
    fn suppression_covers_same_and_next_line_only() {
        let sup = collect_suppressions(&tokenize("// tspg-lint: allow(hot-alloc)\n"));
        assert!(is_suppressed(&diag(1, "hot-alloc"), &sup));
        assert!(is_suppressed(&diag(2, "hot-alloc"), &sup));
        assert!(!is_suppressed(&diag(3, "hot-alloc"), &sup));
        assert!(!is_suppressed(&diag(2, "relaxed-justified"), &sup));
    }

    #[test]
    fn pragma_inside_string_is_ignored() {
        let sup = collect_suppressions(&tokenize("let s = \"// tspg-lint: allow(hot-alloc)\";\n"));
        assert!(sup.is_empty());
    }

    #[test]
    fn escape_json_covers_quotes_backslashes_and_controls() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
    }

    #[test]
    fn render_json_is_parseable_and_complete() {
        let d = Diagnostic {
            path: "crates/server/src/lib.rs".into(),
            line: 4,
            col: 9,
            rule: "lock-order",
            message: "cycle `a -> b -> a`".into(),
        };
        let doc = render_json(&[d], ".", 58, 2);
        let parsed = crate::baseline::Json::parse(&doc).expect("emitted JSON must parse");
        let crate::baseline::Json::Object(fields) = parsed else { panic!() };
        let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone());
        assert_eq!(
            get("schema"),
            Some(crate::baseline::Json::Str("tspg-lint-diagnostics/1".into()))
        );
        assert_eq!(get("files_checked"), Some(crate::baseline::Json::Num(58.0)));
        assert_eq!(get("baselined"), Some(crate::baseline::Json::Num(2.0)));
        let Some(crate::baseline::Json::Array(findings)) = get("findings") else { panic!() };
        assert_eq!(findings.len(), 1);
    }

    #[test]
    fn render_json_with_no_findings_has_empty_array() {
        let doc = render_json(&[], ".", 10, 0);
        assert!(doc.contains("\"findings\": []"), "{doc}");
        assert!(crate::baseline::Json::parse(&doc).is_ok());
    }

    #[test]
    fn render_includes_excerpt_and_caret() {
        let src = "fn f() {\n    let v = Vec::new();\n}\n";
        let d = Diagnostic {
            path: "crates/core/src/x.rs".into(),
            line: 2,
            col: 13,
            rule: "hot-alloc",
            message: "allocation in hot path".into(),
        };
        let rendered = d.render(src);
        assert!(rendered.starts_with("crates/core/src/x.rs:2:13: [hot-alloc]"));
        assert!(rendered.contains("let v = Vec::new();"));
        assert!(rendered.contains("            ^"));
    }
}
