//! Pass 1, second half: a global lock-acquisition-order graph.
//!
//! Scope is the code that actually takes locks on the serving path:
//! `crates/server/src/**` and `crates/core/src/engine/**`. A lock is
//! identified by its *receiver name* — the field or accessor-method name
//! the guard comes from (`self.admission.lock()` → `admission`,
//! `self.shard(&key).lock()` → `shard`) — which is the right granularity
//! for a lexical tool: the repo names each Mutex-guarded resource once.
//!
//! Liveness reuses the brace-frame model proven by `notify-under-lock`,
//! refined with bindings so guards can end before their block does:
//!
//! - `let g = m.lock()…;` holds until `drop(g)` or the end of the block;
//! - `let v = *m.lock()…;` (deref-copy) and bare `m.lock()…;` statements
//!   hold only to the end of the statement (`;`);
//! - a lock in an `if`/`while`/`match` header is live for the block the
//!   header opens (the `if let Ok(g) = m.lock()` shape).
//!
//! Edges are recorded held→acquired, both for direct nesting and — via
//! the call graph — when a function called under a guard (transitively)
//! acquires a lock. Any cycle in the resulting order graph is a static
//! deadlock candidate: two threads taking the same pair of locks in
//! opposite orders can each hold one and wait forever for the other.

use std::collections::{HashMap, HashSet, VecDeque};

use crate::callgraph::CallGraph;
use crate::tokens::{Token, TokenKind};
use crate::{LintContext, SourceFile};

/// Guard-producing calls the order graph tracks. `Condvar::wait*` is
/// excluded on purpose: it re-acquires the *same* mutex it released, so it
/// introduces no new ordering edge.
const LOCK_CALLS: &[&str] = &["lock", "try_lock"];

/// Keywords whose headers scope a guard to the block they open.
const COND_KEYWORDS: &[&str] = &["if", "while", "match"];

/// One lock acquisition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Acquisition {
    /// Receiver name identifying the lock.
    pub lock: String,
    /// Lint-root-relative path of the acquiring file.
    pub path: String,
    /// 1-based line of the `lock`/`try_lock` token.
    pub line: u32,
    /// 1-based column of the `lock`/`try_lock` token.
    pub col: u32,
}

/// One ordered pair: `acquired` taken while `held` was live.
#[derive(Debug)]
pub struct LockEdge {
    /// The lock already held.
    pub held: Acquisition,
    /// The lock being acquired under it.
    pub acquired: Acquisition,
    /// File index (into [`LintContext::files`]) of the anchor token.
    pub anchor_file: usize,
    /// `code` index of the anchor token — the nested `.lock()` for direct
    /// edges, the mediating call site for call-mediated ones.
    pub anchor_idx: usize,
    /// Call chain (fn names, caller first) for call-mediated edges; empty
    /// when the nesting is direct.
    pub via: Vec<String>,
}

/// The workspace lock-order graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Every held→acquired pair found in scope.
    pub edges: Vec<LockEdge>,
}

/// True for the files whose lock usage the graph covers.
pub fn in_scope(rel_path: &str) -> bool {
    rel_path.starts_with("crates/server/src/") || rel_path.starts_with("crates/core/src/engine/")
}

impl LockGraph {
    /// Build the graph over `ctx`, consulting its call graph for edges
    /// mediated by function calls made under a live guard.
    pub fn build(ctx: &LintContext) -> Self {
        let graph = ctx.callgraph();
        let mut reach = ReachableLocks::new(ctx, graph);
        let mut edges = Vec::new();
        for (file_idx, file) in ctx.files.iter().enumerate() {
            if !in_scope(&file.rel_path) {
                continue;
            }
            for span_idx in 0..file.fn_spans.len() {
                if file.in_test(file.fn_spans[span_idx].sig_start) {
                    continue;
                }
                scan_fn(graph, &mut reach, file_idx, file, span_idx, &mut edges);
            }
        }
        // One edge per (held lock, acquired lock, anchor token): the same
        // call site must not multiply by resolution fan-out.
        let mut seen = HashSet::new();
        edges.retain(|e| {
            seen.insert((e.held.lock.clone(), e.acquired.lock.clone(), e.anchor_file, e.anchor_idx))
        });
        LockGraph { edges }
    }

    /// Indices of edges participating in an acquisition-order cycle: the
    /// acquired lock can reach the held lock again through other edges
    /// (or is the held lock itself — re-entrant acquisition of a std
    /// `Mutex` self-deadlocks).
    pub fn cycle_edges(&self) -> Vec<usize> {
        let mut adj: HashMap<&str, HashSet<&str>> = HashMap::new();
        for e in &self.edges {
            adj.entry(e.held.lock.as_str()).or_default().insert(e.acquired.lock.as_str());
        }
        (0..self.edges.len())
            .filter(|&i| {
                let e = &self.edges[i];
                reaches(&adj, e.acquired.lock.as_str(), e.held.lock.as_str())
            })
            .collect()
    }

    /// A shortest lock-name cycle through `edge` (for diagnostics), e.g.
    /// `["alpha", "beta", "alpha"]`.
    pub fn cycle_path(&self, edge: &LockEdge) -> Vec<String> {
        if edge.acquired.lock == edge.held.lock {
            // Re-entrant acquisition: the two-entry "cycle" is the edge
            // itself.
            return vec![edge.held.lock.clone(), edge.acquired.lock.clone()];
        }
        let mut adj: HashMap<&str, Vec<&str>> = HashMap::new();
        for e in &self.edges {
            adj.entry(e.held.lock.as_str()).or_default().push(e.acquired.lock.as_str());
        }
        let mut path = vec![edge.held.lock.clone(), edge.acquired.lock.clone()];
        // BFS parent-trace from `acquired` back to `held`.
        let mut parents: HashMap<&str, &str> = HashMap::new();
        let mut queue = VecDeque::from([edge.acquired.lock.as_str()]);
        let target = edge.held.lock.as_str();
        'bfs: while let Some(cur) = queue.pop_front() {
            for &next in adj.get(cur).into_iter().flatten() {
                if next == target {
                    let mut tail = vec![cur];
                    let mut at = cur;
                    while let Some(&p) = parents.get(at) {
                        tail.push(p);
                        at = p;
                    }
                    tail.reverse();
                    // `tail` runs acquired→…→cur; append the intermediate
                    // hops and close the cycle on the held lock.
                    path.extend(tail.into_iter().skip(1).map(str::to_string));
                    path.push(target.to_string());
                    break 'bfs;
                }
                if next != edge.acquired.lock.as_str() && !parents.contains_key(next) {
                    parents.insert(next, cur);
                    queue.push_back(next);
                }
            }
        }
        path
    }
}

/// True when `from` reaches `to` through one or more edges.
fn reaches(adj: &HashMap<&str, HashSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen = HashSet::new();
    let mut queue = VecDeque::from([from]);
    while let Some(cur) = queue.pop_front() {
        for &next in adj.get(cur).into_iter().flatten() {
            if next == to {
                return true;
            }
            if seen.insert(next) {
                queue.push_back(next);
            }
        }
    }
    false
}

/// A guard live in some frame.
#[derive(Debug, Clone)]
struct Held {
    acq: Acquisition,
    /// `let` binding holding the guard, when there is one.
    binding: Option<String>,
    /// True when the guard is a temporary that dies at the next `;`.
    temp: bool,
}

/// One transitively reachable lock: its representative acquisition site
/// plus the fn-name chain that reaches it.
type ReachedLock = (Acquisition, Vec<String>);

/// Memoized per-callgraph-node "locks this function may (transitively)
/// acquire", with the fn-name chain that reaches each one.
struct ReachableLocks<'a> {
    ctx: &'a LintContext,
    graph: &'a CallGraph,
    /// Per-node cache; `None` = not yet computed.
    memo: Vec<Option<Vec<ReachedLock>>>,
    /// DFS in-progress flags (recursion through a call cycle yields no
    /// further locks).
    visiting: Vec<bool>,
}

impl<'a> ReachableLocks<'a> {
    fn new(ctx: &'a LintContext, graph: &'a CallGraph) -> Self {
        let n = graph.nodes.len();
        Self { ctx, graph, memo: vec![None; n], visiting: vec![false; n] }
    }

    fn get(&mut self, node: usize) -> Vec<ReachedLock> {
        if let Some(cached) = &self.memo[node] {
            return cached.clone();
        }
        if self.visiting[node] {
            return Vec::new();
        }
        self.visiting[node] = true;
        let fn_node = &self.graph.nodes[node];
        let file = &self.ctx.files[fn_node.file];
        let mut out: Vec<(Acquisition, Vec<String>)> = Vec::new();
        // One entry per lock name: the first acquisition site found is
        // representative, and the bound keeps chains from exploding.
        let mut have: HashSet<String> = HashSet::new();
        if in_scope(&file.rel_path) {
            let span = &file.fn_spans[fn_node.span];
            for j in span.body_start..=span.body_end {
                let Some((name_tok, lock)) = lock_call_at(file, j) else { continue };
                if file.enclosing_fn_idx(j) != Some(fn_node.span) {
                    continue;
                }
                if have.insert(lock.clone()) {
                    out.push((acquisition(file, name_tok, lock), vec![fn_node.name.clone()]));
                }
            }
        }
        let calls = fn_node.calls.clone();
        for site in &calls {
            for callee in self.graph.resolve(&self.graph.nodes[node], site) {
                for (acq, chain) in self.get(callee) {
                    if have.insert(acq.lock.clone()) {
                        let mut full = vec![self.graph.nodes[node].name.clone()];
                        full.extend(chain);
                        out.push((acq, full));
                    }
                }
            }
        }
        self.visiting[node] = false;
        self.memo[node] = Some(out.clone());
        out
    }
}

/// If the `.`-led tokens at `j` are a `.lock(`/`.try_lock(` call, return
/// the method-name token and the receiver-derived lock name.
fn lock_call_at(file: &SourceFile, j: usize) -> Option<(&Token, String)> {
    let code = &file.code;
    let tok = code.get(j)?;
    if !tok.is_punct(".") {
        return None;
    }
    let name = code.get(j + 1)?;
    if name.kind != TokenKind::Ident
        || !LOCK_CALLS.contains(&name.text.as_str())
        || !code.get(j + 2).is_some_and(|t| t.is_punct("("))
    {
        return None;
    }
    let lock = receiver_name(code, j)?;
    Some((name, lock))
}

/// Name of the receiver expression ending just before the `.` at
/// `dot_idx`: the trailing field name, or the method/accessor name for a
/// call or index result (`self.shard(&key)` → `shard`).
fn receiver_name(code: &[Token], dot_idx: usize) -> Option<String> {
    let mut k = dot_idx.checked_sub(1)?;
    // Step back over one trailing `(…)` or `[…]` group.
    for (close, open) in [(")", "("), ("]", "[")] {
        if code[k].is_punct(close) {
            let mut depth = 0usize;
            loop {
                if code[k].is_punct(close) {
                    depth += 1;
                } else if code[k].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k = k.checked_sub(1)?;
            }
            k = k.checked_sub(1)?;
            break;
        }
    }
    let tok = &code[k];
    (tok.kind == TokenKind::Ident && tok.ident_name() != "self")
        .then(|| tok.ident_name().to_string())
}

/// Build an [`Acquisition`] for the lock call whose method token is `tok`.
fn acquisition(file: &SourceFile, tok: &Token, lock: String) -> Acquisition {
    Acquisition { lock, path: file.rel_path.clone(), line: tok.line, col: tok.col }
}

/// Frame-scan one function body, appending every held→acquired edge.
fn scan_fn(
    graph: &CallGraph,
    reach: &mut ReachableLocks<'_>,
    file_idx: usize,
    file: &SourceFile,
    span_idx: usize,
    edges: &mut Vec<LockEdge>,
) {
    let span = &file.fn_spans[span_idx];
    let code = &file.code;
    let mut frames: Vec<Vec<Held>> = Vec::new();
    let mut pending: Vec<Held> = Vec::new();
    let mut cond_pending = false;
    let mut stmt_start = span.body_start + 1;
    let mut j = span.body_start;
    while j <= span.body_end {
        // Skip nested fn items wholesale: their guards are their own.
        if j > span.body_start && file.enclosing_fn_idx(j) != Some(span_idx) {
            j += 1;
            continue;
        }
        let tok = &code[j];
        match tok.kind {
            TokenKind::Ident if COND_KEYWORDS.contains(&tok.text.as_str()) => cond_pending = true,
            TokenKind::Ident if tok.text == "drop" => {
                // `drop(binding)` ends that guard's liveness early.
                let parenthesized = code.get(j + 1).is_some_and(|t| t.is_punct("("))
                    && code.get(j + 3).is_some_and(|t| t.is_punct(")"));
                let arg = code.get(j + 2).filter(|t| parenthesized && t.kind == TokenKind::Ident);
                if let Some(arg) = arg {
                    let name = arg.ident_name();
                    for frame in &mut frames {
                        frame.retain(|h| h.binding.as_deref() != Some(name));
                    }
                    pending.retain(|h| h.binding.as_deref() != Some(name));
                }
            }
            TokenKind::Punct if tok.text == "{" => {
                frames.push(std::mem::take(&mut pending));
                cond_pending = false;
                stmt_start = j + 1;
            }
            TokenKind::Punct if tok.text == "}" => {
                frames.pop();
                cond_pending = false;
                stmt_start = j + 1;
            }
            TokenKind::Punct if tok.text == ";" => {
                if let Some(top) = frames.last_mut() {
                    top.retain(|h| !h.temp);
                }
                cond_pending = false;
                stmt_start = j + 1;
            }
            TokenKind::Punct if tok.text == "." => {
                if let Some((name_tok, lock)) = lock_call_at(file, j) {
                    let acq = acquisition(file, name_tok, lock);
                    for h in frames.iter().flatten().chain(pending.iter()) {
                        edges.push(LockEdge {
                            held: h.acq.clone(),
                            acquired: acq.clone(),
                            anchor_file: file_idx,
                            anchor_idx: j + 1,
                            via: Vec::new(),
                        });
                    }
                    let (binding, temp) = binding_of_statement(code, stmt_start, span.body_end);
                    let held = Held { acq, binding, temp };
                    if cond_pending {
                        pending.push(Held { temp: false, ..held });
                    } else if let Some(top) = frames.last_mut() {
                        top.push(held);
                    }
                }
            }
            TokenKind::Ident
                if code.get(j + 1).is_some_and(|t| t.is_punct("("))
                    && !code.get(j.wrapping_sub(1)).is_some_and(|t| t.is_ident("fn"))
                    && tok.text != "drop" =>
            {
                // A call made under a live guard: every lock the callee
                // may (transitively) take orders after every held lock.
                if frames.iter().all(|f| f.is_empty()) && pending.is_empty() {
                    j += 1;
                    continue;
                }
                let Some(node) = graph.node_at(file_idx, span_idx) else {
                    j += 1;
                    continue;
                };
                let site = graph.nodes[node].calls.iter().find(|s| s.code_idx == j).cloned();
                let Some(site) = site else {
                    j += 1;
                    continue;
                };
                for callee in graph.resolve(&graph.nodes[node], &site) {
                    for (acq, chain) in reach.get(callee) {
                        for h in frames.iter().flatten().chain(pending.iter()) {
                            edges.push(LockEdge {
                                held: h.acq.clone(),
                                acquired: acq.clone(),
                                anchor_file: file_idx,
                                anchor_idx: j,
                                via: chain.clone(),
                            });
                        }
                    }
                }
            }
            _ => {}
        }
        j += 1;
    }
}

/// For the statement starting at `stmt_start`, the `let` binding name (if
/// any) and whether a guard produced in it is a temporary: no `let`, or a
/// `let x = *…` deref-copy where the guard dies at the statement's end.
fn binding_of_statement(code: &[Token], stmt_start: usize, limit: usize) -> (Option<String>, bool) {
    if !code.get(stmt_start).is_some_and(|t| t.is_ident("let")) {
        return (None, true);
    }
    let mut binding = None;
    for tok in &code[stmt_start + 1..=limit.min(code.len() - 1)] {
        if tok.is_punct("=") || tok.is_punct(";") {
            break;
        }
        if tok.kind == TokenKind::Ident
            && !matches!(tok.text.as_str(), "mut" | "ref" | "Ok" | "Err" | "Some")
        {
            binding = Some(tok.ident_name().to_string());
            break;
        }
    }
    // `let v = *m.lock()…;` copies out of the guard; the guard itself is a
    // temporary.
    let deref = code[stmt_start..=limit.min(code.len() - 1)]
        .iter()
        .position(|t| t.is_punct("="))
        .is_some_and(|eq| code.get(stmt_start + eq + 1).is_some_and(|t| t.is_punct("*")));
    (binding, deref)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn graph_of(src: &str) -> LockGraph {
        let file = SourceFile::new("crates/server/src/lib.rs".into(), src.into());
        let ctx = LintContext::from_parts(PathBuf::from("."), vec![file], None);
        LockGraph::build(&ctx)
    }

    fn pairs(g: &LockGraph) -> Vec<(String, String)> {
        g.edges.iter().map(|e| (e.held.lock.clone(), e.acquired.lock.clone())).collect()
    }

    #[test]
    fn direct_nesting_produces_an_edge() {
        let g = graph_of(
            "fn f(&self) {\n\
                 let a = self.alpha.lock().unwrap();\n\
                 let b = self.beta.lock().unwrap();\n\
             }\n",
        );
        assert_eq!(pairs(&g), vec![("alpha".into(), "beta".into())]);
        assert!(g.cycle_edges().is_empty());
    }

    #[test]
    fn opposite_orders_form_a_cycle() {
        let g = graph_of(
            "fn f(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n\
             fn g(&self) { let b = self.beta.lock().unwrap(); let a = self.alpha.lock().unwrap(); }\n",
        );
        assert_eq!(g.cycle_edges().len(), 2, "{:?}", g.edges);
        let path = g.cycle_path(&g.edges[0]);
        assert_eq!(path, vec!["alpha", "beta", "alpha"]);
    }

    #[test]
    fn guard_scope_ends_with_block_or_drop() {
        let g = graph_of(
            "fn f(&self) {\n\
                 { let a = self.alpha.lock().unwrap(); }\n\
                 let b = self.beta.lock().unwrap();\n\
             }\n\
             fn g(&self) {\n\
                 let b = self.beta.lock().unwrap();\n\
                 drop(b);\n\
                 let a = self.alpha.lock().unwrap();\n\
             }\n",
        );
        assert!(pairs(&g).is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn temp_guard_statement_and_deref_copy_release_at_semicolon() {
        let g = graph_of(
            "fn f(&self) {\n\
                 self.alpha.lock().unwrap().push(1);\n\
                 let n = *self.beta.lock().unwrap();\n\
                 let g = self.gamma.lock().unwrap();\n\
             }\n",
        );
        // Neither the bare statement's temp nor the deref-copy guard is
        // still held when `gamma` is taken.
        assert!(pairs(&g).is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn cond_header_guard_is_live_for_its_block() {
        let g = graph_of(
            "fn f(&self) {\n\
                 if let Ok(a) = self.alpha.lock() {\n\
                     let b = self.beta.lock().unwrap();\n\
                 }\n\
                 let c = self.gamma.lock().unwrap();\n\
             }\n",
        );
        assert_eq!(pairs(&g), vec![("alpha".into(), "beta".into())]);
    }

    #[test]
    fn call_mediated_edges_carry_the_chain() {
        let g = graph_of(
            "fn outer(&self) {\n\
                 let g = self.gamma.lock().unwrap();\n\
                 self.take_delta();\n\
             }\n\
             fn take_delta(&self) { let d = self.delta.lock().unwrap(); }\n",
        );
        let found = g
            .edges
            .iter()
            .find(|e| e.held.lock == "gamma" && e.acquired.lock == "delta")
            .expect("call-mediated edge");
        assert_eq!(found.via, vec!["take_delta"]);
    }

    #[test]
    fn reentrant_same_lock_is_a_cycle() {
        let g = graph_of(
            "fn f(&self) {\n\
                 let a = self.alpha.lock().unwrap();\n\
                 let b = self.alpha.lock().unwrap();\n\
             }\n",
        );
        assert_eq!(g.cycle_edges().len(), 1, "{:?}", g.edges);
        assert_eq!(g.cycle_path(&g.edges[0]), vec!["alpha", "alpha"]);
    }

    #[test]
    fn accessor_receiver_uses_the_method_name() {
        let g = graph_of(
            "fn f(&self, key: u64) {\n\
                 let s = self.shard(key).lock().unwrap();\n\
                 let t = self.totals.lock().unwrap();\n\
             }\n",
        );
        assert_eq!(pairs(&g), vec![("shard".into(), "totals".into())]);
    }

    #[test]
    fn out_of_scope_files_produce_no_edges() {
        let file = SourceFile::new(
            "crates/graph/src/lib.rs".into(),
            "fn f(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.lock().unwrap(); }\n"
                .into(),
        );
        let ctx = LintContext::from_parts(PathBuf::from("."), vec![file], None);
        assert!(LockGraph::build(&ctx).edges.is_empty());
    }
}
