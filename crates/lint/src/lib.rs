//! `tspg-lint`: a zero-dependency static analyzer for the tspg workspace.
//!
//! The workspace's performance and correctness story rests on invariants no
//! compiler checks: the zero-steady-state-allocation rule for the `_into`
//! pipeline, the notify-under-lock rule for the resident server's
//! `Condvar`s, the no-panic discipline in serving code, justification
//! comments on `Ordering::Relaxed` / `unsafe`, and the README stats
//! glossary staying in sync with the counters the code emits. This crate
//! turns each of those into a machine-checked rule over a lexical token
//! stream (see [`tokens`]), producing `file:line:col` diagnostics with
//! rendered excerpts (see [`diagnostics`]) and honoring
//! `// tspg-lint: allow(<rule>)` suppression pragmas.
//!
//! Run it with `cargo run -p tspg-lint` from the repo root; it exits
//! nonzero when any finding survives suppression filtering. The rules are
//! catalogued in [`rules`].

#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod diagnostics;
pub mod lockgraph;
pub mod rules;
pub mod tokens;

use std::io;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use diagnostics::{collect_suppressions, is_suppressed, Diagnostic};
use tokens::{tokenize, Token, TokenKind};

/// Span of one `fn` item, as index ranges into [`SourceFile::code`].
#[derive(Debug, Clone)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Index of the `fn` keyword token.
    pub sig_start: usize,
    /// Index of the `{` opening the body.
    pub body_start: usize,
    /// Index of the matching `}` closing the body.
    pub body_end: usize,
}

/// One loaded-and-analyzed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, with `/` separators.
    pub rel_path: String,
    /// Full file text (used for excerpt rendering).
    pub text: String,
    /// Full token stream, comments included (used for pragma and
    /// justification-comment queries).
    pub tokens: Vec<Token>,
    /// Token stream with comments stripped (used for structural scans —
    /// the indices in [`Self::fn_spans`] and [`Self::test_spans`] refer to
    /// this vector).
    pub code: Vec<Token>,
    /// Every `fn` item with a body, innermost listed after enclosing.
    pub fn_spans: Vec<FnSpan>,
    /// Index ranges (into [`Self::code`], inclusive) covered by
    /// `#[cfg(test)]` items or `#[test]` functions.
    pub test_spans: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Tokenize and analyze `text`.
    pub fn new(rel_path: String, text: String) -> Self {
        let tokens = tokenize(&text);
        let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
        let fn_spans = find_fn_spans(&code);
        let test_spans = find_test_spans(&code);
        Self { rel_path, text, tokens, code, fn_spans, test_spans }
    }

    /// True when the `code` token at `idx` lies inside test-only code
    /// (`#[cfg(test)]` item or `#[test]` function).
    pub fn in_test(&self, idx: usize) -> bool {
        self.test_spans.iter().any(|&(start, end)| idx >= start && idx <= end)
    }

    /// Innermost function whose span (signature through closing brace)
    /// contains the `code` token at `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnSpan> {
        self.enclosing_fn_idx(idx).map(|i| &self.fn_spans[i])
    }

    /// Index into [`Self::fn_spans`] of the innermost function containing
    /// the `code` token at `idx` — the stable handle the call graph uses
    /// to attribute call sites to their defining function.
    pub fn enclosing_fn_idx(&self, idx: usize) -> Option<usize> {
        self.fn_spans
            .iter()
            .enumerate()
            .filter(|(_, f)| idx >= f.sig_start && idx <= f.body_end)
            .min_by_key(|(_, f)| f.body_end - f.sig_start)
            .map(|(i, _)| i)
    }

    /// True when a comment containing `needle` starts on `line` or the
    /// line directly above it.
    pub fn comment_near_line(&self, line: u32, needle: &str) -> bool {
        self.tokens.iter().any(|t| {
            t.is_comment() && (t.line == line || t.line + 1 == line) && t.text.contains(needle)
        })
    }

    /// Build a diagnostic anchored at `tok`.
    pub fn diag(&self, tok: &Token, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic { path: self.rel_path.clone(), line: tok.line, col: tok.col, rule, message }
    }
}

/// Detect every `fn <name> … { … }` item by brace matching.
///
/// Bodyless declarations (trait methods ending in `;`) are skipped, as are
/// `fn`-pointer types (no identifier follows the keyword).
fn find_fn_spans(code: &[Token]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = code.get(i + 1) else { continue };
        if name_tok.kind != TokenKind::Ident {
            continue;
        }
        // Between the name and the body only parens/generics/where clauses
        // can appear — none of which contain braces in function position —
        // so the first `{` or `;` decides body vs. declaration.
        let mut j = i + 2;
        let body_start = loop {
            match code.get(j) {
                Some(t) if t.is_punct("{") => break Some(j),
                Some(t) if t.is_punct(";") => break None,
                Some(_) => j += 1,
                None => break None,
            }
        };
        let Some(body_start) = body_start else { continue };
        if let Some(body_end) = match_brace(code, body_start) {
            // Store the raw-prefix-stripped name so `fn r#try` and a call
            // site `r#try(…)` compare equal in the call graph.
            spans.push(FnSpan {
                name: name_tok.ident_name().to_string(),
                sig_start: i,
                body_start,
                body_end,
            });
        }
    }
    spans
}

/// Index of the `}` matching the `{` at `open`, if balanced.
pub(crate) fn match_brace(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, tok) in code.iter().enumerate().skip(open) {
        if tok.is_punct("{") {
            depth += 1;
        } else if tok.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Detect spans of test-only code: any item whose attribute list contains
/// the `test` identifier (`#[test]`, `#[cfg(test)]`, …) — but not
/// `#[cfg(not(test))]`, which marks the opposite.
fn find_test_spans(code: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i + 1 < code.len() {
        if !(code[i].is_punct("#") && code[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let Some(attr_end) = match_bracket(code, i + 1) else { break };
        let idents: Vec<&str> = code[i + 2..attr_end]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        let is_test_attr = idents.contains(&"test") && !idents.contains(&"not");
        if !is_test_attr {
            i = attr_end + 1;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut k = attr_end + 1;
        while k + 1 < code.len() && code[k].is_punct("#") && code[k + 1].is_punct("[") {
            match match_bracket(code, k + 1) {
                Some(end) => k = end + 1,
                None => break,
            }
        }
        // The item's body is the first `{` before any `;` (a `;` first
        // means an expression/use item — nothing to span).
        let mut j = k;
        loop {
            match code.get(j) {
                Some(t) if t.is_punct("{") => {
                    if let Some(close) = match_brace(code, j) {
                        spans.push((i, close));
                        i = close + 1;
                    } else {
                        i = j + 1;
                    }
                    break;
                }
                Some(t) if t.is_punct(";") => {
                    i = j + 1;
                    break;
                }
                Some(_) => j += 1,
                None => {
                    i = code.len();
                    break;
                }
            }
        }
    }
    spans
}

/// Index of the `]` matching the `[` at `open`, if balanced.
fn match_bracket(code: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, tok) in code.iter().enumerate().skip(open) {
        if tok.is_punct("[") {
            depth += 1;
        } else if tok.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Everything the rules need to inspect one lint root.
#[derive(Debug)]
pub struct LintContext {
    /// The root directory being linted.
    pub root: PathBuf,
    /// All Rust sources under `<root>/crates/*/src/**` and
    /// `<root>/src/**`, sorted by relative path.
    pub files: Vec<SourceFile>,
    /// Contents of `<root>/README.md`, when present (consumed by the
    /// `stats-glossary-sync` rule).
    pub readme: Option<String>,
    /// Pass-1 workspace call graph, built lazily on first use and shared
    /// by every flow-aware rule (see [`callgraph`]).
    graph: OnceLock<callgraph::CallGraph>,
}

impl LintContext {
    /// Assemble a context from pre-analyzed parts (rule unit tests build
    /// synthetic contexts this way; [`LintContext::load`] goes through it
    /// too so the lazy graph cell has exactly one initialization site).
    pub fn from_parts(root: PathBuf, files: Vec<SourceFile>, readme: Option<String>) -> Self {
        Self { root, files, readme, graph: OnceLock::new() }
    }

    /// The workspace call graph, built on first access and cached for the
    /// lifetime of the context.
    pub fn callgraph(&self) -> &callgraph::CallGraph {
        self.graph.get_or_init(|| callgraph::CallGraph::build(self))
    }
    /// Load and analyze every lintable file under `root`.
    ///
    /// The walk covers `crates/*/src/**` plus the umbrella package's own
    /// `src/**`; `vendor/`, `tests/`, fixtures, and benches stay out of
    /// scope by construction.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok())
                .map(|e| e.path())
                .filter(|p| p.is_dir())
                .collect();
            crate_dirs.sort();
            for crate_dir in crate_dirs {
                let src = crate_dir.join("src");
                if src.is_dir() {
                    walk_rust_files(&src, root, &mut files)?;
                }
            }
        }
        let root_src = root.join("src");
        if root_src.is_dir() {
            walk_rust_files(&root_src, root, &mut files)?;
        }
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let readme = std::fs::read_to_string(root.join("README.md")).ok();
        Ok(Self::from_parts(root.to_path_buf(), files, readme))
    }

    /// The loaded file with this lint-root-relative path, if any.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }
}

/// Recursively collect `.rs` files under `dir` into `files`.
fn walk_rust_files(dir: &Path, root: &Path, files: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok()).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rust_files(&path, root, files)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::new(rel, text));
        }
    }
    Ok(())
}

/// Result of linting one root: the analyzed context plus the surviving
/// (unsuppressed) diagnostics, sorted by path/line/column.
#[derive(Debug)]
pub struct LintReport {
    /// The analyzed sources (kept for excerpt rendering).
    pub context: LintContext,
    /// Findings that survived suppression filtering.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Render every diagnostic with its source excerpt.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for diag in &self.diagnostics {
            let source = self.context.file(&diag.path).map(|f| f.text.as_str()).unwrap_or("");
            out.push_str(&diag.render(source));
        }
        out
    }
}

/// Lint `root` with every rule whose name is in `rule_filter` (all rules
/// when the filter is empty), applying suppression pragmas.
pub fn lint_root(root: &Path, rule_filter: &[String]) -> io::Result<LintReport> {
    let context = LintContext::load(root)?;
    let mut diagnostics = Vec::new();
    for rule in rules::all() {
        if !rule_filter.is_empty() && !rule_filter.iter().any(|r| r == rule.name()) {
            continue;
        }
        diagnostics.extend(rule.check(&context));
    }
    for file in &context.files {
        let suppressions = collect_suppressions(&file.tokens);
        if suppressions.is_empty() {
            continue;
        }
        diagnostics.retain(|d| d.path != file.rel_path || !is_suppressed(d, &suppressions));
    }
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(LintReport { context, diagnostics })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/core/src/x.rs".into(), src.into())
    }

    #[test]
    fn fn_spans_cover_bodies_and_skip_declarations() {
        let f = file(
            "trait T { fn decl(&self); }\n\
             fn outer() { let x = 1; fn inner() { () } }\n",
        );
        let names: Vec<_> = f.fn_spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner"]);
        let outer = &f.fn_spans[0];
        let inner = &f.fn_spans[1];
        assert!(outer.sig_start < inner.sig_start && inner.body_end < outer.body_end);
    }

    #[test]
    fn enclosing_fn_picks_innermost() {
        let f = file("fn outer() { fn inner() { let y = 2; } }\n");
        let y_idx = f.code.iter().position(|t| t.is_ident("y")).unwrap();
        assert_eq!(f.enclosing_fn(y_idx).unwrap().name, "inner");
    }

    #[test]
    fn test_spans_cover_cfg_test_mods_and_test_fns() {
        let f = file(
            "fn live() { () }\n\
             #[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() { live(); }\n}\n\
             fn also_live() { () }\n",
        );
        let live = f.code.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!f.in_test(live));
        let inner_call = f.code.iter().rposition(|t| t.is_ident("live")).unwrap();
        assert!(f.in_test(inner_call));
        let also = f.code.iter().position(|t| t.is_ident("also_live")).unwrap();
        assert!(!f.in_test(also));
    }

    #[test]
    fn nested_cfg_test_mod_inside_excluded_mod_does_not_leak() {
        // A `#[cfg(test)] mod` *inside* an already-excluded module must
        // not truncate the outer span at its own closing brace: code after
        // the inner module but still inside the outer one stays excluded,
        // and the first live item after the outer module does not.
        let f = file(
            "#[cfg(test)]\nmod outer_tests {\n\
                 fn helper() { () }\n\
                 #[cfg(test)]\n    mod inner {\n        fn deep() { () }\n    }\n\
                 fn tail_helper() { () }\n\
             }\n\
             fn live() { () }\n",
        );
        for name in ["helper", "deep", "tail_helper"] {
            let idx = f.code.iter().position(|t| t.is_ident(name)).unwrap();
            assert!(f.in_test(idx), "`{name}` leaked out of the excluded outer module");
        }
        let live = f.code.iter().position(|t| t.is_ident("live")).unwrap();
        assert!(!f.in_test(live), "item after the outer test module was over-excluded");
    }

    #[test]
    fn inner_test_mod_in_live_module_excludes_only_itself() {
        let f = file(
            "mod workers {\n\
                 fn prod() { () }\n\
                 #[cfg(test)]\n    mod tests {\n        fn t() { () }\n    }\n\
                 fn also_prod() { () }\n\
             }\n",
        );
        for name in ["prod", "also_prod"] {
            let idx = f.code.iter().position(|t| t.is_ident(name)).unwrap();
            assert!(!f.in_test(idx), "live `{name}` was swallowed by a sibling test module");
        }
        let t = f.code.iter().position(|t| t.is_ident("t")).unwrap();
        assert!(f.in_test(t));
    }

    #[test]
    fn fn_span_names_are_raw_ident_normalized() {
        let f = file("fn r#try() { () }\nfn plain() { r#try() }\n");
        let names: Vec<_> = f.fn_spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["try", "plain"]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let f = file("#[cfg(not(test))]\nfn prod() { () }\n");
        let idx = f.code.iter().position(|t| t.is_ident("prod")).unwrap();
        assert!(!f.in_test(idx));
    }

    #[test]
    fn comment_near_line_sees_same_and_previous_line() {
        let f = file("// relaxed: counter only\nlet a = 1;\nlet b = 2; // relaxed: b\n");
        assert!(f.comment_near_line(2, "relaxed:"));
        assert!(f.comment_near_line(3, "relaxed:"));
        assert!(!f.comment_near_line(5, "relaxed:"));
    }
}
